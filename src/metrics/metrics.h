// Evaluation metrics from the paper (§II-B): Bounded Correction / Bounded
// Accuracy and Surprise Ratio, computed on absolute (denormalized)
// unexpected revenues.
#ifndef AMS_METRICS_METRICS_H_
#define AMS_METRICS_METRICS_H_

#include <vector>

#include "data/features.h"
#include "util/status.h"

namespace ams::metrics {

/// BC (Def. II.1): 1 iff |predicted_ur - actual_ur| < |actual_ur|.
/// Lemma II.1: BC = 1 implies the prediction has the right surprise sign and
/// beats the analysts' consensus in absolute error.
int BoundedCorrection(double predicted_ur, double actual_ur);

/// Per-sample SR (Def. II.2): |predicted_ur - actual_ur| / |actual_ur|.
/// < 1 means the model beats the consensus on this sample. Capped at
/// `cap` because synthetic |actual_ur| can be arbitrarily small (see
/// DESIGN.md §4); the paper's reported averages (<= 6.3) are unaffected.
double SurpriseRatio(double predicted_ur, double actual_ur,
                     double cap = 20.0);

/// Aggregated evaluation of one prediction set.
///
/// The paper aggregates SR as "the average of SR" without specifying the
/// treatment of near-zero |UR| samples. With synthetic Gaussian surprises the
/// unweighted mean of per-sample ratios is dominated by a handful of samples
/// whose |UR| happens to be tiny (the ratio is Cauchy-tailed), which no real
/// dataset with analyst herding exhibits. We therefore report as `sr` the
/// |UR|-weighted aggregate  sum|UR_hat - UR| / sum|UR|  — identical in
/// interpretation (sr < 1 iff the model's total error beats the consensus's)
/// and stable — and keep the capped unweighted mean as `sr_mean_capped` for
/// reference. See DESIGN.md §4.
struct EvalResult {
  double ba = 0.0;        // Bounded Accuracy, percent (0-100)
  double sr = 0.0;        // |UR|-weighted Surprise Ratio (ratio of sums)
  double sr_mean_capped = 0.0;  // unweighted mean of capped per-sample SR
  int num_samples = 0;
  std::vector<int> bc;    // per-sample BC
  std::vector<double> sr_values;  // per-sample (capped) SR
};

/// Evaluates normalized predictions against a dataset: predictions are
/// denormalized with each sample's scale (R_{t-k}) before computing BC/SR.
/// `predictions_norm.size()` must match the dataset.
Result<EvalResult> Evaluate(const data::Dataset& dataset,
                            const std::vector<double>& predictions_norm,
                            double sr_cap = 20.0);

/// Evaluates absolute-unit UR predictions against absolute actual URs.
Result<EvalResult> EvaluateAbsolute(const std::vector<double>& predicted_ur,
                                    const std::vector<double>& actual_ur,
                                    double sr_cap = 20.0);

}  // namespace ams::metrics

#endif  // AMS_METRICS_METRICS_H_
