#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

namespace ams::metrics {

int BoundedCorrection(double predicted_ur, double actual_ur) {
  return std::fabs(predicted_ur - actual_ur) < std::fabs(actual_ur) ? 1 : 0;
}

double SurpriseRatio(double predicted_ur, double actual_ur, double cap) {
  const double abs_ur = std::fabs(actual_ur);
  if (abs_ur == 0.0) return cap;
  return std::min(std::fabs(predicted_ur - actual_ur) / abs_ur, cap);
}

Result<EvalResult> EvaluateAbsolute(const std::vector<double>& predicted_ur,
                                    const std::vector<double>& actual_ur,
                                    double sr_cap) {
  if (predicted_ur.size() != actual_ur.size()) {
    return Status::InvalidArgument("prediction/actual size mismatch");
  }
  if (predicted_ur.empty()) {
    return Status::InvalidArgument("nothing to evaluate");
  }
  EvalResult result;
  result.num_samples = static_cast<int>(predicted_ur.size());
  result.bc.reserve(predicted_ur.size());
  result.sr_values.reserve(predicted_ur.size());
  double bc_sum = 0.0;
  double sr_sum = 0.0;
  double abs_err_sum = 0.0;
  double abs_ur_sum = 0.0;
  for (size_t i = 0; i < predicted_ur.size(); ++i) {
    const int bc = BoundedCorrection(predicted_ur[i], actual_ur[i]);
    const double sr = SurpriseRatio(predicted_ur[i], actual_ur[i], sr_cap);
    result.bc.push_back(bc);
    result.sr_values.push_back(sr);
    bc_sum += bc;
    sr_sum += sr;
    abs_err_sum += std::fabs(predicted_ur[i] - actual_ur[i]);
    abs_ur_sum += std::fabs(actual_ur[i]);
  }
  result.ba = 100.0 * bc_sum / result.num_samples;
  result.sr_mean_capped = sr_sum / result.num_samples;
  result.sr = abs_ur_sum > 0.0 ? abs_err_sum / abs_ur_sum : sr_cap;
  return result;
}

Result<EvalResult> Evaluate(const data::Dataset& dataset,
                            const std::vector<double>& predictions_norm,
                            double sr_cap) {
  if (static_cast<int>(predictions_norm.size()) != dataset.num_samples()) {
    return Status::InvalidArgument("prediction count mismatch");
  }
  std::vector<double> predicted_ur(predictions_norm.size());
  std::vector<double> actual_ur(predictions_norm.size());
  for (size_t i = 0; i < predictions_norm.size(); ++i) {
    predicted_ur[i] = predictions_norm[i] * dataset.meta[i].scale;
    actual_ur[i] = dataset.meta[i].actual_ur;
  }
  return EvaluateAbsolute(predicted_ur, actual_ur, sr_cap);
}

}  // namespace ams::metrics
