#include "ts/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/matrix.h"

namespace ams::ts {

using la::Matrix;

std::vector<double> Difference(const std::vector<double>& series, int d) {
  AMS_DCHECK(d >= 0, "negative differencing order");
  std::vector<double> out = series;
  for (int round = 0; round < d; ++round) {
    AMS_DCHECK(out.size() >= 2, "series too short to difference");
    std::vector<double> next(out.size() - 1);
    for (size_t i = 1; i < out.size(); ++i) next[i - 1] = out[i] - out[i - 1];
    out = std::move(next);
  }
  return out;
}

namespace {

/// OLS via the shared ridge solver with negligible jitter.
Result<Matrix> SolveOls(const Matrix& x, const Matrix& y) {
  return la::RidgeSolve(x, y, /*lambda=*/1e-8);
}

}  // namespace

Result<ArimaModel> ArimaModel::Fit(const std::vector<double>& series,
                                   const ArimaOrder& order) {
  if (order.p < 0 || order.d < 0 || order.q < 0) {
    return Status::InvalidArgument("negative ARIMA order");
  }
  const int n = static_cast<int>(series.size());
  if (n < order.d + 2) {
    return Status::InvalidArgument("series too short for differencing");
  }
  for (double v : series) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite value in series");
    }
  }

  ArimaModel model;
  model.order_ = order;
  model.series_ = series;
  model.differenced_ = Difference(series, order.d);
  const std::vector<double>& w = model.differenced_;
  const int m = static_cast<int>(w.size());

  // Stage 1: long-AR fit to estimate innovations (only needed when q > 0).
  std::vector<double> eps(m, 0.0);
  int stage1_lag = 0;
  if (order.q > 0) {
    stage1_lag = std::max(order.p, order.q) + 1;
    // Keep enough rows for the stage-1 regression itself.
    while (stage1_lag > 0 && m - stage1_lag < stage1_lag + 2) --stage1_lag;
    if (stage1_lag < order.q) {
      return Status::InvalidArgument(
          "series too short for the requested MA order");
    }
    const int rows = m - stage1_lag;
    Matrix x(rows, stage1_lag + 1);
    Matrix y(rows, 1);
    for (int t = stage1_lag; t < m; ++t) {
      const int r = t - stage1_lag;
      x(r, 0) = 1.0;
      for (int lag = 1; lag <= stage1_lag; ++lag) x(r, lag) = w[t - lag];
      y(r, 0) = w[t];
    }
    AMS_ASSIGN_OR_RETURN(Matrix ar_coef, SolveOls(x, y));
    for (int t = stage1_lag; t < m; ++t) {
      double pred = ar_coef(0, 0);
      for (int lag = 1; lag <= stage1_lag; ++lag) {
        pred += ar_coef(lag, 0) * w[t - lag];
      }
      eps[t] = w[t] - pred;
    }
  }

  // Stage 2: regress w_t on its own lags and lagged innovations.
  const int t0 = std::max(order.p, order.q > 0 ? stage1_lag + order.q : 0);
  const int rows = m - t0;
  const int num_params = 1 + order.p + order.q;
  if (rows < num_params + 1) {
    return Status::InvalidArgument("series too short for the ARIMA order");
  }
  Matrix x(rows, num_params);
  Matrix y(rows, 1);
  for (int t = t0; t < m; ++t) {
    const int r = t - t0;
    int c = 0;
    x(r, c++) = 1.0;
    for (int lag = 1; lag <= order.p; ++lag) x(r, c++) = w[t - lag];
    for (int lag = 1; lag <= order.q; ++lag) x(r, c++) = eps[t - lag];
    y(r, 0) = w[t];
  }
  AMS_ASSIGN_OR_RETURN(Matrix coef, SolveOls(x, y));

  model.intercept_ = coef(0, 0);
  model.phi_.assign(order.p, 0.0);
  model.theta_.assign(order.q, 0.0);
  for (int i = 0; i < order.p; ++i) model.phi_[i] = coef(1 + i, 0);
  for (int j = 0; j < order.q; ++j) model.theta_[j] = coef(1 + order.p + j, 0);

  // In-sample residuals under the final model, used as the innovation
  // history for forecasting and for the AIC.
  model.residuals_.assign(m, 0.0);
  double rss = 0.0;
  for (int t = t0; t < m; ++t) {
    double pred = model.intercept_;
    for (int i = 0; i < order.p; ++i) pred += model.phi_[i] * w[t - 1 - i];
    for (int j = 0; j < order.q; ++j) {
      pred += model.theta_[j] * model.residuals_[t - 1 - j];
    }
    model.residuals_[t] = w[t] - pred;
    rss += model.residuals_[t] * model.residuals_[t];
  }
  const double sigma2 = std::max(rss / rows, 1e-300);
  model.aic_ = rows * std::log(sigma2) + 2.0 * num_params;
  return model;
}

Result<ArimaModel> ArimaModel::FitAuto(const std::vector<double>& series,
                                       const ArimaOptions& options) {
  if (series.size() < 2) {
    return Status::InvalidArgument("FitAuto needs >= 2 observations");
  }
  ArimaModel best;
  double best_aic = std::numeric_limits<double>::infinity();
  bool found = false;
  for (int d = 0; d <= options.max_d; ++d) {
    for (int p = 0; p <= options.max_p; ++p) {
      for (int q = 0; q <= options.max_q; ++q) {
        auto fit = Fit(series, ArimaOrder{p, d, q});
        if (!fit.ok()) continue;
        // Comparable AIC only within equal d (same effective sample);
        // penalize differencing mildly to prefer parsimony on ties.
        const double score = fit.ValueOrDie().aic() + 0.5 * d;
        if (score < best_aic) {
          best_aic = score;
          best = fit.MoveValue();
          found = true;
        }
      }
    }
  }
  if (found) return best;
  // Last resort: mean model ARIMA(0,0,0) always fits for n >= 2.
  return Fit(series, ArimaOrder{0, 0, 0});
}

std::vector<double> ArimaModel::Forecast(int horizon) const {
  AMS_DCHECK(horizon >= 1, "horizon must be positive");
  const int p = order_.p;
  const int q = order_.q;
  // Forecast the differenced process with future innovations set to zero.
  std::vector<double> w = differenced_;
  std::vector<double> eps = residuals_;
  std::vector<double> w_forecast(horizon);
  for (int s = 0; s < horizon; ++s) {
    const int t = static_cast<int>(w.size());
    double pred = intercept_;
    for (int i = 0; i < p; ++i) {
      const int idx = t - 1 - i;
      pred += phi_[i] * (idx >= 0 ? w[idx] : 0.0);
    }
    for (int j = 0; j < q; ++j) {
      const int idx = t - 1 - j;
      pred += theta_[j] * (idx >= 0 ? eps[idx] : 0.0);
    }
    w.push_back(pred);
    eps.push_back(0.0);
    w_forecast[s] = pred;
  }

  // Integrate back d times. Maintain the last value of each difference
  // level from the original series.
  std::vector<double> out = w_forecast;
  std::vector<std::vector<double>> levels(order_.d + 1);
  levels[0] = series_;
  for (int lvl = 1; lvl <= order_.d; ++lvl) {
    levels[lvl] = Difference(series_, lvl);
  }
  for (int lvl = order_.d - 1; lvl >= 0; --lvl) {
    double last = levels[lvl].back();
    for (int s = 0; s < horizon; ++s) {
      last += out[s];
      out[s] = last;
    }
  }
  return out;
}

}  // namespace ams::ts
