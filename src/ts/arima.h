// ARIMA(p, d, q) forecasting via Hannan-Rissanen two-stage least squares,
// with AIC-based order selection — the statistical baseline of Tables I/II.
//
// Company revenue histories in this problem are very short (5-15 quarters),
// so the implementation degrades gracefully: orders are clipped to what the
// data supports and a drift forecast is the last resort.
#ifndef AMS_TS_ARIMA_H_
#define AMS_TS_ARIMA_H_

#include <vector>

#include "util/status.h"

namespace ams::ts {

struct ArimaOrder {
  int p = 1;  // autoregressive terms
  int d = 1;  // differencing
  int q = 1;  // moving-average terms
};

struct ArimaOptions {
  /// Candidate orders searched by FitAuto (each clipped to data length).
  int max_p = 2;
  int max_d = 1;
  int max_q = 2;
};

/// Differences `series` `d` times.
std::vector<double> Difference(const std::vector<double>& series, int d);

/// A fitted ARIMA model.
class ArimaModel {
 public:
  /// Fits a fixed order via Hannan-Rissanen. Fails if the (differenced)
  /// series is too short for the requested order.
  static Result<ArimaModel> Fit(const std::vector<double>& series,
                                const ArimaOrder& order);

  /// Order search by AIC over the grid in `options`; always succeeds for a
  /// series with >= 3 points by falling back to simpler candidates
  /// (ultimately a drift model).
  static Result<ArimaModel> FitAuto(const std::vector<double>& series,
                                    const ArimaOptions& options = {});

  /// Forecasts `horizon` steps beyond the end of the training series.
  std::vector<double> Forecast(int horizon) const;

  const ArimaOrder& order() const { return order_; }
  double aic() const { return aic_; }
  const std::vector<double>& ar_coefficients() const { return phi_; }
  const std::vector<double>& ma_coefficients() const { return theta_; }
  double intercept() const { return intercept_; }

 private:
  ArimaOrder order_;
  double intercept_ = 0.0;
  std::vector<double> phi_;    // p AR coefficients
  std::vector<double> theta_;  // q MA coefficients
  double aic_ = 0.0;
  // Training context needed for forecasting.
  std::vector<double> series_;      // original series
  std::vector<double> differenced_; // after d differences
  std::vector<double> residuals_;   // in-sample innovations (aligned to
                                    // differenced_ tail)
};

}  // namespace ams::ts

#endif  // AMS_TS_ARIMA_H_
