#include "serve/artifact.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "robust/atomic_io.h"

namespace ams::serve {

namespace {

constexpr size_t kMagicSize = sizeof(kArtifactMagic) - 1;

obs::Counter& LoadFailureCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Get().GetCounter(
      "serve/artifact_load_failures");
  return counter;
}

/// FNV-1a hex digest (same construction as the AMS checkpoint fingerprint).
std::string HashHex(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Everything that determines a GBDT ensemble's scoring behaviour.
std::string GbdtConfigString(const gbdt::GbdtOptions& options,
                             int num_features, int num_trees) {
  std::ostringstream oss;
  oss << "gbdtmodel1|f" << num_features << "|t" << num_trees << "|lr"
      << options.learning_rate << "|d" << options.max_depth << "|mcw"
      << options.min_child_weight << "|l" << options.reg_lambda << "|msg"
      << options.min_split_gain << "|ss" << options.subsample << "|cs"
      << options.colsample << "|es" << options.early_stopping_rounds << "|r"
      << options.num_rounds << "|s" << options.seed;
  return oss.str();
}

Result<double> FindScalar(const robust::Checkpoint& state,
                          const std::string& key) {
  auto it = state.scalars.find(key);
  if (it == state.scalars.end()) {
    return Status::InvalidArgument("artifact missing scalar '" + key + "'");
  }
  if (!std::isfinite(it->second)) {
    return Status::InvalidArgument("non-finite scalar '" + key +
                                   "' in artifact");
  }
  return it->second;
}

/// Range-checked double -> int for deserialized fields (a raw cast of a
/// corrupted double is undefined behaviour).
Result<int> ScalarToInt(double value, const char* what, int min_value,
                        int max_value) {
  if (!(value >= min_value && value <= max_value)) {
    std::ostringstream oss;
    oss << what << " out of range [" << min_value << ", " << max_value
        << "]: " << value;
    return Status::InvalidArgument(oss.str());
  }
  return static_cast<int>(value);
}

}  // namespace

std::string EncodeArtifact(const robust::Checkpoint& state) {
  std::string out(kArtifactMagic, kMagicSize);
  out += robust::SerializeCheckpoint(state);
  return out;
}

Result<robust::Checkpoint> DecodeArtifact(const std::string& bytes) {
  if (bytes.size() < kMagicSize ||
      bytes.compare(0, kMagicSize, kArtifactMagic) != 0) {
    return Status::InvalidArgument("bad artifact magic (not an AMSMODEL1 "
                                   "file)");
  }
  return robust::DeserializeCheckpoint(bytes.substr(kMagicSize));
}

Result<robust::Checkpoint> GbdtToState(const gbdt::GbdtRegressor& model) {
  if (model.num_trees() == 0 && model.num_features() == 0) {
    return Status::FailedPrecondition("cannot export an unfitted GBDT model");
  }
  const gbdt::GbdtOptions& options = model.options();
  robust::Checkpoint state;
  state.strings["kind"] = "gbdt";
  state.strings["fingerprint"] = HashHex(GbdtConfigString(
      options, model.num_features(), model.num_trees()));
  state.strings["cfg/seed"] = std::to_string(options.seed);
  state.scalars["cfg/learning_rate"] = options.learning_rate;
  state.scalars["cfg/num_rounds"] = options.num_rounds;
  state.scalars["cfg/max_depth"] = options.max_depth;
  state.scalars["cfg/min_child_weight"] = options.min_child_weight;
  state.scalars["cfg/reg_lambda"] = options.reg_lambda;
  state.scalars["cfg/min_split_gain"] = options.min_split_gain;
  state.scalars["cfg/subsample"] = options.subsample;
  state.scalars["cfg/colsample"] = options.colsample;
  state.scalars["cfg/early_stopping_rounds"] = options.early_stopping_rounds;
  state.scalars["base_score"] = model.base_score();
  state.scalars["dim/num_features"] = model.num_features();
  state.scalars["num_trees"] = model.num_trees();
  // One matrix per tree, one row per node:
  // [feature, threshold, left, right, weight, gain, is_leaf].
  for (int t = 0; t < model.num_trees(); ++t) {
    const auto& nodes = model.trees()[t].nodes();
    la::Matrix m(static_cast<int>(nodes.size()), 7);
    for (size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      const int r = static_cast<int>(i);
      m(r, 0) = node.feature;
      m(r, 1) = node.threshold;
      m(r, 2) = node.left;
      m(r, 3) = node.right;
      m(r, 4) = node.weight;
      m(r, 5) = node.gain;
      m(r, 6) = node.is_leaf ? 1.0 : 0.0;
    }
    state.tensors["tree/" + std::to_string(t)] = std::move(m);
  }
  return state;
}

Result<gbdt::GbdtRegressor> GbdtFromState(const robust::Checkpoint& state) {
  auto kind = state.strings.find("kind");
  if (kind == state.strings.end() || kind->second != "gbdt") {
    return Status::InvalidArgument("artifact kind is not 'gbdt'");
  }
  gbdt::GbdtOptions options;
  auto seed = state.strings.find("cfg/seed");
  if (seed == state.strings.end() || seed->second.empty() ||
      seed->second.size() > 20 ||
      seed->second.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed seed in GBDT artifact");
  }
  options.seed = std::strtoull(seed->second.c_str(), nullptr, 10);
  AMS_ASSIGN_OR_RETURN(options.learning_rate,
                       FindScalar(state, "cfg/learning_rate"));
  double raw;
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/num_rounds"));
  AMS_ASSIGN_OR_RETURN(options.num_rounds,
                       ScalarToInt(raw, "num_rounds", 0, 1 << 20));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/max_depth"));
  AMS_ASSIGN_OR_RETURN(options.max_depth,
                       ScalarToInt(raw, "max_depth", 0, 64));
  AMS_ASSIGN_OR_RETURN(options.min_child_weight,
                       FindScalar(state, "cfg/min_child_weight"));
  AMS_ASSIGN_OR_RETURN(options.reg_lambda,
                       FindScalar(state, "cfg/reg_lambda"));
  AMS_ASSIGN_OR_RETURN(options.min_split_gain,
                       FindScalar(state, "cfg/min_split_gain"));
  AMS_ASSIGN_OR_RETURN(options.subsample, FindScalar(state, "cfg/subsample"));
  AMS_ASSIGN_OR_RETURN(options.colsample, FindScalar(state, "cfg/colsample"));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/early_stopping_rounds"));
  AMS_ASSIGN_OR_RETURN(options.early_stopping_rounds,
                       ScalarToInt(raw, "early_stopping_rounds", 0, 1 << 20));

  AMS_ASSIGN_OR_RETURN(double base_score, FindScalar(state, "base_score"));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "dim/num_features"));
  AMS_ASSIGN_OR_RETURN(int num_features,
                       ScalarToInt(raw, "num_features", 1, 65536));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "num_trees"));
  AMS_ASSIGN_OR_RETURN(int num_trees,
                       ScalarToInt(raw, "num_trees", 0, 1 << 20));

  auto fingerprint = state.strings.find("fingerprint");
  const std::string expected =
      HashHex(GbdtConfigString(options, num_features, num_trees));
  if (fingerprint == state.strings.end() || fingerprint->second != expected) {
    return Status::InvalidArgument("GBDT artifact fingerprint mismatch");
  }

  std::vector<gbdt::RegressionTree> trees;
  trees.reserve(num_trees);
  for (int t = 0; t < num_trees; ++t) {
    auto it = state.tensors.find("tree/" + std::to_string(t));
    if (it == state.tensors.end()) {
      return Status::InvalidArgument("artifact missing tree/" +
                                     std::to_string(t));
    }
    const la::Matrix& m = it->second;
    if (m.cols() != 7 || m.rows() < 1) {
      return Status::InvalidArgument("malformed tree matrix in artifact");
    }
    std::vector<gbdt::RegressionTree::Node> nodes(m.rows());
    for (int r = 0; r < m.rows(); ++r) {
      gbdt::RegressionTree::Node& node = nodes[r];
      node.is_leaf = m(r, 6) != 0.0;
      node.threshold = m(r, 1);
      node.weight = m(r, 4);
      node.gain = m(r, 5);
      AMS_ASSIGN_OR_RETURN(node.feature,
                           ScalarToInt(m(r, 0), "node feature", -1, 65535));
      AMS_ASSIGN_OR_RETURN(
          node.left, ScalarToInt(m(r, 2), "node child", -1, m.rows() - 1));
      AMS_ASSIGN_OR_RETURN(
          node.right, ScalarToInt(m(r, 3), "node child", -1, m.rows() - 1));
    }
    AMS_ASSIGN_OR_RETURN(
        gbdt::RegressionTree tree,
        gbdt::RegressionTree::FromNodes(std::move(nodes), num_features));
    trees.push_back(std::move(tree));
  }
  return gbdt::GbdtRegressor::FromParts(options, base_score, num_features,
                                        std::move(trees));
}

Result<robust::Checkpoint> LoadArtifactState(const std::string& path) {
  auto bytes = robust::ReadFileVerified(path);
  if (!bytes.ok()) {
    LoadFailureCounter().Increment();
    return bytes.status();
  }
  auto state = DecodeArtifact(bytes.ValueOrDie());
  if (!state.ok()) {
    LoadFailureCounter().Increment();
    return state.status();
  }
  return state;
}

Result<ArtifactInfo> ProbeArtifact(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(robust::Checkpoint state, LoadArtifactState(path));
  ArtifactInfo info;
  auto kind = state.strings.find("kind");
  auto fingerprint = state.strings.find("fingerprint");
  if (kind == state.strings.end() || fingerprint == state.strings.end()) {
    LoadFailureCounter().Increment();
    return Status::InvalidArgument("artifact payload missing kind or "
                                   "fingerprint");
  }
  info.kind = kind->second;
  info.fingerprint = fingerprint->second;
  return info;
}

Status SaveAmsArtifact(const std::string& path, const core::AmsModel& model) {
  AMS_ASSIGN_OR_RETURN(robust::Checkpoint state, model.ExportState());
  obs::MetricsRegistry::Get().GetCounter("serve/artifact_saves").Increment();
  return robust::AtomicWriteFile(path, EncodeArtifact(state));
}

Result<core::AmsModel> LoadAmsArtifact(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(robust::Checkpoint state, LoadArtifactState(path));
  auto model = core::AmsModel::FromState(state);
  if (!model.ok()) {
    LoadFailureCounter().Increment();
    return model.status();
  }
  obs::MetricsRegistry::Get()
      .GetCounter("serve/artifact_loads", {{"kind", "ams"}})
      .Increment();
  return model;
}

Status SaveGbdtArtifact(const std::string& path,
                        const gbdt::GbdtRegressor& model) {
  AMS_ASSIGN_OR_RETURN(robust::Checkpoint state, GbdtToState(model));
  obs::MetricsRegistry::Get().GetCounter("serve/artifact_saves").Increment();
  return robust::AtomicWriteFile(path, EncodeArtifact(state));
}

Result<gbdt::GbdtRegressor> LoadGbdtArtifact(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(robust::Checkpoint state, LoadArtifactState(path));
  auto model = GbdtFromState(state);
  if (!model.ok()) {
    LoadFailureCounter().Increment();
    return model.status();
  }
  obs::MetricsRegistry::Get()
      .GetCounter("serve/artifact_loads", {{"kind", "gbdt"}})
      .Increment();
  return model;
}

}  // namespace ams::serve
