#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "data/features.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/artifact.h"
#include "serve/env_util.h"
#include "util/logging.h"

namespace ams::serve {

namespace {

using internal::EnvDouble;
using internal::EnvInt;

using Clock = std::chrono::steady_clock;

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.max_batch = EnvInt("AMS_SERVE_BATCH", options.max_batch, 1, 4096);
  options.max_wait_ms =
      EnvDouble("AMS_SERVE_MAX_WAIT_MS", options.max_wait_ms, 0.0, 60000.0);
  return options;
}

InferenceServer::InferenceServer(ServerOptions options)
    : options_(options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  requests_ok_ = &registry.GetCounter("serve/requests", {{"outcome", "ok"}});
  requests_error_ =
      &registry.GetCounter("serve/requests", {{"outcome", "error"}});
  batches_ = &registry.GetCounter("serve/batches");
  reloads_ = &registry.GetCounter("serve/reloads");
  reload_checks_ = &registry.GetCounter("serve/reload_checks");
  reload_errors_ = &registry.GetCounter("serve/reload_errors");
  queue_depth_ = &registry.GetGauge("serve/queue_depth");
  model_version_gauge_ = &registry.GetGauge("serve/model_version");
  batch_size_ = &registry.GetHistogram(
      "serve/batch_size", obs::Histogram::ExponentialBounds(1.0, 2.0, 13));
  latency_ms_ = &registry.GetHistogram("serve/latency_ms",
                                       obs::Histogram::ExponentialBounds());
  queue_ms_ = &registry.GetHistogram("serve/queue_ms",
                                     obs::Histogram::ExponentialBounds());
  batch_form_ms_ = &registry.GetHistogram(
      "serve/batch_form_ms", obs::Histogram::ExponentialBounds());
  compute_ms_ = &registry.GetHistogram("serve/compute_ms",
                                       obs::Histogram::ExponentialBounds());
  batcher_ = std::thread([this] { BatchLoop(); });
}

InferenceServer::~InferenceServer() {
  StopReloadWatcher();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  batcher_.join();
}

Status InferenceServer::InstallModel(core::AmsModel model) {
  if (!model.fitted()) {
    return Status::FailedPrecondition(
        "InferenceServer requires a fitted model");
  }
  AMS_ASSIGN_OR_RETURN(std::string fingerprint, model.ModelFingerprint());
  std::shared_ptr<LoadedModel> loaded(
      new LoadedModel{std::move(model), fingerprint, 0});
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    loaded->version = ++next_version_;
    model_version_gauge_->Set(loaded->version);
    model_ = std::move(loaded);
  }
  reloads_->Increment();
  obs::SetLedgerComponent("serve_model_fingerprint", fingerprint);
  return Status::OK();
}

Status InferenceServer::LoadModel(core::AmsModel model) {
  return InstallModel(std::move(model));
}

Status InferenceServer::LoadArtifact(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(core::AmsModel model, LoadAmsArtifact(path));
  return InstallModel(std::move(model));
}

Status InferenceServer::ReloadIfChanged(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(ArtifactInfo info, ProbeArtifact(path));
  if (info.kind != "ams") {
    return Status::InvalidArgument("artifact at " + path +
                                   " is not an AMS model (kind '" +
                                   info.kind + "')");
  }
  if (info.fingerprint == model_fingerprint()) return Status::OK();
  return LoadArtifact(path);
}

Status InferenceServer::StartReloadWatcher(const std::string& path,
                                           double interval_ms) {
  if (!(interval_ms > 0.0)) {
    return Status::InvalidArgument("reload watch interval must be > 0 ms");
  }
  std::lock_guard<std::mutex> lock(watch_mu_);
  if (watcher_.joinable()) {
    return Status::FailedPrecondition("a reload watcher is already running");
  }
  watch_stop_ = false;
  watcher_ = std::thread(
      [this, path, interval_ms] { ReloadWatchLoop(path, interval_ms); });
  return Status::OK();
}

void InferenceServer::StopReloadWatcher() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    if (!watcher_.joinable()) return;
    watch_stop_ = true;
    to_join = std::move(watcher_);
  }
  watch_cv_.notify_all();
  to_join.join();
}

void InferenceServer::ReloadWatchLoop(std::string path, double interval_ms) {
  namespace fs = std::filesystem;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(interval_ms));
  fs::file_time_type last_mtime = fs::file_time_type::min();
  bool primed = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watch_mu_);
      if (watch_cv_.wait_for(lock, interval, [this] { return watch_stop_; })) {
        return;
      }
    }
    reload_checks_->Increment();
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(path, ec);
    if (ec) continue;  // absent / unreadable: retry next tick
    if (primed && mtime == last_mtime) continue;
    // First sighting, or the mtime moved: probe the fingerprint and swap
    // only on a real change. A failed load keeps the current model.
    const Status status = ReloadIfChanged(path);
    if (!status.ok()) {
      reload_errors_->Increment();
      AMS_LOG(Warning) << "reload watcher: " << path << ": " << status;
      continue;  // leave last_mtime untouched so the next tick retries
    }
    last_mtime = mtime;
    primed = true;
  }
}

int InferenceServer::model_version() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_ != nullptr ? model_->version : 0;
}

std::string InferenceServer::model_fingerprint() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_ != nullptr ? model_->fingerprint : std::string();
}

bool InferenceServer::model_shape(int* rows, int* cols) const {
  std::lock_guard<std::mutex> lock(model_mu_);
  if (model_ == nullptr) return false;
  *rows = model_->model.num_companies();
  *cols = model_->model.num_features();
  return true;
}

std::future<Result<std::vector<double>>> InferenceServer::Admit(
    const la::Matrix& features, Status* rejected) {
  std::shared_ptr<const LoadedModel> snapshot;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    snapshot = model_;
  }
  if (snapshot == nullptr) {
    *rejected = Status::FailedPrecondition("no model loaded");
    requests_error_->Increment();
    return {};
  }
  const core::AmsModel& model = snapshot->model;
  if (features.rows() != model.num_companies() ||
      features.cols() != model.num_features()) {
    *rejected = Status::InvalidArgument(
        "request shape " + std::to_string(features.rows()) + "x" +
        std::to_string(features.cols()) + " does not match model " +
        std::to_string(model.num_companies()) + "x" +
        std::to_string(model.num_features()));
    requests_error_->Increment();
    return {};
  }
  Pending pending;
  pending.features = &features;
  pending.model = std::move(snapshot);
  pending.admitted = Clock::now();
  // The caller's innermost span (Score/ScoreBatch's serve/request) becomes
  // the parent of this request's phase spans on the batcher thread.
  pending.trace = obs::CurrentTraceContext();
  std::future<Result<std::vector<double>>> future =
      pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      *rejected = Status::FailedPrecondition("server is shutting down");
      requests_error_->Increment();
      return {};
    }
    queue_.push_back(std::move(pending));
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

Result<std::vector<double>> InferenceServer::Score(
    const la::Matrix& features) {
  AMS_TRACE_SPAN("serve/request");
  Status rejected;
  std::future<Result<std::vector<double>>> future = Admit(features, &rejected);
  if (!future.valid()) return rejected;
  return future.get();
}

std::vector<Result<std::vector<double>>> InferenceServer::ScoreBatch(
    const std::vector<la::Matrix>& blocks) {
  AMS_TRACE_SPAN("serve/request");
  std::vector<Status> rejected(blocks.size());
  std::vector<std::future<Result<std::vector<double>>>> futures;
  futures.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    futures.push_back(Admit(blocks[i], &rejected[i]));
  }
  std::vector<Result<std::vector<double>>> results;
  results.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (futures[i].valid()) {
      results.push_back(futures[i].get());
    } else {
      results.push_back(rejected[i]);
    }
  }
  return results;
}

void InferenceServer::BatchLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and fully drained

    // The oldest request defines the batch's model and its deadline; only
    // consecutive requests admitted under the same model snapshot may join
    // (drain-on-old-model across hot reloads).
    const LoadedModel* batch_model = queue_.front().model.get();
    const auto deadline =
        queue_.front().admitted +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(options_.max_wait_ms));
    auto same_model_prefix = [this, batch_model] {
      size_t n = 0;
      while (n < queue_.size() && queue_[n].model.get() == batch_model) ++n;
      return n;
    };
    while (!stopping_ &&
           same_model_prefix() < static_cast<size_t>(options_.max_batch)) {
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }

    const size_t take =
        std::min(same_model_prefix(), static_cast<size_t>(options_.max_batch));
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_depth_->Set(static_cast<double>(queue_.size()));
    lock.unlock();
    ExecuteBatch(std::move(batch), Clock::now());
    lock.lock();
  }
}

void InferenceServer::ExecuteBatch(
    std::vector<Pending> batch, std::chrono::steady_clock::time_point
                                    batch_start) {
  AMS_TRACE_SPAN("serve/batch");
  if (batch.empty()) return;
  batches_->Increment();
  batch_size_->Observe(static_cast<double>(batch.size()));

  const core::AmsModel& model = batch.front().model->model;
  const int num_companies = model.num_companies();
  const int num_features = model.num_features();
  const int k = static_cast<int>(batch.size());

  // One synthetic quarter per request: AmsModel forwards quarters
  // independently, so packing K blocks is bit-identical to K single calls.
  data::Dataset dataset;
  dataset.x = la::Matrix(k * num_companies, num_features);
  dataset.y.assign(static_cast<size_t>(k) * num_companies, 0.0);
  dataset.meta.resize(static_cast<size_t>(k) * num_companies);
  for (int b = 0; b < k; ++b) {
    const la::Matrix& block = *batch[b].features;
    std::memcpy(dataset.x.row_data(b * num_companies), block.data(),
                static_cast<size_t>(num_companies) * num_features *
                    sizeof(double));
    for (int i = 0; i < num_companies; ++i) {
      data::SampleMeta& meta = dataset.meta[b * num_companies + i];
      meta.company = i;
      meta.quarter = b;
    }
  }

  const auto predict_start = Clock::now();
  Result<std::vector<double>> predictions = [&] {
    AMS_TRACE_SPAN("serve/batch/predict");
    // Executed inline on the batcher thread: AmsModel::Predict is not safe
    // for concurrent calls on one instance (GAT/GCN forward caches), and
    // the GEMMs inside already parallelize on the default pool.
    return model.Predict(dataset);
  }();
  const auto predict_end = Clock::now();

  // Per-request phase attribution. Batch formation and compute are shared
  // work, but latency is a per-request quantity, so each request observes
  // the full shared interval — then queue + batch_form + compute sums to
  // latency minus only the response fan-out below. When tracing is on, the
  // same intervals are replayed as spans parented under each request's
  // serve/request span (tagged with the model version), which is what links
  // the caller and batcher lanes into one trace per request.
  const bool tracing = obs::TraceBuffer::Get().enabled();
  const auto ms = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  };
  const uint64_t version =
      static_cast<uint64_t>(batch.front().model->version);
  const auto now = Clock::now();
  for (int b = 0; b < k; ++b) {
    queue_ms_->Observe(ms(batch[b].admitted, batch_start));
    batch_form_ms_->Observe(ms(batch_start, predict_start));
    compute_ms_->Observe(ms(predict_start, predict_end));
    if (tracing) {
      obs::RecordSpanWithParent("serve/queue", batch[b].trace,
                                batch[b].admitted, batch_start, version);
      obs::RecordSpanWithParent("serve/batch_form", batch[b].trace,
                                batch_start, predict_start, version);
      obs::RecordSpanWithParent("serve/compute", batch[b].trace,
                                predict_start, predict_end, version);
    }
    latency_ms_->Observe(ms(batch[b].admitted, now));
    if (!predictions.ok()) {
      requests_error_->Increment();
      batch[b].promise.set_value(predictions.status());
      continue;
    }
    const std::vector<double>& all = predictions.ValueOrDie();
    std::vector<double> scores(
        all.begin() + static_cast<size_t>(b) * num_companies,
        all.begin() + static_cast<size_t>(b + 1) * num_companies);
    requests_ok_->Increment();
    batch[b].promise.set_value(std::move(scores));
  }
}

}  // namespace ams::serve
