// Deadline-aware network front for the in-process InferenceServer: a
// loopback TCP socket server speaking the AMSNET1 frame format
// (serve/framing.h) with real admission control, so the serving edge
// degrades gracefully under abuse instead of falling over.
//
// Architecture — three thread roles around one bounded dispatch queue:
//
//   accept thread      accepts connections (conn_drop@accept injection
//                      point) and spawns one reader per connection
//   reader threads     read frames (torn_frame/slow_peer@net_read
//                      injection points), decode, and run ADMISSION:
//                        * decode failure -> error response, connection
//                          closed (framing is unrecoverable after garbage)
//                        * deadline already expired (a slow peer dribbled
//                          the frame in) -> deadline response, never queued
//                        * dispatch queue at AMS_SERVE_QUEUE -> SHED: an
//                          immediate kUnavailable response, never queued
//   worker threads     pick admitted requests up, re-check the deadline at
//                      pickup (queue wait may have expired it -> deadline
//                      response, never scored), then block on
//                      InferenceServer::Score — concurrent workers are
//                      what the batcher co-batches
//
// Every response write passes the conn_drop@net_write injection point.
//
// Admission-control state machine (per score request):
//
//       read frame ──decode ok──> admission check
//         │                         │  queue full ──────> SHED (kUnavailable)
//         │ decode error            │  deadline expired ─> DEADLINE
//         v                         v
//       ERROR + close             queued ──pickup──> deadline re-check
//                                                      │ expired ─> DEADLINE
//                                                      v
//                                                    scored -> OK | ERROR
//
// Shedding and deadlines are *answered*, not dropped: the client always
// gets a well-formed frame carrying a distinct Status (kUnavailable /
// kDeadlineExceeded), so a closed-loop client never hangs on an
// overloaded server.
//
// Observability: the serve/requests{outcome=...} counter family gains
// shed and deadline outcomes at this layer (ok and error are counted by
// the InferenceServer underneath — exactly one outcome per request);
// serve/shed_rate gauge (lifetime shed fraction of score requests, the
// SLO hook: AMS_SLO="serve/shed_rate:<0.2"); serve/net_connections and
// serve/net_queue_depth gauges; serve/net_accepted and
// serve/net_decode_errors counters; serve/net_latency_ms histogram
// (frame arrival to response written, all outcomes).
#ifndef AMS_SERVE_NET_SERVER_H_
#define AMS_SERVE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "la/matrix.h"
#include "obs/admin.h"
#include "serve/framing.h"
#include "serve/server.h"
#include "util/status.h"

namespace ams::serve {

struct NetServerOptions {
  /// TCP port to bind on 127.0.0.1 (AMS_SERVE_PORT); 0 = kernel-assigned,
  /// read the result from NetServer::port().
  int port = 0;
  /// Bound on requests admitted but not yet picked up (AMS_SERVE_QUEUE).
  /// Admissions beyond it are shed with kUnavailable.
  int max_queue = 64;
  /// Deadline applied to requests that carry deadline_ms=0
  /// (AMS_SERVE_DEADLINE_MS); 0 = no default deadline.
  int default_deadline_ms = 0;
  /// Dispatcher threads blocking on InferenceServer::Score
  /// (AMS_SERVE_WORKERS). Concurrent workers are what the micro-batcher
  /// packs into one Predict call.
  int num_workers = 2;
  /// listen(2) backlog.
  int backlog = 64;

  /// Reads AMS_SERVE_PORT / AMS_SERVE_QUEUE / AMS_SERVE_DEADLINE_MS /
  /// AMS_SERVE_WORKERS, keeping defaults for unset values and logging one
  /// AMS_LOG warning per unparseable one.
  static NetServerOptions FromEnv();
};

class NetServer {
 public:
  /// `inference` must outlive this object and have a model loaded before
  /// the first score request arrives (requests beforehand get clean
  /// FailedPrecondition responses).
  explicit NetServer(InferenceServer* inference,
                     NetServerOptions options = NetServerOptions::FromEnv());
  /// Stops (drains admitted requests with responses, joins every thread).
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept + worker threads.
  Status Start();

  /// Graceful shutdown: stop admitting (new score requests are answered
  /// kUnavailable), drain the dispatch queue through the workers, then
  /// close every connection and join all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start), 0 before.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// The admin plane's bound port; 0 when AMS_ADMIN_PORT is unset or the
  /// admin server failed to start (its failure never fails serving).
  int admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }

  const NetServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One live connection. The fd is shut down (unblocking reader and
  /// failing writers) wherever the connection dies, but only closed by the
  /// destructor — after every thread holding the shared_ptr let go — so an
  /// fd number can never be recycled under a concurrent writer.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    void ShutDown();  // idempotent

    const int fd;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  struct Admitted {
    std::shared_ptr<Conn> conn;
    uint64_t request_id = 0;
    la::Matrix features;
    Clock::time_point arrival;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void WorkerLoop();

  /// Handles one decoded frame on the reader thread: info requests are
  /// answered inline; score requests go through admission. Returns false
  /// when the connection must close.
  bool HandleFrame(const std::shared_ptr<Conn>& conn, std::string body,
                   Clock::time_point arrival, bool torn);

  /// Writes one response frame through the conn_drop@net_write injection
  /// point; a fired fault or a write error shuts the connection down.
  void SendResponse(const std::shared_ptr<Conn>& conn, FrameType type,
                    uint64_t request_id, const Status& status,
                    const std::vector<double>& values);

  void FinishScoreRequest(const Admitted& request, const Status& status,
                          const std::vector<double>& values);
  void RecordShedDecision(bool shed);

  InferenceServer* const inference_;
  const NetServerOptions options_;

  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;  // guards queue_, in_flight_, worker_stop_
  std::condition_variable queue_cv_;  // workers wait here
  std::condition_variable drain_cv_;  // Stop waits for queue + in-flight
  std::deque<Admitted> queue_;
  int in_flight_ = 0;
  bool worker_stop_ = false;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::condition_variable readers_cv_;
  int active_readers_ = 0;  // guarded by conns_mu_

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  // Live introspection plane (AMS_ADMIN_PORT); started with the server,
  // stopped after the 4-phase drain so operators can watch a shutdown.
  std::unique_ptr<obs::AdminServer> admin_;

  // Cumulative admission decisions for the shed-rate gauge.
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> sheds_{0};

  // Cached instruments (see class comment for the names).
  class Metrics;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_NET_SERVER_H_
