// Shared env-variable parsing for the serving layer's *Options::FromEnv
// readers. Unset variables keep the fallback silently; set-but-unparseable
// (or out-of-range) values also keep the fallback but log one AMS_LOG
// warning naming the variable, so a typo'd knob is visible instead of
// silently ignored.
#ifndef AMS_SERVE_ENV_UTIL_H_
#define AMS_SERVE_ENV_UTIL_H_

namespace ams::serve::internal {

int EnvInt(const char* name, int fallback, int min_value, int max_value);
double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value);

}  // namespace ams::serve::internal

#endif  // AMS_SERVE_ENV_UTIL_H_
