// Forwarder: the serving layer's FromEnv parsing helpers moved to
// util/env_util.h so the obs admin plane (linked *below* ams_serve) can
// share the same warn-once-per-unparseable-variable contract. Existing
// serve call sites keep the ams::serve::internal spelling.
#ifndef AMS_SERVE_ENV_UTIL_H_
#define AMS_SERVE_ENV_UTIL_H_

#include "util/env_util.h"

namespace ams::serve::internal {

using ams::env::EnvDouble;
using ams::env::EnvInt;

}  // namespace ams::serve::internal

#endif  // AMS_SERVE_ENV_UTIL_H_
