// In-process batched inference server over a fitted AMS model.
//
// Callers score one quarter block at a time — an (num_companies x
// num_features) feature matrix, rows ordered by company index, exactly the
// per-quarter layout data::FeatureBuilder produces and AmsModel::Predict
// consumes. Requests are admitted onto a queue and a single batcher thread
// micro-batches them: up to `max_batch` consecutive requests against the
// same model version are packed into one multi-quarter Dataset (one synthetic
// quarter per request) and scored with a single AmsModel::Predict call.
//
// Because the master forward pass processes quarters independently and the
// underlying GEMMs are bit-deterministic across AMS_THREADS (see src/par),
// the scores returned for a request are bit-identical to calling
// AmsModel::Predict on that block alone — at every batch size and thread
// count. The golden-parity suite in tests/serve_test.cc enforces this.
//
// Hot reload: LoadArtifact / LoadModel atomically swap in a new model. Every
// request snapshots the current model at admission, and a batch only groups
// requests that share a snapshot, so in-flight requests always score on the
// model that admitted them ("drain on the old model") and a swap is never
// observed mid-batch. The old model is freed when its last in-flight
// request completes.
//
// Observability: serve/requests{outcome=ok|shed|deadline|error} (this
// layer emits ok and error; the network front in serve/net_server.h emits
// shed and deadline on the same counter family), serve/batches,
// serve/reloads, serve/reload_checks counters; serve/batch_size and
// serve/latency_ms histograms (the latter feeds the p50/p95/p99 exit
// report); serve/queue_depth and serve/model_version gauges; trace spans
// serve/request (admission to completion) and serve/batch ->
// serve/batch/predict on the batcher thread.
//
// Request causality: Admit captures the caller's obs::CurrentTraceContext()
// into the pending request, and after the batch executes the batcher
// replays per-request phase spans — serve/queue (admission -> batch
// pickup), serve/batch_form (pickup -> predict start), serve/compute
// (predict) — each parented under that request's serve/request span and
// tagged with the serving model version, so every request renders as one
// connected trace across the caller and batcher lanes (Chrome flow
// events). The same intervals feed per-request phase histograms
// serve/queue_ms / serve/batch_form_ms / serve/compute_ms, which sum to
// serve/latency_ms minus the (tiny) response fan-out.
#ifndef AMS_SERVE_SERVER_H_
#define AMS_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ams/ams_model.h"
#include "la/matrix.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ams::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace ams::obs

namespace ams::serve {

struct ServerOptions {
  /// Maximum requests packed into one Predict call (AMS_SERVE_BATCH).
  int max_batch = 8;
  /// How long the batcher holds an admitted request open for co-batching
  /// before executing a partial batch (AMS_SERVE_MAX_WAIT_MS).
  double max_wait_ms = 1.0;

  /// Reads AMS_SERVE_BATCH / AMS_SERVE_MAX_WAIT_MS, keeping the defaults
  /// for unset or unparseable values. A set-but-unparseable value logs one
  /// AMS_LOG warning naming the variable.
  static ServerOptions FromEnv();
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = ServerOptions::FromEnv());
  /// Drains every admitted request (scored on its admission-time model),
  /// then joins the batcher thread.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Atomically swaps in a fitted model. In-flight requests drain on the
  /// model they were admitted under; new admissions see the new model.
  Status LoadModel(core::AmsModel model);

  /// Loads an AMSMODEL1 artifact (CRC-verified, bounds-checked) and swaps
  /// it in. On any load error the current model keeps serving.
  Status LoadArtifact(const std::string& path);

  /// Probes the artifact's fingerprint and reloads only when it differs
  /// from the loaded model's. Prefer StartReloadWatcher for production
  /// wiring; this remains the one-shot building block underneath it.
  Status ReloadIfChanged(const std::string& path);

  /// Starts the mtime-watch reload daemon: a background thread stats
  /// `path` every `interval_ms` (counting each probe in
  /// serve/reload_checks) and runs ReloadIfChanged only when the file's
  /// mtime moved — so steady state costs one stat() per interval, not an
  /// artifact read. A missing file is not an error (the next tick retries);
  /// a failed reload keeps the current model serving and is counted in
  /// serve/reload_errors. FailedPrecondition when a watcher is already
  /// running.
  Status StartReloadWatcher(const std::string& path,
                            double interval_ms = 200.0);
  /// Stops and joins the watcher thread; no-op when none is running. Also
  /// called by the destructor, which joins cleanly mid-interval.
  void StopReloadWatcher();

  /// Scores one quarter block (num_companies x num_features, rows ordered
  /// by company index). Blocks until the batcher has executed the request;
  /// returns one normalized-UR score per company. `features` must stay
  /// alive until this returns.
  Result<std::vector<double>> Score(const la::Matrix& features);

  /// Admits every block, then waits for all of them; result i corresponds
  /// to blocks[i]. Shape errors are reported per block, not globally.
  std::vector<Result<std::vector<double>>> ScoreBatch(
      const std::vector<la::Matrix>& blocks);

  /// Monotone version of the loaded model (0 = none loaded yet).
  int model_version() const;
  /// Shape a request block must have (rows = companies, cols = features).
  /// False when no model is loaded.
  bool model_shape(int* rows, int* cols) const;
  /// Config fingerprint of the loaded model ("" = none loaded yet).
  std::string model_fingerprint() const;
  bool has_model() const { return model_version() > 0; }

  const ServerOptions& options() const { return options_; }

 private:
  struct LoadedModel {
    core::AmsModel model;
    std::string fingerprint;
    int version = 0;
  };

  struct Pending {
    const la::Matrix* features = nullptr;
    std::shared_ptr<const LoadedModel> model;
    std::chrono::steady_clock::time_point admitted;
    obs::TraceContext trace;  // caller's context at admission
    std::promise<Result<std::vector<double>>> promise;
  };

  Status InstallModel(core::AmsModel model);

  /// Validates and enqueues one request; the returned future is fulfilled
  /// by the batcher. An invalid future (valid() == false) means the request
  /// was rejected at admission and `*rejected` holds why.
  std::future<Result<std::vector<double>>> Admit(const la::Matrix& features,
                                                 Status* rejected);

  void BatchLoop();
  void ReloadWatchLoop(std::string path, double interval_ms);
  /// Scores one batch of same-model requests on the batcher thread and
  /// fulfills their promises. `batch_start` is when the batcher took the
  /// batch off the queue (end of each request's queue phase). Never throws.
  void ExecuteBatch(std::vector<Pending> batch,
                    std::chrono::steady_clock::time_point batch_start);

  const ServerOptions options_;

  mutable std::mutex model_mu_;
  std::shared_ptr<const LoadedModel> model_;  // guarded by model_mu_
  int next_version_ = 0;                      // guarded by model_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;  // guarded by queue_mu_
  bool stopping_ = false;      // guarded by queue_mu_

  // Reload watcher state (guarded by watch_mu_ except the thread itself).
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  std::thread watcher_;

  obs::Counter* requests_ok_;
  obs::Counter* requests_error_;
  obs::Counter* batches_;
  obs::Counter* reloads_;
  obs::Counter* reload_checks_;
  obs::Counter* reload_errors_;
  obs::Gauge* queue_depth_;
  obs::Gauge* model_version_gauge_;
  obs::Histogram* batch_size_;
  obs::Histogram* latency_ms_;
  obs::Histogram* queue_ms_;       // admission -> batcher pickup
  obs::Histogram* batch_form_ms_;  // pickup -> predict start
  obs::Histogram* compute_ms_;     // predict

  std::thread batcher_;  // last: started after every member is ready
};

}  // namespace ams::serve

#endif  // AMS_SERVE_SERVER_H_
