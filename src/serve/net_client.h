// Client library for the AMSNET1 socket front (serve/net_server.h).
//
// Synchronous request/response over one loopback TCP connection, with
// bounded retry-with-backoff (robust::RunWithRetry) around TRANSPORT
// failures only: connect failures, dropped connections, torn or corrupt
// response frames. Scoring is pure, so resending a request whose response
// was lost is safe. Application-level responses — including the server's
// kUnavailable shed and kDeadlineExceeded answers — are returned to the
// caller verbatim and never retried here: blind retry against an
// overloaded server is how load shedding gets defeated, so backoff policy
// for those belongs to the caller.
//
// Not thread-safe: one NetClient owns one connection and matches responses
// to requests by id sequentially. Use one client per thread.
#ifndef AMS_SERVE_NET_CLIENT_H_
#define AMS_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "serve/framing.h"
#include "util/status.h"

namespace ams::serve {

struct NetClientOptions {
  /// Transport retry budget (attempts, first try included) and backoff
  /// base; see robust::RetryOptions.
  int max_attempts = 3;
  int base_backoff_ms = 1;
};

class NetClient {
 public:
  /// Connects lazily on first request; `port` is a NetServer on loopback.
  explicit NetClient(int port, NetClientOptions options = NetClientOptions());
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Scores one quarter block under the server's default deadline.
  Result<std::vector<double>> Score(const la::Matrix& features) {
    return ScoreWithDeadline(features, 0);
  }
  /// Scores with an explicit per-request deadline (0 = server default).
  /// Shed and expired requests come back as kUnavailable /
  /// kDeadlineExceeded statuses.
  Result<std::vector<double>> ScoreWithDeadline(const la::Matrix& features,
                                                uint32_t deadline_ms);

  struct ModelInfo {
    int rows = 0;
    int cols = 0;
    int model_version = 0;
  };
  /// Asks the server for the loaded model's block shape and version.
  Result<ModelInfo> Info();

 private:
  Status EnsureConnected();
  void Disconnect();
  /// Sends `wire` and reads the matching response; transport failures are
  /// retried on a fresh connection per options_.
  Result<Frame> RoundTrip(const std::string& wire, FrameType want,
                          uint64_t request_id);

  const int port_;
  const NetClientOptions options_;
  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_NET_CLIENT_H_
