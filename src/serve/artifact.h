// AMSMODEL1: the versioned model-artifact format of the serving layer.
//
// An artifact is the literal magic "AMSMODEL1" followed by a serialized
// robust::Checkpoint carrying the model kind ("ams" or "gbdt"), a
// model-config fingerprint, and every tensor/scalar needed to reconstruct
// the fitted model bit-exactly (matrix payloads are raw IEEE-754 bytes).
// Files are written through robust::AtomicWriteFile — temp + flush + rename
// with a trailing CRC32 footer — and read through robust::ReadFileVerified,
// so a serving process can never observe a half-written artifact, and torn
// writes, bit rot, or injected read faults (bit_flip@read / partial_read@read
// in AMS_FAULTS) surface as a clean error Status instead of silent
// mis-scoring.
//
// Three layers of rejection, outermost first:
//   1. CRC footer (robust/atomic_io): truncation and byte corruption.
//   2. Bounds-checked checkpoint decode (robust/checkpoint): structural
//      damage, implausible shapes, allocation bombs.
//   3. Model validation (AmsModel::FromState / GbdtFromState): shape and
//      range checks on every field, plus a fingerprint recomputed from the
//      carried config — a writer/reader encoding skew is refused rather
//      than deserialized into a subtly different model.
#ifndef AMS_SERVE_ARTIFACT_H_
#define AMS_SERVE_ARTIFACT_H_

#include <string>

#include "ams/ams_model.h"
#include "gbdt/gbdt.h"
#include "robust/checkpoint.h"
#include "util/status.h"

namespace ams::serve {

/// Artifact file magic (versioned; bump for incompatible layout changes).
inline constexpr char kArtifactMagic[] = "AMSMODEL1";

/// Payload identity of an artifact without fully rebuilding the model.
struct ArtifactInfo {
  std::string kind;         // "ams" | "gbdt"
  std::string fingerprint;  // model-config hash stored in the payload
};

// --- Byte-level encode/decode (exposed for tests and fuzzing). ---

/// Magic + serialized checkpoint (no CRC footer; the atomic writer adds it).
std::string EncodeArtifact(const robust::Checkpoint& state);

/// Strips and validates the magic, then decodes the checkpoint. Never
/// throws on arbitrary input; every malformed byte stream yields a Status.
Result<robust::Checkpoint> DecodeArtifact(const std::string& bytes);

/// GBDT ensemble <-> checkpoint state (AmsModel has its own ExportState /
/// FromState; these are the baseline-model equivalents).
Result<robust::Checkpoint> GbdtToState(const gbdt::GbdtRegressor& model);
Result<gbdt::GbdtRegressor> GbdtFromState(const robust::Checkpoint& state);

// --- File-level API. ---

/// Reads `path`, verifies the CRC footer, and decodes the artifact payload.
Result<robust::Checkpoint> LoadArtifactState(const std::string& path);

/// Kind + fingerprint of the artifact at `path` (used by the server's
/// reload-on-change check).
Result<ArtifactInfo> ProbeArtifact(const std::string& path);

Status SaveAmsArtifact(const std::string& path, const core::AmsModel& model);
Result<core::AmsModel> LoadAmsArtifact(const std::string& path);

Status SaveGbdtArtifact(const std::string& path,
                        const gbdt::GbdtRegressor& model);
Result<gbdt::GbdtRegressor> LoadGbdtArtifact(const std::string& path);

}  // namespace ams::serve

#endif  // AMS_SERVE_ARTIFACT_H_
