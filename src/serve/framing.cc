#include "serve/framing.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "robust/atomic_io.h"

namespace ams::serve {

namespace {

// Fixed header sizes (bytes), not counting the u32 length prefix.
constexpr size_t kHeaderBytes = 8 + 1 + 8;  // magic + type + request_id
constexpr size_t kCrcBytes = 4;
constexpr size_t kMinBodyBytes = kHeaderBytes + kCrcBytes;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

/// Cursor over an untrusted frame body: every read checks the remaining
/// byte count first.
class Reader {
 public:
  explicit Reader(std::string_view body) : body_(body) {}

  size_t remaining() const { return body_.size() - pos_; }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(body_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadDoubles(size_t n, std::vector<double>* out) {
    if (n > remaining() / sizeof(double)) return false;
    out->resize(n);
    if (n > 0) {
      std::memcpy(out->data(), body_.data() + pos_, n * sizeof(double));
    }
    pos_ += n * sizeof(double);
    return true;
  }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, body_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view body_;
  size_t pos_ = 0;
};

/// Appends the CRC footer over everything after the length prefix, then
/// patches the length prefix at `length_pos`.
void SealFrame(std::string* out, size_t length_pos) {
  const std::string_view covered(out->data() + length_pos + 4,
                                 out->size() - length_pos - 4);
  AppendU32(out, robust::Crc32(covered));
  const uint32_t length =
      static_cast<uint32_t>(out->size() - length_pos - 4);
  std::memcpy(out->data() + length_pos, &length, sizeof(length));
}

std::string BeginFrame(FrameType type, uint64_t request_id) {
  std::string out;
  AppendU32(&out, 0);  // length prefix, patched by SealFrame
  out.append(kNetMagic, sizeof(kNetMagic));
  out.push_back(static_cast<char>(type));
  AppendU64(&out, request_id);
  return out;
}

}  // namespace

std::string EncodeScoreRequest(uint64_t request_id, uint32_t deadline_ms,
                               const la::Matrix& features) {
  std::string out = BeginFrame(FrameType::kScoreRequest, request_id);
  AppendU32(&out, deadline_ms);
  AppendU32(&out, static_cast<uint32_t>(features.rows()));
  AppendU32(&out, static_cast<uint32_t>(features.cols()));
  const size_t doubles =
      static_cast<size_t>(features.rows()) * features.cols();
  out.append(reinterpret_cast<const char*>(features.data()),
             doubles * sizeof(double));
  SealFrame(&out, 0);
  return out;
}

std::string EncodeInfoRequest(uint64_t request_id) {
  std::string out = BeginFrame(FrameType::kInfoRequest, request_id);
  SealFrame(&out, 0);
  return out;
}

std::string EncodeResponse(FrameType type, uint64_t request_id,
                           const Status& status,
                           const std::vector<double>& values) {
  std::string out = BeginFrame(type, request_id);
  AppendU32(&out, static_cast<uint32_t>(status.code()));
  AppendU32(&out, static_cast<uint32_t>(status.message().size()));
  out.append(status.message());
  AppendU32(&out, static_cast<uint32_t>(values.size()));
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(double));
  SealFrame(&out, 0);
  return out;
}

Result<Frame> DecodeFrame(std::string_view body) {
  if (body.size() < kMinBodyBytes) {
    return Status::InvalidArgument("frame too short: " +
                                   std::to_string(body.size()) + " bytes");
  }
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }

  // CRC first: nothing else in the body is trusted before it checks out.
  const std::string_view covered = body.substr(0, body.size() - kCrcBytes);
  uint32_t wire_crc = 0;
  std::memcpy(&wire_crc, body.data() + body.size() - kCrcBytes, kCrcBytes);
  if (wire_crc != robust::Crc32(covered)) {
    return Status::IoError("frame CRC mismatch");
  }

  Reader reader(covered);
  std::string magic;
  reader.ReadBytes(sizeof(kNetMagic), &magic);  // length pre-checked above
  if (std::memcmp(magic.data(), kNetMagic, sizeof(kNetMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  Frame frame;
  uint8_t raw_type = 0;
  reader.ReadU8(&raw_type);
  reader.ReadU64(&frame.request_id);

  switch (raw_type) {
    case static_cast<uint8_t>(FrameType::kScoreRequest): {
      frame.type = FrameType::kScoreRequest;
      if (!reader.ReadU32(&frame.deadline_ms) || !reader.ReadU32(&frame.rows) ||
          !reader.ReadU32(&frame.cols)) {
        return Status::InvalidArgument("score request header truncated");
      }
      if (frame.rows == 0 || frame.cols == 0) {
        return Status::InvalidArgument("score request with empty shape");
      }
      // rows * cols cannot overflow or lie about the payload: the product
      // must equal the bytes actually present.
      const uint64_t doubles =
          static_cast<uint64_t>(frame.rows) * frame.cols;
      if (doubles != reader.remaining() / sizeof(double) ||
          reader.remaining() % sizeof(double) != 0) {
        return Status::InvalidArgument(
            "score request payload size does not match rows*cols");
      }
      reader.ReadDoubles(static_cast<size_t>(doubles), &frame.payload);
      break;
    }
    case static_cast<uint8_t>(FrameType::kInfoRequest):
      frame.type = FrameType::kInfoRequest;
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("info request with trailing bytes");
      }
      break;
    case static_cast<uint8_t>(FrameType::kScoreResponse):
    case static_cast<uint8_t>(FrameType::kInfoResponse): {
      frame.type = static_cast<FrameType>(raw_type);
      uint32_t msg_len = 0;
      if (!reader.ReadU32(&frame.status_code) || !reader.ReadU32(&msg_len)) {
        return Status::InvalidArgument("response header truncated");
      }
      if (!reader.ReadBytes(msg_len, &frame.message)) {
        return Status::InvalidArgument("response message truncated");
      }
      uint32_t num_values = 0;
      if (!reader.ReadU32(&num_values)) {
        return Status::InvalidArgument("response value count truncated");
      }
      if (static_cast<uint64_t>(num_values) * sizeof(double) !=
          reader.remaining()) {
        return Status::InvalidArgument(
            "response value bytes do not match count");
      }
      reader.ReadDoubles(num_values, &frame.values);
      break;
    }
    default:
      return Status::InvalidArgument("unknown frame type " +
                                     std::to_string(raw_type));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after frame body");
  }
  return frame;
}

Result<uint32_t> ParseFramePrefix(uint32_t raw_length) {
  if (raw_length < kMinBodyBytes) {
    return Status::InvalidArgument("frame length prefix below minimum: " +
                                   std::to_string(raw_length));
  }
  if (raw_length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length prefix exceeds cap: " +
                                   std::to_string(raw_length));
  }
  return raw_length;
}

Status ReadExactBytes(int fd, char* out, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got == 0) {
      return Status::IoError("connection closed mid-frame (" +
                             std::to_string(done) + "/" +
                             std::to_string(n) + " bytes)");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status ReadFrameBody(int fd, std::string* body) {
  char prefix[4];
  AMS_RETURN_NOT_OK(ReadExactBytes(fd, prefix, sizeof(prefix)));
  uint32_t raw_length = 0;
  std::memcpy(&raw_length, prefix, sizeof(raw_length));
  AMS_ASSIGN_OR_RETURN(const uint32_t length, ParseFramePrefix(raw_length));
  body->resize(length);
  return ReadExactBytes(fd, body->data(), length);
}

Status WriteBytes(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t sent =
        ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

}  // namespace ams::serve
