// AMSNET1 wire framing: the length-prefixed binary frame format spoken
// between serve::NetServer and serve::NetClient. No third-party deps —
// fixed-width little-endian fields plus the CRC32 the robust layer already
// uses for file artifacts.
//
// Wire layout of one frame (all integers little-endian):
//
//   u32  length      byte count of everything after this field
//   -------------------- covered by the CRC footer --------------------
//   char magic[8]    "AMSNET1\0"
//   u8   type        FrameType
//   u64  request_id  echoed verbatim in the response
//   ...type-specific body (below)...
//   -------------------------------------------------------------------
//   u32  crc32       robust::Crc32 over [magic .. end of body]
//
// Score request body:   u32 deadline_ms (0 = server default), u32 rows,
//                       u32 cols, f64 payload[rows*cols] (row-major — one
//                       quarter block, exactly what InferenceServer::Score
//                       consumes).
// Info request body:    empty (asks the server for the model shape).
// Response body (both): u32 status_code (ams::StatusCode; 0 = OK),
//                       u32 msg_len, char msg[msg_len],
//                       u32 num_values, f64 values[num_values]
//                       (scores for a score response; {rows, cols,
//                       model_version} for an info response).
//
// The decoder is the server's untrusted-input surface: it bounds-checks
// the length prefix (kMaxFrameBytes), every count field against the
// remaining bytes, and verifies the CRC before trusting anything — random
// bytes, truncations, hostile lengths, and bit flips must all come back as
// a clean Status (tests/framing_fuzz_test.cc).
#ifndef AMS_SERVE_FRAMING_H_
#define AMS_SERVE_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace ams::serve {

inline constexpr char kNetMagic[8] = {'A', 'M', 'S', 'N', 'E', 'T', '1', '\0'};

/// Upper bound on the byte count a length prefix may announce. Big enough
/// for a 4096 x 1024 quarter block, small enough that a hostile prefix
/// cannot make the server allocate gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t {
  kScoreRequest = 1,
  kScoreResponse = 2,
  kInfoRequest = 3,
  kInfoResponse = 4,
};

/// One decoded frame; which fields are meaningful depends on `type`.
struct Frame {
  FrameType type = FrameType::kScoreRequest;
  uint64_t request_id = 0;

  // Score request fields.
  uint32_t deadline_ms = 0;  // 0 = use the server's default deadline
  uint32_t rows = 0;
  uint32_t cols = 0;
  std::vector<double> payload;  // rows * cols, row-major

  // Response fields (score and info).
  uint32_t status_code = 0;  // ams::StatusCode as an integer
  std::string message;       // error detail; empty on OK
  std::vector<double> values;
};

/// Encoders return the complete wire bytes, length prefix included.
std::string EncodeScoreRequest(uint64_t request_id, uint32_t deadline_ms,
                               const la::Matrix& features);
std::string EncodeInfoRequest(uint64_t request_id);
std::string EncodeResponse(FrameType type, uint64_t request_id,
                           const Status& status,
                           const std::vector<double>& values);

/// Decodes one frame body (the bytes a length prefix announced — magic
/// through CRC). Rejects bad magic, unknown types, count fields that walk
/// past the buffer, trailing garbage, and CRC mismatches.
Result<Frame> DecodeFrame(std::string_view body);

/// Validates a length prefix: [minimum viable frame, kMaxFrameBytes].
Result<uint32_t> ParseFramePrefix(uint32_t raw_length);

/// Blocking socket helpers (loopback TCP; EINTR-retried). ReadFrameBody
/// reads one length prefix + body into `*body`; kIoError on EOF / short
/// reads, kInvalidArgument on a hostile prefix — both fatal for the
/// connection. WriteBytes sends the whole buffer (MSG_NOSIGNAL — a dead
/// peer is a Status, not a SIGPIPE).
Status ReadFrameBody(int fd, std::string* body);
Status WriteBytes(int fd, std::string_view bytes);

/// Reads exactly `n` bytes (EINTR-retried); kIoError on EOF or a socket
/// error. Building block for callers that need to split the prefix read
/// from the body read (the server's fault-injection points sit between).
Status ReadExactBytes(int fd, char* out, size_t n);

}  // namespace ams::serve

#endif  // AMS_SERVE_FRAMING_H_
