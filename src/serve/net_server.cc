#include "serve/net_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "robust/faults.h"
#include "serve/env_util.h"
#include "serve/framing.h"
#include "util/logging.h"

namespace ams::serve {

namespace {

/// How long slow_peer@net_read stalls a frame read. Long enough to expire
/// any test deadline of a few ms, short enough not to slow the suite.
constexpr int kSlowPeerStallMs = 50;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// obs::AdminServer's write-fault hook must be a plain function pointer
/// (obs cannot link robust); this free function is the bridge.
bool AdminScrapeFault() {
  return robust::FaultInjector::Get().OnAdminScrape();
}

/// Flight-recorder label for a finished score request.
const char* OutcomeName(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kUnavailable:
      return "shed";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    default:
      return "error";
  }
}

}  // namespace

NetServerOptions NetServerOptions::FromEnv() {
  NetServerOptions options;
  options.port = internal::EnvInt("AMS_SERVE_PORT", options.port, 0, 65535);
  options.max_queue =
      internal::EnvInt("AMS_SERVE_QUEUE", options.max_queue, 1, 1 << 20);
  options.default_deadline_ms = internal::EnvInt(
      "AMS_SERVE_DEADLINE_MS", options.default_deadline_ms, 0, 1 << 30);
  options.num_workers =
      internal::EnvInt("AMS_SERVE_WORKERS", options.num_workers, 1, 256);
  return options;
}

class NetServer::Metrics {
 public:
  Metrics() {
    auto& reg = obs::MetricsRegistry::Get();
    requests_shed = &reg.GetCounter("serve/requests", {{"outcome", "shed"}});
    requests_deadline =
        &reg.GetCounter("serve/requests", {{"outcome", "deadline"}});
    accepted = &reg.GetCounter("serve/net_accepted");
    decode_errors = &reg.GetCounter("serve/net_decode_errors");
    shed_rate = &reg.GetGauge("serve/shed_rate");
    connections = &reg.GetGauge("serve/net_connections");
    queue_depth = &reg.GetGauge("serve/net_queue_depth");
    latency_ms = &reg.GetHistogram("serve/net_latency_ms",
                                   obs::Histogram::ExponentialBounds());
  }

  obs::Counter* requests_shed;
  obs::Counter* requests_deadline;
  obs::Counter* accepted;
  obs::Counter* decode_errors;
  obs::Gauge* shed_rate;
  obs::Gauge* connections;
  obs::Gauge* queue_depth;
  obs::Histogram* latency_ms;
};

NetServer::Conn::~Conn() {
  ShutDown();
  ::close(fd);
}

void NetServer::Conn::ShutDown() {
  if (open.exchange(false, std::memory_order_acq_rel)) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

NetServer::NetServer(InferenceServer* inference, NetServerOptions options)
    : inference_(inference),
      options_(options),
      metrics_(std::make_unique<Metrics>()) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("NetServer already started");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(
        "bind to 127.0.0.1:" + std::to_string(options_.port) +
        " failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    const Status status =
        Status::IoError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  listen_fd_ = fd;
  started_ = true;
  stopping_.store(false, std::memory_order_release);

  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&NetServer::WorkerLoop, this);
  }
  accept_thread_ = std::thread(&NetServer::AcceptLoop, this);

  AMS_LOG(Info) << "net server listening on 127.0.0.1:" << port()
                << " (queue=" << options_.max_queue
                << ", workers=" << options_.num_workers
                << ", default_deadline_ms=" << options_.default_deadline_ms
                << ")";

  // Live introspection plane (AMS_ADMIN_PORT). An admin-plane startup
  // failure (e.g. a taken fixed port) degrades to serving without
  // introspection, never to not serving.
  const obs::AdminServerOptions admin_options =
      obs::AdminServerOptions::FromEnv();
  if (admin_options.enabled()) {
    obs::AdminServer::SetWriteFaultHook(&AdminScrapeFault);
    admin_ = std::make_unique<obs::AdminServer>(admin_options);
    const Status admin_status = admin_->Start();
    if (!admin_status.ok()) {
      AMS_LOG(Warning) << "admin plane disabled: " << admin_status.ToString();
      admin_.reset();
    }
  }
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_ || stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }

  // 1. No new connections: unblock accept() and join the accept thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: admissions now answer kUnavailable immediately (stopping_),
  //    so the queue only shrinks. Wait until workers finished everything
  //    admitted before the flag flipped — those still get real responses.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  }

  // 3. Hang up: unblock every reader and wait for them to exit.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (auto conn = weak.lock()) conn->ShutDown();
    }
    readers_cv_.wait(lock, [&] { return active_readers_ == 0; });
    conns_.clear();
  }

  // 4. Stop the workers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
  // 5. The admin plane goes last: scrapes during the drain above still see
  //    live (and internally consistent) counters.
  if (admin_ != nullptr) {
    admin_->Stop();
    admin_.reset();
  }
  AMS_LOG(Info) << "net server stopped (lifetime shed rate "
                << metrics_->shed_rate->value() << ")";
}

void NetServer::AcceptLoop() {
  auto& injector = robust::FaultInjector::Get();
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      // listen_fd_ shut down (Stop) or a transient accept error; either
      // way, re-check stopping_ and bail only on shutdown.
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        AMS_LOG(Warning) << "accept failed transiently: "
                         << std::strerror(errno);
        continue;
      }
      return;
    }
    metrics_->accepted->Increment();
    if (injector.OnAccept()) {
      // conn_drop@accept: hang up before reading anything. The client sees
      // EOF on its first read and must retry on a fresh connection.
      ::close(client_fd);
      continue;
    }
    auto conn = std::make_shared<Conn>(client_fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
      ++active_readers_;
      metrics_->connections->Set(static_cast<double>(active_readers_));
    }
    // Detached: lifetime is accounted for by active_readers_, which Stop
    // waits on after shutting every connection down.
    std::thread(&NetServer::ReaderLoop, this, std::move(conn)).detach();
  }
}

void NetServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  auto& injector = robust::FaultInjector::Get();
  for (;;) {
    // Phase 1: the length prefix. Blocking here is just an idle
    // connection; the frame's deadline clock starts when its first bytes
    // arrive.
    char prefix[4];
    if (!ReadExactBytes(conn->fd, prefix, sizeof(prefix)).ok()) break;
    const Clock::time_point arrival = Clock::now();

    const auto net_faults = injector.OnNetRead();
    if (net_faults.slow) {
      // slow_peer@net_read: the peer dribbles the frame in. The request's
      // deadline keeps running, so a tight one expires at admission.
      std::this_thread::sleep_for(std::chrono::milliseconds(kSlowPeerStallMs));
    }

    uint32_t raw_length = 0;
    std::memcpy(&raw_length, prefix, sizeof(raw_length));
    auto length = ParseFramePrefix(raw_length);
    if (!length.ok()) {
      // Hostile prefix: answer (best effort) and hang up — the byte stream
      // can't be re-synchronized.
      metrics_->decode_errors->Increment();
      SendResponse(conn, FrameType::kScoreResponse, 0, length.status(), {});
      break;
    }
    std::string body(length.ValueOrDie(), '\0');
    if (!ReadExactBytes(conn->fd, body.data(), body.size()).ok()) break;

    if (!HandleFrame(conn, std::move(body), arrival, net_faults.torn)) break;
  }
  conn->ShutDown();
  {
    // Notify under the lock: Stop's wait cannot observe the new count and
    // destroy this object until the lock is released, after which this
    // (detached) thread touches no member again.
    std::lock_guard<std::mutex> lock(conns_mu_);
    --active_readers_;
    metrics_->connections->Set(static_cast<double>(active_readers_));
    readers_cv_.notify_all();
  }
}

bool NetServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            std::string body, Clock::time_point arrival,
                            bool torn) {
  if (torn) {
    // torn_frame@net_read: present the decoder with only half the frame,
    // as if the connection died mid-body. Must be rejected cleanly.
    body.resize(body.size() / 2);
  }
  auto decoded = DecodeFrame(body);
  if (!decoded.ok()) {
    metrics_->decode_errors->Increment();
    SendResponse(conn, FrameType::kScoreResponse, 0, decoded.status(), {});
    return false;  // framing is unrecoverable after garbage
  }
  Frame frame = decoded.MoveValue();

  if (frame.type == FrameType::kInfoRequest) {
    // Answered inline on the reader thread: shape discovery must work even
    // when the score queue is saturated.
    int rows = 0, cols = 0;
    if (inference_->model_shape(&rows, &cols)) {
      SendResponse(conn, FrameType::kInfoResponse, frame.request_id,
                   Status::OK(),
                   {static_cast<double>(rows), static_cast<double>(cols),
                    static_cast<double>(inference_->model_version())});
    } else {
      SendResponse(conn, FrameType::kInfoResponse, frame.request_id,
                   Status::FailedPrecondition("no model loaded"), {});
    }
    return true;
  }
  if (frame.type != FrameType::kScoreRequest) {
    metrics_->decode_errors->Increment();
    SendResponse(conn, FrameType::kScoreResponse, frame.request_id,
                 Status::InvalidArgument("server expects request frames"), {});
    return false;
  }

  Admitted request;
  request.conn = conn;
  request.request_id = frame.request_id;
  request.arrival = arrival;
  const uint32_t deadline_ms =
      frame.deadline_ms != 0
          ? frame.deadline_ms
          : static_cast<uint32_t>(options_.default_deadline_ms);
  request.has_deadline = deadline_ms != 0;
  request.deadline = arrival + std::chrono::milliseconds(deadline_ms);
  request.features = la::Matrix(static_cast<int>(frame.rows),
                                static_cast<int>(frame.cols));
  std::memcpy(request.features.data(), frame.payload.data(),
              frame.payload.size() * sizeof(double));

  // --- Admission control ---
  if (request.has_deadline && Clock::now() >= request.deadline) {
    RecordShedDecision(false);
    metrics_->requests_deadline->Increment();
    FinishScoreRequest(request,
                       Status::DeadlineExceeded(
                           "deadline of " + std::to_string(deadline_ms) +
                           "ms expired before admission"),
                       {});
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool full =
        queue_.size() >= static_cast<size_t>(options_.max_queue);
    if (!stopping_.load(std::memory_order_acquire) && !full) {
      queue_.push_back(std::move(request));
      metrics_->queue_depth->Set(static_cast<double>(queue_.size()));
      RecordShedDecision(false);
      queue_cv_.notify_one();
      return true;
    }
  }
  // SHED: full queue (or shutdown in progress). A clean, distinct Status —
  // the one response an overloaded server can always afford.
  RecordShedDecision(true);
  metrics_->requests_shed->Increment();
  FinishScoreRequest(
      request,
      Status::Unavailable(stopping_.load(std::memory_order_acquire)
                              ? "server shutting down"
                              : "overloaded: dispatch queue at limit " +
                                    std::to_string(options_.max_queue)),
      {});
  return true;
}

void NetServer::WorkerLoop() {
  for (;;) {
    Admitted request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return worker_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (worker_stop_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      metrics_->queue_depth->Set(static_cast<double>(queue_.size()));
      ++in_flight_;
    }

    // Pickup-time deadline check: queue wait may have eaten the budget. An
    // expired request is answered, never scored — scoring it anyway is how
    // overloaded servers melt down.
    if (request.has_deadline && Clock::now() >= request.deadline) {
      metrics_->requests_deadline->Increment();
      FinishScoreRequest(request,
                         Status::DeadlineExceeded(
                             "deadline expired in queue after " +
                             std::to_string(MsSince(request.arrival)) + "ms"),
                         {});
    } else {
      // Blocks on the micro-batcher; InferenceServer counts ok/error.
      auto scores = inference_->Score(request.features);
      if (scores.ok()) {
        FinishScoreRequest(request, Status::OK(), scores.ValueOrDie());
      } else {
        FinishScoreRequest(request, scores.status(), {});
      }
    }

    bool drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      drained = queue_.empty() && in_flight_ == 0;
    }
    if (drained) drain_cv_.notify_all();
  }
}

void NetServer::FinishScoreRequest(const Admitted& request,
                                   const Status& status,
                                   const std::vector<double>& values) {
  SendResponse(request.conn, FrameType::kScoreResponse, request.request_id,
               status, values);
  const double ms = MsSince(request.arrival);
  metrics_->latency_ms->Observe(ms);
  // Flight-recorder payload: a = request_id, b = latency_us; text = the
  // outcome — a crash dump ends with exactly what the server last answered.
  obs::FlightRecorder::Get().Record(obs::FlightEventKind::kServeOutcome,
                                    OutcomeName(status), request.request_id,
                                    static_cast<uint64_t>(ms * 1000.0));
}

void NetServer::SendResponse(const std::shared_ptr<Conn>& conn,
                             FrameType type, uint64_t request_id,
                             const Status& status,
                             const std::vector<double>& values) {
  if (robust::FaultInjector::Get().OnNetWrite()) {
    // conn_drop@net_write: the connection dies instead of carrying the
    // response. The client observes EOF and retries on a new connection.
    conn->ShutDown();
    return;
  }
  const std::string wire = EncodeResponse(type, request_id, status, values);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load(std::memory_order_acquire)) return;
  if (!WriteBytes(conn->fd, wire).ok()) conn->ShutDown();
}

void NetServer::RecordShedDecision(bool shed) {
  const uint64_t total = decisions_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t sheds =
      shed ? sheds_.fetch_add(1, std::memory_order_relaxed) + 1
           : sheds_.load(std::memory_order_relaxed);
  metrics_->shed_rate->Set(static_cast<double>(sheds) /
                           static_cast<double>(total));
}

}  // namespace ams::serve
