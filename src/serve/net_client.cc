#include "serve/net_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "robust/retry.h"

namespace ams::serve {

NetClient::NetClient(int port, NetClientOptions options)
    : port_(port), options_(options) {}

NetClient::~NetClient() { Disconnect(); }

Status NetClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError("connect to 127.0.0.1:" + std::to_string(port_) +
                        " failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> NetClient::RoundTrip(const std::string& wire, FrameType want,
                                   uint64_t request_id) {
  Frame response;
  // Transport failures throw out of the attempt, which drops the (possibly
  // desynchronized) connection and retries on a fresh one with backoff.
  const Status transport = robust::RunWithRetry(
      [&] {
        const Status connected = EnsureConnected();
        if (!connected.ok()) throw std::runtime_error(connected.ToString());
        auto fail = [&](const Status& status) {
          Disconnect();
          throw std::runtime_error(status.ToString());
        };
        const Status wrote = WriteBytes(fd_, wire);
        if (!wrote.ok()) fail(wrote);
        std::string body;
        const Status read = ReadFrameBody(fd_, &body);
        if (!read.ok()) fail(read);
        auto decoded = DecodeFrame(body);
        if (!decoded.ok()) fail(decoded.status());
        response = decoded.MoveValue();
        if (response.type != want || response.request_id != request_id) {
          fail(Status::IoError("response does not match request " +
                               std::to_string(request_id)));
        }
      },
      robust::RetryOptions{options_.max_attempts, options_.base_backoff_ms});
  if (!transport.ok()) {
    return Status::IoError("transport failed after " +
                           std::to_string(options_.max_attempts) +
                           " attempts: " + transport.message());
  }
  return response;
}

Result<std::vector<double>> NetClient::ScoreWithDeadline(
    const la::Matrix& features, uint32_t deadline_ms) {
  const uint64_t id = next_id_++;
  AMS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(EncodeScoreRequest(id, deadline_ms, features),
                FrameType::kScoreResponse, id));
  if (response.status_code != 0) {
    // Application status (shed, deadline, bad shape...): the caller's to
    // handle, deliberately not retried.
    return Status(static_cast<StatusCode>(response.status_code),
                  response.message);
  }
  return std::move(response.values);
}

Result<NetClient::ModelInfo> NetClient::Info() {
  const uint64_t id = next_id_++;
  AMS_ASSIGN_OR_RETURN(Frame response,
                       RoundTrip(EncodeInfoRequest(id),
                                 FrameType::kInfoResponse, id));
  if (response.status_code != 0) {
    return Status(static_cast<StatusCode>(response.status_code),
                  response.message);
  }
  if (response.values.size() != 3) {
    return Status::IoError("malformed info response");
  }
  ModelInfo info;
  info.rows = static_cast<int>(response.values[0]);
  info.cols = static_cast<int>(response.values[1]);
  info.model_version = static_cast<int>(response.values[2]);
  return info;
}

}  // namespace ams::serve
