#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace ams::tensor {

using la::Matrix;

namespace internal {

void Node::AccumulateGrad(const Matrix& g) {
  if (grad.empty()) {
    grad = g;
  } else {
    AMS_DCHECK(grad.same_shape(g), "gradient shape mismatch in " + op_name);
    grad += g;
  }
}

Tensor MakeOp(Matrix value, const std::vector<Tensor>& parents,
              std::string op_name, std::function<void(Node&)> backward_fn) {
  bool needs_grad = false;
  std::vector<std::shared_ptr<Node>> parent_nodes;
  parent_nodes.reserve(parents.size());
  for (const Tensor& p : parents) {
    AMS_DCHECK(!p.is_null(), "null tensor input to " + op_name);
    needs_grad = needs_grad || p.node()->requires_grad;
    parent_nodes.push_back(p.node());
  }
  Tensor out(std::move(value), false);
  auto node = out.node();
  node->requires_grad = needs_grad;
  node->op_name = std::move(op_name);
  if (needs_grad) {
    node->parents = std::move(parent_nodes);
    node->backward_fn = std::move(backward_fn);
  }
  return out;
}

BroadcastKind ClassifyBroadcast(const Matrix& a, const Matrix& b,
                                const char* op) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) return BroadcastKind::kSame;
  if (b.rows() == 1 && b.cols() == 1) return BroadcastKind::kScalar;
  if (b.rows() == 1 && b.cols() == a.cols()) return BroadcastKind::kRow;
  if (b.cols() == 1 && b.rows() == a.rows()) return BroadcastKind::kCol;
  AMS_DCHECK(false, std::string("incompatible broadcast shapes in ") + op);
  return BroadcastKind::kSame;
}

double BroadcastAt(const Matrix& b, BroadcastKind kind, int r, int c) {
  switch (kind) {
    case BroadcastKind::kSame:
      return b(r, c);
    case BroadcastKind::kRow:
      return b(0, c);
    case BroadcastKind::kCol:
      return b(r, 0);
    case BroadcastKind::kScalar:
      return b(0, 0);
  }
  return 0.0;
}

Matrix ReduceToBroadcastShape(const Matrix& g, BroadcastKind kind) {
  switch (kind) {
    case BroadcastKind::kSame:
      return g;
    case BroadcastKind::kRow:
      return g.ColSums();
    case BroadcastKind::kCol:
      return g.RowSums();
    case BroadcastKind::kScalar: {
      Matrix out(1, 1);
      out(0, 0) = g.Sum();
      return out;
    }
  }
  return g;
}

}  // namespace internal

using internal::BroadcastAt;
using internal::BroadcastKind;
using internal::ClassifyBroadcast;
using internal::MakeOp;
using internal::Node;
using internal::ReduceToBroadcastShape;

Tensor::Tensor(Matrix value, bool requires_grad) {
  // Tape nodes churn at the same rate as op values; allocate them from the
  // same pool the Matrix buffers use (la/pool.h).
  node_ = std::allocate_shared<Node>(la::PoolAllocator<Node>());
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->op_name = requires_grad ? "parameter" : "constant";
}

const Matrix& Tensor::value() const {
  AMS_DCHECK(node_ != nullptr, "value() on null tensor");
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  AMS_DCHECK(node_ != nullptr, "mutable_value() on null tensor");
  return node_->value;
}

const Matrix& Tensor::grad() const {
  AMS_DCHECK(node_ != nullptr, "grad() on null tensor");
  if (node_->grad.empty() && !node_->value.empty()) {
    // Expose a zero gradient of the right shape for untouched nodes.
    node_->grad = Matrix::Zeros(node_->value.rows(), node_->value.cols());
  }
  return node_->grad;
}

bool Tensor::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

void Tensor::ZeroGrad() {
  AMS_DCHECK(node_ != nullptr, "ZeroGrad() on null tensor");
  node_->grad = Matrix();
}

namespace {

/// Elementwise unary op with derivative expressed in terms of (x, y).
Tensor UnaryOp(const Tensor& a, const char* name,
               const std::function<double(double)>& fwd,
               const std::function<double(double, double)>& dydx) {
  Matrix value = a.value().Map(fwd);
  Matrix saved_in = a.value();
  Matrix saved_out = value;
  return MakeOp(std::move(value), {a}, name,
                [saved_in, saved_out, dydx](Node& node) {
                  Matrix g = node.grad;
                  for (int r = 0; r < g.rows(); ++r) {
                    for (int c = 0; c < g.cols(); ++c) {
                      g(r, c) *= dydx(saved_in(r, c), saved_out(r, c));
                    }
                  }
                  node.parents[0]->AccumulateGrad(g);
                });
}

}  // namespace

void Backward(const Tensor& root) {
  AMS_DCHECK(!root.is_null(), "Backward on null tensor");
  AMS_DCHECK(root.rows() == 1 && root.cols() == 1,
             "Backward requires a 1x1 scalar root");
  // Iterative post-order DFS to get a topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < node->parents.size()) {
      Node* parent = node->parents[child_idx].get();
      ++child_idx;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before children; walk it in reverse.
  root.node()->AccumulateGrad(Matrix::Ones(1, 1));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix value = a.value().MatMul(b.value());
  Matrix a_val = a.value();
  Matrix b_val = b.value();
  return MakeOp(std::move(value), {a, b}, "matmul",
                [a_val, b_val](Node& node) {
                  const Matrix& g = node.grad;
                  if (node.parents[0]->requires_grad) {
                    node.parents[0]->AccumulateGrad(g.MatMulTranspose(b_val));
                  }
                  if (node.parents[1]->requires_grad) {
                    node.parents[1]->AccumulateGrad(a_val.TransposeMatMul(g));
                  }
                });
}

Tensor Transpose(const Tensor& a) {
  return MakeOp(a.value().Transposed(), {a}, "transpose", [](Node& node) {
    node.parents[0]->AccumulateGrad(node.grad.Transposed());
  });
}

namespace {

Tensor AddLike(const Tensor& a, const Tensor& b, double sign,
               const char* name) {
  const BroadcastKind kind = ClassifyBroadcast(a.value(), b.value(), name);
  Matrix value = a.value();
  for (int r = 0; r < value.rows(); ++r) {
    for (int c = 0; c < value.cols(); ++c) {
      value(r, c) += sign * BroadcastAt(b.value(), kind, r, c);
    }
  }
  return MakeOp(std::move(value), {a, b}, name, [kind, sign](Node& node) {
    if (node.parents[0]->requires_grad) {
      node.parents[0]->AccumulateGrad(node.grad);
    }
    if (node.parents[1]->requires_grad) {
      Matrix gb = ReduceToBroadcastShape(node.grad, kind);
      if (sign != 1.0) gb *= sign;
      node.parents[1]->AccumulateGrad(gb);
    }
  });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return AddLike(a, b, 1.0, "add"); }
Tensor Sub(const Tensor& a, const Tensor& b) { return AddLike(a, b, -1.0, "sub"); }

Tensor Mul(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = ClassifyBroadcast(a.value(), b.value(), "mul");
  Matrix value = a.value();
  for (int r = 0; r < value.rows(); ++r) {
    for (int c = 0; c < value.cols(); ++c) {
      value(r, c) *= BroadcastAt(b.value(), kind, r, c);
    }
  }
  Matrix a_val = a.value();
  Matrix b_val = b.value();
  return MakeOp(std::move(value), {a, b}, "mul",
                [kind, a_val, b_val](Node& node) {
                  const Matrix& g = node.grad;
                  if (node.parents[0]->requires_grad) {
                    Matrix ga = g;
                    for (int r = 0; r < ga.rows(); ++r) {
                      for (int c = 0; c < ga.cols(); ++c) {
                        ga(r, c) *= BroadcastAt(b_val, kind, r, c);
                      }
                    }
                    node.parents[0]->AccumulateGrad(ga);
                  }
                  if (node.parents[1]->requires_grad) {
                    Matrix full = g.Hadamard(a_val);
                    node.parents[1]->AccumulateGrad(
                        ReduceToBroadcastShape(full, kind));
                  }
                });
}

Tensor Scale(const Tensor& a, double s) {
  return MakeOp(a.value() * s, {a}, "scale", [s](Node& node) {
    node.parents[0]->AccumulateGrad(node.grad * s);
  });
}

Tensor AddScalar(const Tensor& a, double s) {
  return MakeOp(a.value().Map([s](double v) { return v + s; }), {a},
                "add_scalar", [](Node& node) {
                  node.parents[0]->AccumulateGrad(node.grad);
                });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, "relu", [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor LeakyRelu(const Tensor& a, double alpha) {
  return UnaryOp(
      a, "leaky_relu",
      [alpha](double x) { return x > 0.0 ? x : alpha * x; },
      [alpha](double x, double) { return x > 0.0 ? 1.0 : alpha; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, "sigmoid",
      [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, "tanh", [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, "exp", [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Tensor MaskedRowSoftmax(const Tensor& logits, const Matrix& mask) {
  const Matrix& l = logits.value();
  AMS_DCHECK(l.rows() == mask.rows() && l.cols() == mask.cols(),
             "mask shape mismatch in MaskedRowSoftmax");
  Matrix out(l.rows(), l.cols(), 0.0);
  for (int r = 0; r < l.rows(); ++r) {
    // Max-shift for numerical stability over the unmasked entries.
    double row_max = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (int c = 0; c < l.cols(); ++c) {
      if (mask(r, c) != 0.0) {
        row_max = std::max(row_max, l(r, c));
        any = true;
      }
    }
    AMS_DCHECK(any, "MaskedRowSoftmax row with no unmasked entries");
    double denom = 0.0;
    for (int c = 0; c < l.cols(); ++c) {
      if (mask(r, c) != 0.0) {
        out(r, c) = std::exp(l(r, c) - row_max);
        denom += out(r, c);
      }
    }
    for (int c = 0; c < l.cols(); ++c) out(r, c) /= denom;
  }
  Matrix saved = out;
  return MakeOp(std::move(out), {logits}, "masked_row_softmax",
                [saved](Node& node) {
                  const Matrix& g = node.grad;
                  Matrix gl(g.rows(), g.cols(), 0.0);
                  for (int r = 0; r < g.rows(); ++r) {
                    double dot = 0.0;
                    for (int c = 0; c < g.cols(); ++c) {
                      dot += g(r, c) * saved(r, c);
                    }
                    for (int c = 0; c < g.cols(); ++c) {
                      gl(r, c) = saved(r, c) * (g(r, c) - dot);
                    }
                  }
                  node.parents[0]->AccumulateGrad(gl);
                });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  AMS_DCHECK(!parts.empty(), "ConcatCols of nothing");
  Matrix value = parts[0].value();
  std::vector<int> widths = {parts[0].cols()};
  for (size_t i = 1; i < parts.size(); ++i) {
    value = Matrix::HStack(value, parts[i].value());
    widths.push_back(parts[i].cols());
  }
  return MakeOp(std::move(value), parts, "concat_cols", [widths](Node& node) {
    int offset = 0;
    for (size_t i = 0; i < node.parents.size(); ++i) {
      if (node.parents[i]->requires_grad) {
        node.parents[i]->AccumulateGrad(
            node.grad.SliceCols(offset, offset + widths[i]));
      }
      offset += widths[i];
    }
  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  AMS_DCHECK(!parts.empty(), "ConcatRows of nothing");
  Matrix value = parts[0].value();
  std::vector<int> heights = {parts[0].rows()};
  for (size_t i = 1; i < parts.size(); ++i) {
    value = Matrix::VStack(value, parts[i].value());
    heights.push_back(parts[i].rows());
  }
  return MakeOp(std::move(value), parts, "concat_rows", [heights](Node& node) {
    int offset = 0;
    for (size_t i = 0; i < node.parents.size(); ++i) {
      if (node.parents[i]->requires_grad) {
        node.parents[i]->AccumulateGrad(
            node.grad.SliceRows(offset, offset + heights[i]));
      }
      offset += heights[i];
    }
  });
}

Tensor SliceRows(const Tensor& a, int begin, int end) {
  const int rows = a.rows();
  const int cols = a.cols();
  return MakeOp(a.value().SliceRows(begin, end), {a}, "slice_rows",
                [begin, end, rows, cols](Node& node) {
                  Matrix g(rows, cols, 0.0);
                  for (int r = begin; r < end; ++r) {
                    for (int c = 0; c < cols; ++c) {
                      g(r, c) = node.grad(r - begin, c);
                    }
                  }
                  node.parents[0]->AccumulateGrad(g);
                });
}

Tensor Sum(const Tensor& a) {
  Matrix value(1, 1);
  value(0, 0) = a.value().Sum();
  const int rows = a.rows();
  const int cols = a.cols();
  return MakeOp(std::move(value), {a}, "sum", [rows, cols](Node& node) {
    node.parents[0]->AccumulateGrad(
        Matrix(rows, cols, node.grad(0, 0)));
  });
}

Tensor Mean(const Tensor& a) {
  const int n = a.value().size();
  AMS_DCHECK(n > 0, "Mean of empty tensor");
  return Scale(Sum(a), 1.0 / n);
}

Tensor SumSquares(const Tensor& a) {
  Matrix value(1, 1);
  double acc = 0.0;
  const double* p = a.value().data();
  for (int i = 0; i < a.value().size(); ++i) acc += p[i] * p[i];
  value(0, 0) = acc;
  Matrix a_val = a.value();
  return MakeOp(std::move(value), {a}, "sum_squares", [a_val](Node& node) {
    node.parents[0]->AccumulateGrad(a_val * (2.0 * node.grad(0, 0)));
  });
}

Tensor RowSums(const Tensor& a) {
  const int cols = a.cols();
  return MakeOp(a.value().RowSums(), {a}, "row_sums", [cols](Node& node) {
    Matrix g(node.grad.rows(), cols);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < cols; ++c) g(r, c) = node.grad(r, 0);
    }
    node.parents[0]->AccumulateGrad(g);
  });
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  AMS_DCHECK(a.value().same_shape(b.value()), "shape mismatch in RowDot");
  return RowSums(Mul(a, b));
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  Tensor diff = Sub(pred, target);
  return Mean(Mul(diff, diff));
}

Tensor Dropout(const Tensor& a, double p, bool training, Rng* rng) {
  AMS_DCHECK(p >= 0.0 && p < 1.0, "dropout probability must be in [0, 1)");
  if (!training || p == 0.0) return a;
  AMS_DCHECK(rng != nullptr, "training-mode dropout needs an Rng");
  const double keep = 1.0 - p;
  Matrix mask(a.rows(), a.cols());
  for (int r = 0; r < mask.rows(); ++r) {
    for (int c = 0; c < mask.cols(); ++c) {
      mask(r, c) = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
    }
  }
  return Mul(a, Tensor::Constant(std::move(mask)));
}

double NumericalGradient(const std::function<double()>& forward, Tensor leaf,
                         int r, int c, double eps) {
  Matrix& v = leaf.mutable_value();
  const double saved = v(r, c);
  v(r, c) = saved + eps;
  const double up = forward();
  v(r, c) = saved - eps;
  const double down = forward();
  v(r, c) = saved;
  return (up - down) / (2.0 * eps);
}

}  // namespace ams::tensor
