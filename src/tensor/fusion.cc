// Fused elementwise forward/backward execution. See fusion.h for the
// bit-identity contract; every per-element expression below is a literal
// transcription of the unfused op it replaces (tensor.cc), including the
// `sign * b` form of AddLike and the reduce-then-scale order of the
// Sub/Scale backward paths.
#include "tensor/fusion.h"

#include <cmath>
#include <memory>
#include <utility>

#include "par/thread_pool.h"

namespace ams::tensor {

/// Private-access shim so the file-local executor can see the recorded
/// instruction list without widening the public API.
struct FusionAccess {
  using Kind = ElementwiseChain::Kind;
  using Instr = ElementwiseChain::Instr;
};

namespace {

using internal::BroadcastAt;
using internal::BroadcastKind;
using internal::ClassifyBroadcast;
using internal::MakeOp;
using internal::Node;
using internal::ReduceToBroadcastShape;
using la::Matrix;
using Kind = FusionAccess::Kind;

// Rows are split across the pool once the per-pass work crosses this many
// elementwise ops; chunk boundaries depend only on the shape, so results
// are identical at any thread count (same determinism story as la::Matrix).
constexpr int64_t kFuseParallelOps = 1 << 15;
constexpr int64_t kFuseRowGrain = 16;

/// One compiled step: plain data + value snapshots of the operands (taken at
/// Apply() time — parameters mutate in place between forward and backward).
struct Step {
  Kind kind;
  double scalar = 0.0;
  Matrix v0;
  Matrix v1;
  BroadcastKind b0 = BroadcastKind::kSame;
  BroadcastKind b1 = BroadcastKind::kSame;
  int parent0 = -1;  // index into the fused node's parents; -1 if none
  int parent1 = -1;
};

struct FusedProgram {
  Matrix x_val;  // chain input snapshot, re-walked by the backward pass
  std::vector<Step> steps;
};

/// Walks the chain for element (r, c) starting from `v`. When `vals` is
/// non-null it records the input of step i in vals[i] and the final output
/// in vals[n] (the backward pass needs both (x, y) per step).
inline double EvalForward(const FusedProgram& p, double v, int r, int c,
                          double* vals) {
  const int n = static_cast<int>(p.steps.size());
  for (int i = 0; i < n; ++i) {
    if (vals != nullptr) vals[i] = v;
    const Step& s = p.steps[i];
    switch (s.kind) {
      case Kind::kRelu:
        v = v > 0.0 ? v : 0.0;
        break;
      case Kind::kLeakyRelu:
        v = v > 0.0 ? v : s.scalar * v;
        break;
      case Kind::kSigmoid:
        v = 1.0 / (1.0 + std::exp(-v));
        break;
      case Kind::kTanh:
        v = std::tanh(v);
        break;
      case Kind::kExp:
        v = std::exp(v);
        break;
      case Kind::kScale:
        v *= s.scalar;
        break;
      case Kind::kAddScalar:
        v = v + s.scalar;
        break;
      case Kind::kAdd:
        v += 1.0 * BroadcastAt(s.v0, s.b0, r, c);
        break;
      case Kind::kSub:
        v += -1.0 * BroadcastAt(s.v0, s.b0, r, c);
        break;
      case Kind::kMul:
        v *= BroadcastAt(s.v0, s.b0, r, c);
        break;
      case Kind::kAddScaled:
        v += 1.0 * (BroadcastAt(s.v0, s.b0, r, c) * s.scalar);
        break;
      case Kind::kAddProduct:
        v += 1.0 * (s.v0(r, c) * s.v1(r, c));
        break;
    }
  }
  if (vals != nullptr) vals[n] = v;
  return v;
}

void RunForward(const FusedProgram& p, Matrix* out) {
  const int rows = out->rows();
  const int cols = out->cols();
  auto body = [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      for (int c = 0; c < cols; ++c) {
        (*out)(ri, c) = EvalForward(p, (*out)(ri, c), ri, c, nullptr);
      }
    }
  };
  const int64_t work =
      static_cast<int64_t>(rows) * cols * static_cast<int64_t>(p.steps.size());
  if (work >= kFuseParallelOps) {
    par::ParallelFor(rows, kFuseRowGrain, body);
  } else {
    body(0, rows);
  }
}

void RunBackward(const FusedProgram& p, Node& node) {
  const Matrix& g = node.grad;
  const int rows = g.rows();
  const int cols = g.cols();
  const int n = static_cast<int>(p.steps.size());

  const bool need_input = node.parents[0]->requires_grad;
  // Full-shape gradient buffers per live slot; reduced to operand shape
  // after the elementwise pass, exactly like the unfused Add/Mul backward.
  Matrix g_input;
  if (need_input) g_input = Matrix(rows, cols);
  std::vector<Matrix> g_slot0(n);
  std::vector<Matrix> g_slot1(n);
  std::vector<char> need0(n, 0);
  std::vector<char> need1(n, 0);
  for (int i = 0; i < n; ++i) {
    const Step& s = p.steps[i];
    if (s.parent0 >= 0 && node.parents[s.parent0]->requires_grad) {
      need0[i] = 1;
      g_slot0[i] = Matrix(rows, cols);
    }
    if (s.parent1 >= 0 && node.parents[s.parent1]->requires_grad) {
      need1[i] = 1;
      g_slot1[i] = Matrix(rows, cols);
    }
  }

  auto body = [&](int64_t r0, int64_t r1) {
    double vals[kMaxFusedChainOps + 1];
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      for (int c = 0; c < cols; ++c) {
        EvalForward(p, p.x_val(ri, c), ri, c, vals);
        double gv = g(ri, c);
        for (int i = n - 1; i >= 0; --i) {
          const Step& s = p.steps[i];
          const double in = vals[i];
          const double out = vals[i + 1];
          switch (s.kind) {
            case Kind::kRelu:
              gv *= in > 0.0 ? 1.0 : 0.0;
              break;
            case Kind::kLeakyRelu:
              gv *= in > 0.0 ? 1.0 : s.scalar;
              break;
            case Kind::kSigmoid:
              gv *= out * (1.0 - out);
              break;
            case Kind::kTanh:
              gv *= 1.0 - out * out;
              break;
            case Kind::kExp:
              gv *= out;
              break;
            case Kind::kScale:
              gv *= s.scalar;
              break;
            case Kind::kAddScalar:
              break;
            case Kind::kAdd:
            case Kind::kSub:
            case Kind::kAddScaled:
              // Sign / scale are applied after the reduction, matching the
              // unfused AddLike / Scale backward order.
              if (need0[i]) g_slot0[i](ri, c) = gv;
              break;
            case Kind::kMul:
              if (need0[i]) g_slot0[i](ri, c) = gv * in;
              gv *= BroadcastAt(s.v0, s.b0, ri, c);
              break;
            case Kind::kAddProduct:
              if (need0[i]) g_slot0[i](ri, c) = gv * s.v1(ri, c);
              if (need1[i]) g_slot1[i](ri, c) = gv * s.v0(ri, c);
              break;
          }
        }
        if (need_input) g_input(ri, c) = gv;
      }
    }
  };
  const int64_t work = static_cast<int64_t>(rows) * cols * (2 * n);
  if (work >= kFuseParallelOps) {
    par::ParallelFor(rows, kFuseRowGrain, body);
  } else {
    body(0, rows);
  }

  // Accumulate in the order the unfused graph would: the last step's node is
  // processed first by Backward (reverse topological order), the chain input
  // last.
  for (int i = n - 1; i >= 0; --i) {
    const Step& s = p.steps[i];
    if (need0[i]) {
      Matrix gb = ReduceToBroadcastShape(g_slot0[i], s.b0);
      if (s.kind == Kind::kSub) gb *= -1.0;
      if (s.kind == Kind::kAddScaled) gb *= s.scalar;
      node.parents[s.parent0]->AccumulateGrad(gb);
    }
    if (need1[i]) {
      node.parents[s.parent1]->AccumulateGrad(g_slot1[i]);
    }
  }
  if (need_input) node.parents[0]->AccumulateGrad(g_input);
}

}  // namespace

ElementwiseChain& ElementwiseChain::Push(Instr instr) {
  instrs_.push_back(std::move(instr));
  return *this;
}

ElementwiseChain& ElementwiseChain::Relu() { return Push({Kind::kRelu}); }

ElementwiseChain& ElementwiseChain::LeakyRelu(double alpha) {
  Instr i{Kind::kLeakyRelu};
  i.scalar = alpha;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::Sigmoid() {
  return Push({Kind::kSigmoid});
}

ElementwiseChain& ElementwiseChain::Tanh() { return Push({Kind::kTanh}); }

ElementwiseChain& ElementwiseChain::Exp() { return Push({Kind::kExp}); }

ElementwiseChain& ElementwiseChain::Scale(double s) {
  Instr i{Kind::kScale};
  i.scalar = s;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::AddScalar(double s) {
  Instr i{Kind::kAddScalar};
  i.scalar = s;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::Add(const Tensor& t) {
  AMS_DCHECK(!t.is_null(), "null operand in fused Add");
  Instr i{Kind::kAdd};
  i.t0 = t;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::Sub(const Tensor& t) {
  AMS_DCHECK(!t.is_null(), "null operand in fused Sub");
  Instr i{Kind::kSub};
  i.t0 = t;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::Mul(const Tensor& t) {
  AMS_DCHECK(!t.is_null(), "null operand in fused Mul");
  Instr i{Kind::kMul};
  i.t0 = t;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::AddScaled(const Tensor& t, double s) {
  AMS_DCHECK(!t.is_null(), "null operand in fused AddScaled");
  Instr i{Kind::kAddScaled};
  i.scalar = s;
  i.t0 = t;
  return Push(std::move(i));
}

ElementwiseChain& ElementwiseChain::AddProduct(const Tensor& a,
                                               const Tensor& b) {
  AMS_DCHECK(!a.is_null() && !b.is_null(), "null operand in fused AddProduct");
  Instr i{Kind::kAddProduct};
  i.t0 = a;
  i.t1 = b;
  return Push(std::move(i));
}

Tensor ElementwiseChain::Apply(const Tensor& x) const {
  AMS_DCHECK(!x.is_null(), "fused chain applied to null tensor");
  if (instrs_.empty()) return x;
  AMS_DCHECK(steps() <= kMaxFusedChainOps,
             "fused chain longer than kMaxFusedChainOps");
  const Matrix& xv = x.value();

  auto program = std::make_shared<FusedProgram>();
  program->x_val = xv;
  program->steps.reserve(instrs_.size());
  std::vector<Tensor> parents;
  parents.reserve(1 + instrs_.size());
  parents.push_back(x);
  for (const Instr& in : instrs_) {
    Step s;
    s.kind = in.kind;
    s.scalar = in.scalar;
    if (!in.t0.is_null()) {
      if (in.kind == Kind::kAddProduct) {
        AMS_DCHECK(
            in.t0.value().same_shape(xv) && in.t1.value().same_shape(xv),
            "fused AddProduct operands must match the chain input shape");
      } else {
        s.b0 = ClassifyBroadcast(xv, in.t0.value(), "fused_elementwise");
      }
      s.v0 = in.t0.value();
      s.parent0 = static_cast<int>(parents.size());
      parents.push_back(in.t0);
      if (!in.t1.is_null()) {
        s.v1 = in.t1.value();
        s.parent1 = static_cast<int>(parents.size());
        parents.push_back(in.t1);
      }
    }
    program->steps.push_back(std::move(s));
  }

  Matrix out = xv;
  RunForward(*program, &out);
  return MakeOp(std::move(out), parents, "fused_elementwise",
                [program](Node& node) { RunBackward(*program, node); });
}

}  // namespace ams::tensor
