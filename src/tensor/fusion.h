// Trace-then-fuse executor for chains of elementwise tape ops.
//
// Model code builds an ElementwiseChain describing a sequence of elementwise
// steps (activation, bias add, gating product, affine blend, ...) and applies
// it to an input tensor. The chain records ONE tape node instead of one per
// step: a single fused forward pass walks the instruction list per element,
// and a single fused backward pass replays it in reverse, so the O(steps)
// intermediate matrices and tape nodes of the unfused graph are never
// allocated.
//
// Bit-identity contract: the fused forward computes, per element, exactly the
// same IEEE operation sequence as the unfused op chain, and the fused
// backward multiplies the running gradient by the same local derivatives in
// the same (reverse) order that the unfused per-op backward closures would.
// Operand gradients are accumulated full-shape, then reduced to the
// broadcast operand's shape, then sign/scale-adjusted — matching the
// reduce-then-scale order of the unfused Sub/Scale backward paths. The
// fusion property test (tests/autograd_property_test.cc) asserts forward
// values and all leaf gradients are bit-identical to the equivalent unfused
// graph over random chains.
#ifndef AMS_TENSOR_FUSION_H_
#define AMS_TENSOR_FUSION_H_

#include <vector>

#include "tensor/tensor.h"

namespace ams::tensor {

/// A recorded chain of elementwise ops, applied via Apply(). Chains are
/// cheap value types; record, apply, discard. Operand tensors captured by
/// reference must outlive Apply().
///
/// Every step maps 1:1 onto an unfused tensor op (the op it is bit-identical
/// to is noted on each method). Broadcast rules for tensor operands are those
/// of Add/Sub/Mul: same shape, 1 x C row, N x 1 column, or 1 x 1 scalar
/// against the chain input's N x C shape.
class ElementwiseChain {
 public:
  ElementwiseChain() = default;

  // --- Unary steps. ---
  ElementwiseChain& Relu();                       // tensor::Relu
  ElementwiseChain& LeakyRelu(double alpha);      // tensor::LeakyRelu
  ElementwiseChain& Sigmoid();                    // tensor::Sigmoid
  ElementwiseChain& Tanh();                       // tensor::Tanh
  ElementwiseChain& Exp();                        // tensor::Exp
  ElementwiseChain& Scale(double s);              // tensor::Scale
  ElementwiseChain& AddScalar(double s);          // tensor::AddScalar

  // --- Steps with a tensor operand (broadcast like Add/Sub/Mul). ---
  ElementwiseChain& Add(const Tensor& t);         // tensor::Add
  ElementwiseChain& Sub(const Tensor& t);         // tensor::Sub
  ElementwiseChain& Mul(const Tensor& t);         // tensor::Mul
  /// x + s * t, bit-identical to tensor::Add(x, tensor::Scale(t, s)).
  ElementwiseChain& AddScaled(const Tensor& t, double s);
  /// x + a ⊙ b (both same shape as x), bit-identical to
  /// tensor::Add(x, tensor::Mul(a, b)). The LSTM cell update.
  ElementwiseChain& AddProduct(const Tensor& a, const Tensor& b);

  int steps() const { return static_cast<int>(instrs_.size()); }

  /// Runs the chain on `x`, returning one fused tape node. An empty chain
  /// returns `x` itself.
  Tensor Apply(const Tensor& x) const;

 private:
  friend struct FusionAccess;
  enum class Kind {
    kRelu,
    kLeakyRelu,
    kSigmoid,
    kTanh,
    kExp,
    kScale,
    kAddScalar,
    kAdd,
    kSub,
    kMul,
    kAddScaled,
    kAddProduct,
  };
  struct Instr {
    Kind kind;
    double scalar = 0.0;  // alpha / s; unused otherwise
    Tensor t0;            // first operand; null for unary/scalar steps
    Tensor t1;            // second operand (kAddProduct only)
  };

  ElementwiseChain& Push(Instr instr);

  std::vector<Instr> instrs_;
};

/// Longest chain Apply() accepts; fused evaluation uses fixed-size
/// per-element scratch. Model code records far shorter chains.
inline constexpr int kMaxFusedChainOps = 16;

}  // namespace ams::tensor

#endif  // AMS_TENSOR_FUSION_H_
