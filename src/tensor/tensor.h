// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// The dynamic-graph design mirrors PyTorch/PaddlePaddle semantics at a small
// scale: every op builds a Node holding its value, its parents and a backward
// closure; Backward() topologically sorts the graph from a scalar root and
// accumulates gradients into every node with requires_grad set.
//
// All model code in this library (MLP, LSTM, GRU, GAT, and the AMS master
// model) is written against this module.
#ifndef AMS_TENSOR_TENSOR_H_
#define AMS_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "util/rng.h"

namespace ams::tensor {

namespace internal {

/// A vertex of the autodiff graph. Library users interact with Tensor.
struct Node {
  la::Matrix value;
  la::Matrix grad;  // lazily allocated; empty until first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward_fn;
  std::string op_name;  // for error messages / debugging

  /// Adds `g` into this node's grad, allocating it on first use.
  void AccumulateGrad(const la::Matrix& g);
};

}  // namespace internal

/// A handle to a node of the autodiff graph (shared, cheap to copy).
///
/// Tensors are immutable through the op API; parameter values are updated
/// in place by optimizers via mutable_value().
class Tensor {
 public:
  /// Null tensor (no node). Most APIs require a non-null tensor.
  Tensor() = default;

  /// Wraps a value; `requires_grad` marks it as a trainable leaf.
  explicit Tensor(la::Matrix value, bool requires_grad = false);

  /// A non-trainable constant leaf.
  static Tensor Constant(la::Matrix value) { return Tensor(std::move(value)); }
  /// A trainable leaf (weights, biases).
  static Tensor Parameter(la::Matrix value) {
    return Tensor(std::move(value), /*requires_grad=*/true);
  }

  bool is_null() const { return node_ == nullptr; }
  const la::Matrix& value() const;
  /// Mutable access to the raw value (optimizer updates only).
  la::Matrix& mutable_value();
  /// The accumulated gradient. Zero-shaped until Backward touches this node.
  const la::Matrix& grad() const;
  bool requires_grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Clears the gradient (used by optimizers between steps).
  void ZeroGrad();

  /// Internal node access for the op implementations.
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Runs backpropagation from `root`, which must be a 1x1 scalar.
/// Gradients accumulate into every reachable node with requires_grad.
void Backward(const Tensor& root);

namespace internal {

/// Builds a new op node over `parents` whose requires_grad is the OR of the
/// parents' flags. Shared by the op implementations in tensor.cc and the
/// fused-elementwise executor in fusion.cc.
Tensor MakeOp(la::Matrix value, const std::vector<Tensor>& parents,
              std::string op_name, std::function<void(Node&)> backward_fn);

/// Broadcast classification shared by Add/Sub/Mul and the fused executor:
/// `b` may match `a`'s shape or be 1 x C (row), N x 1 (column) or 1 x 1
/// (scalar) against `a` of N x C.
enum class BroadcastKind { kSame, kRow, kCol, kScalar };

BroadcastKind ClassifyBroadcast(const la::Matrix& a, const la::Matrix& b,
                                const char* op);

double BroadcastAt(const la::Matrix& b, BroadcastKind kind, int r, int c);

/// Reduces a full-shaped gradient `g` back to the broadcast operand's shape.
la::Matrix ReduceToBroadcastShape(const la::Matrix& g, BroadcastKind kind);

}  // namespace internal

// --- Graph-building operations. Shapes are validated with AMS_DCHECK. ---

/// Matrix product: (n x k) . (k x m) -> (n x m).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transposed copy.
Tensor Transpose(const Tensor& a);

/// Elementwise sum of equal shapes, or broadcast add where `b` is 1 x C
/// (row bias), N x 1 (column bias) or 1 x 1 (scalar) against `a` of N x C.
Tensor Add(const Tensor& a, const Tensor& b);

/// a - b with the same broadcasting rules as Add.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product of equal shapes, or broadcast where `b`
/// is 1 x C, N x 1, or 1 x 1 against `a` of N x C.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Scalar multiply.
Tensor Scale(const Tensor& a, double s);

/// Adds a scalar constant elementwise.
Tensor AddScalar(const Tensor& a, double s);

/// max(x, 0).
Tensor Relu(const Tensor& a);

/// x > 0 ? x : alpha * x (GAT attention uses alpha = 0.2).
Tensor LeakyRelu(const Tensor& a, double alpha = 0.2);

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);

/// Row-wise softmax restricted to positions where mask(r, c) != 0; masked-out
/// entries are exactly zero in the output. Every row must have at least one
/// unmasked entry. Used for GAT attention over graph neighbourhoods.
Tensor MaskedRowSoftmax(const Tensor& logits, const la::Matrix& mask);

/// Concatenates along columns: [a | b | ...]. All inputs share a row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates along rows (stacks vertically). All inputs share a col count.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Rows [begin, end) of `a`.
Tensor SliceRows(const Tensor& a, int begin, int end);

/// Sum of all elements -> 1 x 1.
Tensor Sum(const Tensor& a);

/// Mean of all elements -> 1 x 1.
Tensor Mean(const Tensor& a);

/// Sum of squared elements -> 1 x 1 (L2 penalties).
Tensor SumSquares(const Tensor& a);

/// Row sums -> N x 1.
Tensor RowSums(const Tensor& a);

/// Per-row dot product of equal-shaped a and b -> N x 1.
/// Used for slave-LR predictions: UR_i = <X_i, beta_i>.
Tensor RowDot(const Tensor& a, const Tensor& b);

/// Mean squared error between equal-shaped prediction and target -> 1 x 1.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

/// Inverted dropout. In training mode zeroes each element with probability
/// `p` and scales survivors by 1/(1-p); identity in eval mode.
Tensor Dropout(const Tensor& a, double p, bool training, Rng* rng);

/// Numerical gradient check helper: evaluates d loss / d leaf element (r, c)
/// by central differences, where `forward` rebuilds the scalar loss from
/// current leaf values. Used by tests.
double NumericalGradient(const std::function<double()>& forward, Tensor leaf,
                         int r, int c, double eps = 1e-5);

}  // namespace ams::tensor

#endif  // AMS_TENSOR_TENSOR_H_
