#include "optim/optimizer.h"

#include <cmath>

namespace ams::optim {

using la::Matrix;

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params_) {
    const Matrix& g = p.grad();
    for (int i = 0; i < g.size(); ++i) total_sq += g.data()[i] * g.data()[i];
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& p : params_) {
      // grad() lazily materializes; scale through the node's grad matrix.
      Matrix scaled = p.grad() * scale;
      p.ZeroGrad();
      p.node()->AccumulateGrad(scaled);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<tensor::Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = params_[i].mutable_value();
    const Matrix& grad = params_[i].grad();
    for (int j = 0; j < value.size(); ++j) {
      double g = grad.data()[j] + weight_decay_ * value.data()[j];
      if (momentum_ > 0.0) {
        velocity_[i].data()[j] = momentum_ * velocity_[i].data()[j] + g;
        g = velocity_[i].data()[j];
      }
      value.data()[j] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<tensor::Tensor> params, double lr, double beta1,
           double beta2, double epsilon, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Matrix::Zeros(p.rows(), p.cols()));
    v_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = params_[i].mutable_value();
    const Matrix& grad = params_[i].grad();
    for (int j = 0; j < value.size(); ++j) {
      const double g = grad.data()[j] + weight_decay_ * value.data()[j];
      m_[i].data()[j] = beta1_ * m_[i].data()[j] + (1.0 - beta1_) * g;
      v_[i].data()[j] = beta2_ * v_[i].data()[j] + (1.0 - beta2_) * g * g;
      const double m_hat = m_[i].data()[j] / bc1;
      const double v_hat = v_[i].data()[j] / bc2;
      value.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace ams::optim
