#include "optim/optimizer.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ams::optim {

using la::Matrix;

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params_) {
    const Matrix& g = p.grad();
    for (int i = 0; i < g.size(); ++i) total_sq += g.data()[i] * g.data()[i];
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& p : params_) {
      // grad() lazily materializes; scale through the node's grad matrix.
      Matrix scaled = p.grad() * scale;
      p.ZeroGrad();
      p.node()->AccumulateGrad(scaled);
    }
  }
  return norm;
}

OptimizerState Optimizer::SaveState() const {
  OptimizerState state;
  state.learning_rate = lr_;
  return state;
}

Status Optimizer::RestoreState(const OptimizerState& state) {
  AMS_RETURN_NOT_OK(CheckSlots(state, 0));
  lr_ = state.learning_rate;
  return Status::OK();
}

Status Optimizer::CheckSlots(const OptimizerState& state,
                             size_t expected) const {
  if (state.slots.size() != expected) {
    return Status::InvalidArgument(
        "optimizer state has " + std::to_string(state.slots.size()) +
        " slots, expected " + std::to_string(expected));
  }
  // Slots are laid out per parameter, in parameter order, possibly in
  // several groups (Adam keeps two).
  const size_t groups = params_.empty() ? 0 : expected / params_.size();
  for (size_t g = 0; g < groups; ++g) {
    for (size_t i = 0; i < params_.size(); ++i) {
      const la::Matrix& slot = state.slots[g * params_.size() + i];
      if (slot.rows() != params_[i].rows() ||
          slot.cols() != params_[i].cols()) {
        return Status::InvalidArgument("optimizer state slot shape mismatch");
      }
    }
  }
  return Status::OK();
}

Sgd::Sgd(std::vector<tensor::Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = params_[i].mutable_value();
    const Matrix& grad = params_[i].grad();
    for (int j = 0; j < value.size(); ++j) {
      double g = grad.data()[j] + weight_decay_ * value.data()[j];
      if (momentum_ > 0.0) {
        velocity_[i].data()[j] = momentum_ * velocity_[i].data()[j] + g;
        g = velocity_[i].data()[j];
      }
      value.data()[j] -= lr_ * g;
    }
  }
}

OptimizerState Sgd::SaveState() const {
  OptimizerState state;
  state.learning_rate = lr_;
  state.slots = velocity_;
  return state;
}

Status Sgd::RestoreState(const OptimizerState& state) {
  AMS_RETURN_NOT_OK(CheckSlots(state, velocity_.size()));
  lr_ = state.learning_rate;
  velocity_ = state.slots;
  return Status::OK();
}

Adam::Adam(std::vector<tensor::Tensor> params, double lr, double beta1,
           double beta2, double epsilon, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Matrix::Zeros(p.rows(), p.cols()));
    v_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = params_[i].mutable_value();
    const Matrix& grad = params_[i].grad();
    for (int j = 0; j < value.size(); ++j) {
      const double g = grad.data()[j] + weight_decay_ * value.data()[j];
      m_[i].data()[j] = beta1_ * m_[i].data()[j] + (1.0 - beta1_) * g;
      v_[i].data()[j] = beta2_ * v_[i].data()[j] + (1.0 - beta2_) * g * g;
      const double m_hat = m_[i].data()[j] / bc1;
      const double v_hat = v_[i].data()[j] / bc2;
      value.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

OptimizerState Adam::SaveState() const {
  OptimizerState state;
  state.learning_rate = lr_;
  state.step_count = t_;
  state.slots = m_;
  state.slots.insert(state.slots.end(), v_.begin(), v_.end());
  return state;
}

Status Adam::RestoreState(const OptimizerState& state) {
  AMS_RETURN_NOT_OK(CheckSlots(state, m_.size() + v_.size()));
  lr_ = state.learning_rate;
  t_ = static_cast<int>(state.step_count);
  std::copy(state.slots.begin(), state.slots.begin() + m_.size(), m_.begin());
  std::copy(state.slots.begin() + m_.size(), state.slots.end(), v_.begin());
  return Status::OK();
}

}  // namespace ams::optim
