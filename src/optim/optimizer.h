// First-order optimizers over tensor parameters.
//
// The paper trains AMS (and the neural baselines) with Adam (Kingma & Ba)
// plus L2 weight decay; SGD with momentum is provided for tests/ablations.
#ifndef AMS_OPTIM_OPTIMIZER_H_
#define AMS_OPTIM_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace ams::optim {

/// Common interface: after Backward() populated gradients, Step() updates
/// parameter values in place; ZeroGrad() clears gradients for the next pass.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<tensor::Tensor>& params() const { return params_; }

 protected:
  std::vector<tensor::Tensor> params_;
};

/// SGD with optional classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void Step() override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<la::Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2014) with bias correction and L2 weight decay applied
/// as a gradient term (classic, non-decoupled — matches common framework
/// defaults the paper's PaddlePaddle implementation would have used).
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8,
       double weight_decay = 0.0);
  void Step() override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  int t_ = 0;
  std::vector<la::Matrix> m_;
  std::vector<la::Matrix> v_;
};

}  // namespace ams::optim

#endif  // AMS_OPTIM_OPTIMIZER_H_
