// First-order optimizers over tensor parameters.
//
// The paper trains AMS (and the neural baselines) with Adam (Kingma & Ba)
// plus L2 weight decay; SGD with momentum is provided for tests/ablations.
#ifndef AMS_OPTIM_OPTIMIZER_H_
#define AMS_OPTIM_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace ams::optim {

/// Serializable optimizer state: the learning rate, the step counter (Adam's
/// bias-correction t) and the per-parameter moment/velocity slots, in a
/// derived-class-defined order. Used by checkpoint/resume and by the epoch
/// rollback guard, both of which need bit-exact restoration.
struct OptimizerState {
  double learning_rate = 0.0;
  int64_t step_count = 0;
  std::vector<la::Matrix> slots;
};

/// Common interface: after Backward() populated gradients, Step() updates
/// parameter values in place; ZeroGrad() clears gradients for the next pass.
class Optimizer {
 public:
  Optimizer(std::vector<tensor::Tensor> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  /// Snapshot / restore of the full internal state (not parameter values —
  /// those live in the tensors). RestoreState rejects a state whose slot
  /// count or shapes do not match this optimizer.
  virtual OptimizerState SaveState() const;
  virtual Status RestoreState(const OptimizerState& state);

  const std::vector<tensor::Tensor>& params() const { return params_; }

 protected:
  Status CheckSlots(const OptimizerState& state, size_t expected) const;

  std::vector<tensor::Tensor> params_;
  double lr_;
};

/// SGD with optional classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void Step() override;
  OptimizerState SaveState() const override;
  Status RestoreState(const OptimizerState& state) override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<la::Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2014) with bias correction and L2 weight decay applied
/// as a gradient term (classic, non-decoupled — matches common framework
/// defaults the paper's PaddlePaddle implementation would have used).
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8,
       double weight_decay = 0.0);
  void Step() override;
  OptimizerState SaveState() const override;
  Status RestoreState(const OptimizerState& state) override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  int t_ = 0;
  std::vector<la::Matrix> m_;
  std::vector<la::Matrix> v_;
};

}  // namespace ams::optim

#endif  // AMS_OPTIM_OPTIMIZER_H_
