// Linear regression family: OLS/Ridge in closed form (Cholesky) and
// Lasso/ElasticNet via cyclic coordinate descent.
//
// These serve three roles in the reproduction: the Lasso/Ridge/Elasticnet
// baselines of Table I/II, the anchored LR of the AMS master model (Eq. 4-5),
// and the globally optimized component of model assembly.
#ifndef AMS_LINEAR_LINEAR_MODEL_H_
#define AMS_LINEAR_LINEAR_MODEL_H_

#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace ams::linear {

/// Shared options for the linear family.
struct LinearOptions {
  /// Overall regularization strength (lambda). 0 disables regularization.
  double alpha = 1.0;
  /// Mix between L1 and L2: 1.0 = Lasso, 0.0 = Ridge, in between = ElasticNet.
  /// Only used by the coordinate-descent solver.
  double l1_ratio = 0.5;
  bool fit_intercept = true;
  /// Coordinate-descent iteration cap and convergence tolerance on the max
  /// coefficient update.
  int max_iterations = 1000;
  double tolerance = 1e-8;
};

/// A fitted linear model y = X beta + intercept.
class LinearModel {
 public:
  LinearModel() = default;

  /// Ordinary least squares (tiny ridge jitter keeps the normal equations
  /// solvable for rank-deficient X).
  static Result<LinearModel> FitOls(const la::Matrix& x, const la::Matrix& y,
                                    bool fit_intercept = true);

  /// Ridge regression with penalty alpha, solved in closed form.
  /// Objective: (1/2N) ||y - X b||^2 + (alpha/2) ||b||^2 — matching the
  /// paper's anchored-LR objective Gamma_acr (Eq. 5).
  static Result<LinearModel> FitRidge(const la::Matrix& x, const la::Matrix& y,
                                      double alpha, bool fit_intercept = true);

  /// ElasticNet via cyclic coordinate descent:
  /// (1/2N) ||y - X b||^2 + alpha * (l1_ratio ||b||_1
  ///                                 + (1 - l1_ratio)/2 ||b||^2).
  /// l1_ratio = 1 gives the Lasso.
  static Result<LinearModel> FitElasticNet(const la::Matrix& x,
                                           const la::Matrix& y,
                                           const LinearOptions& options);

  /// Predictions for each row of x.
  Result<std::vector<double>> Predict(const la::Matrix& x) const;

  /// Coefficient vector (num_features x 1), excluding the intercept.
  const la::Matrix& coefficients() const { return beta_; }
  double intercept() const { return intercept_; }
  int num_features() const { return beta_.rows(); }

  /// Number of exactly-zero coefficients (L1 sparsity diagnostic).
  int NumZeroCoefficients(double tol = 1e-12) const;

 private:
  la::Matrix beta_;  // p x 1
  double intercept_ = 0.0;
};

}  // namespace ams::linear

#endif  // AMS_LINEAR_LINEAR_MODEL_H_
