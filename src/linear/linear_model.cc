#include "linear/linear_model.h"

#include <algorithm>
#include <cmath>

namespace ams::linear {

using la::Matrix;

namespace {

Status ValidateXy(const Matrix& x, const Matrix& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.rows() != x.rows() || y.cols() != 1) {
    return Status::InvalidArgument("y must be (num_rows x 1)");
  }
  if (!x.AllFinite() || !y.AllFinite()) {
    return Status::InvalidArgument("non-finite values in training data");
  }
  return Status::OK();
}

/// Centers columns of x and y in place; returns (col_means, y_mean).
std::pair<Matrix, double> CenterInPlace(Matrix* x, Matrix* y) {
  Matrix means = x->ColSums() * (1.0 / x->rows());
  for (int r = 0; r < x->rows(); ++r) {
    for (int c = 0; c < x->cols(); ++c) (*x)(r, c) -= means(0, c);
  }
  const double y_mean = y->Mean();
  for (int r = 0; r < y->rows(); ++r) (*y)(r, 0) -= y_mean;
  return {means, y_mean};
}

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

}  // namespace

Result<LinearModel> LinearModel::FitOls(const Matrix& x, const Matrix& y,
                                        bool fit_intercept) {
  return FitRidge(x, y, /*alpha=*/0.0, fit_intercept);
}

Result<LinearModel> LinearModel::FitRidge(const Matrix& x, const Matrix& y,
                                          double alpha, bool fit_intercept) {
  AMS_RETURN_NOT_OK(ValidateXy(x, y));
  if (alpha < 0.0) return Status::InvalidArgument("negative ridge alpha");
  Matrix xc = x;
  Matrix yc = y;
  Matrix means(1, x.cols(), 0.0);
  double y_mean = 0.0;
  if (fit_intercept) {
    auto centered = CenterInPlace(&xc, &yc);
    means = centered.first;
    y_mean = centered.second;
  }
  // Objective (1/2N)||y-Xb||^2 + (alpha/2)||b||^2 has normal equations
  // (X^T X / N + alpha I) b = X^T y / N, i.e. (X^T X + N*alpha I) b = X^T y.
  const double lambda = alpha * x.rows();
  AMS_ASSIGN_OR_RETURN(Matrix beta, la::RidgeSolve(xc, yc, lambda));
  LinearModel model;
  model.beta_ = std::move(beta);
  if (fit_intercept) {
    model.intercept_ = y_mean - la::Dot(means, model.beta_);
  }
  return model;
}

Result<LinearModel> LinearModel::FitElasticNet(const Matrix& x,
                                               const Matrix& y,
                                               const LinearOptions& options) {
  AMS_RETURN_NOT_OK(ValidateXy(x, y));
  if (options.alpha < 0.0 || options.l1_ratio < 0.0 ||
      options.l1_ratio > 1.0) {
    return Status::InvalidArgument("invalid ElasticNet hyperparameters");
  }
  const int n = x.rows();
  const int p = x.cols();
  Matrix xc = x;
  Matrix yc = y;
  Matrix means(1, p, 0.0);
  double y_mean = 0.0;
  if (options.fit_intercept) {
    auto centered = CenterInPlace(&xc, &yc);
    means = centered.first;
    y_mean = centered.second;
  }

  const double l1_penalty = options.alpha * options.l1_ratio;
  const double l2_penalty = options.alpha * (1.0 - options.l1_ratio);

  // Precompute column squared norms (z_j = sum_i x_ij^2 / N).
  std::vector<double> col_sq(p, 0.0);
  for (int r = 0; r < n; ++r) {
    const double* row = xc.row_data(r);
    for (int c = 0; c < p; ++c) col_sq[c] += row[c] * row[c];
  }
  for (int c = 0; c < p; ++c) col_sq[c] /= n;

  Matrix beta(p, 1, 0.0);
  // residual = y - X beta, maintained incrementally.
  std::vector<double> residual(n);
  for (int r = 0; r < n; ++r) residual[r] = yc(r, 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_update = 0.0;
    for (int j = 0; j < p; ++j) {
      if (col_sq[j] == 0.0) continue;  // constant (centered-out) column
      const double old_beta = beta(j, 0);
      // rho_j = (1/N) sum_i x_ij (residual_i + x_ij * old_beta).
      double rho = 0.0;
      for (int r = 0; r < n; ++r) rho += xc(r, j) * residual[r];
      rho = rho / n + col_sq[j] * old_beta;
      const double new_beta =
          SoftThreshold(rho, l1_penalty) / (col_sq[j] + l2_penalty);
      if (new_beta != old_beta) {
        const double delta = new_beta - old_beta;
        for (int r = 0; r < n; ++r) residual[r] -= delta * xc(r, j);
        beta(j, 0) = new_beta;
        max_update = std::max(max_update, std::fabs(delta));
      }
    }
    if (max_update < options.tolerance) break;
  }

  LinearModel model;
  model.beta_ = std::move(beta);
  if (options.fit_intercept) {
    model.intercept_ = y_mean - la::Dot(means, model.beta_);
  }
  return model;
}

Result<std::vector<double>> LinearModel::Predict(const Matrix& x) const {
  if (beta_.empty()) return Status::FailedPrecondition("model not fitted");
  if (x.cols() != beta_.rows()) {
    return Status::InvalidArgument("feature width mismatch in Predict");
  }
  std::vector<double> out(x.rows());
  for (int r = 0; r < x.rows(); ++r) {
    const double* row = x.row_data(r);
    double acc = intercept_;
    for (int c = 0; c < x.cols(); ++c) acc += row[c] * beta_(c, 0);
    out[r] = acc;
  }
  return out;
}

int LinearModel::NumZeroCoefficients(double tol) const {
  int count = 0;
  for (int j = 0; j < beta_.rows(); ++j) {
    if (std::fabs(beta_(j, 0)) <= tol) ++count;
  }
  return count;
}

}  // namespace ams::linear
