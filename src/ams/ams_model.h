// The paper's contribution: the Adaptive Master-Slave regularized model
// (AMS, §III).
//
// A master model — node transformation (Eq. 1) -> GAT over the company
// correlation graph (Eq. 2-3) -> generation head M(.) (Eq. 6) — emits, for
// every company, the coefficient vector of a per-company linear-regression
// slave model. Two regularizers keep the generated slave-LRs well-behaved:
//   * supervised LR generation (Eq. 8-9): pull M(g(X_i)) toward the anchored
//     LR B_acr fitted on all training data (Eq. 4-5);
//   * model assembly (Eq. 10): blend the generated coefficients with a
//     globally-learned LR beta_c via the hyperparameter gamma.
// The joint objective is Gamma_master (Eq. 11); training follows §III-F
// (anchored LR first, then Adam on everything else).
#ifndef AMS_AMS_AMS_MODEL_H_
#define AMS_AMS_AMS_MODEL_H_

#include <memory>
#include <vector>

#include "data/features.h"
#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "graph/company_graph.h"
#include "la/matrix.h"
#include "nn/dense.h"
#include "robust/checkpoint.h"
#include "robust/guard.h"
#include "util/rng.h"
#include "util/status.h"

namespace ams::core {

struct AmsConfig {
  // --- Node transformation (Eq. 1): ReLU forward layers. ---
  std::vector<int> node_transform_layers = {48, 32};

  // --- GNN on the company correlation graph. ---
  gnn::GatConfig gat;

  /// Ablation switch: when false the GNN is skipped and the generation head
  /// consumes the node transformation output directly.
  bool use_gat = true;

  /// Which GNN aggregates over the correlation graph: the paper's GAT, or a
  /// plain GCN (Kipf & Welling) used by the component ablation to isolate
  /// what attention adds over mean aggregation.
  enum class GnnKind { kGat, kGcn };
  GnnKind gnn_kind = GnnKind::kGat;
  /// Hidden widths of the GCN variant (its output width reuses
  /// gat.out_features).
  std::vector<int> gcn_hidden = {32};

  // --- Generation head M(.): hidden widths (output width is implied by the
  //     slave-LR coefficient count). ---
  std::vector<int> generator_hidden = {48};

  // --- Objective Gamma_master (Eq. 11). ---
  /// Model-assembly blend: slave = gamma * M(g(X)) + (1 - gamma) * beta_c.
  /// gamma = 1 disables model assembly (ablation).
  double gamma = 0.6;
  /// Eq. 10's "globally optimized LR" beta_c: when false (default) it is the
  /// anchored LR B_acr held fixed, so the assembled slave can never drift
  /// below the anchor; when true beta_c is a free parameter trained jointly
  /// (with the L2 term of Eq. 11), the paper's more liberal reading.
  bool learn_beta_c = false;
  /// Supervised-LR-generation strength lambda_slg. 0 disables (ablation).
  double lambda_slg = 2.0;
  /// L2 regularization lambda_1 on master parameters and beta_c.
  double lambda_l2 = 1e-4;
  /// Regularization strength when fitting the anchored LR B_acr.
  double anchored_alpha = 0.1;
  /// L1 share of the anchored LR's penalty. 0 reproduces the paper's Eq. 5
  /// (pure L2); > 0 generalizes the anchor to the elastic-net family, which
  /// this implementation allows the hyperparameter search to exploit.
  double anchored_l1_ratio = 0.0;

  // --- Optimization (§III-F / §IV-C). ---
  int max_epochs = 400;
  double learning_rate = 5e-4;
  double dropout = 0.05;
  double grad_clip = 5.0;
  /// Early-stopping patience on validation loss (epochs).
  int patience = 50;

  /// Log train/valid loss every N epochs (0 = silent).
  int log_every = 0;

  uint64_t seed = 42;

  // --- Robustness (see src/robust). ---
  /// Non-finite loss/gradient handling; defaults to AMS_GUARD_POLICY.
  robust::GuardOptions guard = robust::GuardOptions::FromEnv();
  /// Checkpoint file for resumable training. Empty means "derive from
  /// AMS_CHECKPOINT_DIR" (still empty -> checkpointing off). A checkpoint
  /// is written every `checkpoint_every` committed epochs and removed on
  /// successful completion; Fit resumes from a matching checkpoint
  /// bit-identically.
  std::string checkpoint_path;
  int checkpoint_every = 25;
};

/// A fitted AMS model (master + anchored LR); generates and applies a
/// slave-LR per company at prediction time.
class AmsModel {
 public:
  explicit AmsModel(AmsConfig config) : config_(std::move(config)) {}

  /// Trains the master model. `graph` must index the same companies as the
  /// datasets' SampleMeta::company, and must have been built from training-
  /// window revenue only (no leakage). Within each quarter the datasets must
  /// contain exactly one row per company, ordered by company index — the
  /// layout data::FeatureBuilder produces.
  Status Fit(const data::Dataset& train, const data::Dataset& valid,
             const graph::CompanyGraph& graph);

  /// Normalized UR predictions for every row of `dataset` (same company/
  /// quarter layout requirements as Fit).
  Result<std::vector<double>> Predict(const data::Dataset& dataset) const;

  /// Per-sample slave-LR coefficients (num_samples x (F+1); the last column
  /// is the generated intercept). This is the paper's interpretability
  /// artifact (§IV-G, Fig. 8).
  Result<la::Matrix> SlaveCoefficients(const data::Dataset& dataset) const;

  /// Anchored LR coefficients B_acr ((F+1) x 1, intercept last).
  const la::Matrix& anchored_coefficients() const { return b_acr_; }

  /// Training diagnostics.
  int epochs_run() const { return epochs_run_; }
  double best_valid_loss() const { return best_valid_loss_; }

  /// Fitted dimensions (0 until Fit/FromState succeeds). The serving layer
  /// validates request shapes against these before admission.
  int num_features() const { return num_features_; }
  int num_companies() const { return num_companies_; }
  bool fitted() const { return fitted_; }

  // --- Serialization (the AMSMODEL1 serving artifact, see src/serve). ---

  /// Hash of the model's architecture/config and fitted dimensions. Stored
  /// inside exported artifacts; FromState recomputes it from the carried
  /// config and rejects a mismatch (field-encoding skew between writer and
  /// reader that a payload CRC cannot see).
  Result<std::string> ModelFingerprint() const;

  /// Serializes the fitted model — config, anchored LR, attention mask and
  /// every parameter tensor — into a checkpoint. Matrix payloads are raw
  /// IEEE-754 bytes, so export -> FromState is a bit-exact round trip and
  /// the restored model's Predict is bit-identical to this one's.
  Result<robust::Checkpoint> ExportState() const;

  /// Rebuilds a fitted model from ExportState output. Every field is
  /// bounds-checked (widths, shapes, parameter count) before any network is
  /// constructed, so arbitrary corrupted input yields an error Status.
  static Result<AmsModel> FromState(const robust::Checkpoint& state);

 private:
  struct QuarterBatch {
    int quarter = 0;
    std::vector<int> rows;  // dataset rows, ordered by company index
  };

  struct MasterOutput {
    /// Raw generation-head output M(g(X)): n x (F+1). The supervised-LR-
    /// generation regularizer (Eq. 8) applies to this.
    tensor::Tensor generated;
    /// After model assembly (Eq. 10): the slave-LR coefficients actually
    /// used for prediction.
    tensor::Tensor assembled;
  };

  /// Master forward pass for one quarter's company block (n x F features).
  MasterOutput MasterForward(const tensor::Tensor& x, bool training,
                             Rng* dropout_rng) const;

  /// Constructs node_transform_/gat_/gcn_/generator_ from config_ and
  /// num_features_ (shared by Fit and FromState).
  void BuildMasterModules(Rng* init_rng);

  /// Collects all trainable parameters.
  std::vector<tensor::Tensor> Parameters() const;

  Result<std::vector<QuarterBatch>> SplitQuarters(
      const data::Dataset& dataset) const;

  AmsConfig config_;
  la::Matrix attention_mask_;           // from the correlation graph
  la::Matrix b_acr_;                    // (F+1) x 1 anchored LR
  std::vector<nn::Dense> node_transform_;
  std::unique_ptr<gnn::GatNetwork> gat_;
  std::unique_ptr<gnn::GcnNetwork> gcn_;
  std::unique_ptr<nn::Mlp> generator_;
  tensor::Tensor beta_c_;               // (F+1) x 1 model-assembly LR
  int num_features_ = 0;
  int num_companies_ = 0;
  int epochs_run_ = 0;
  double best_valid_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace ams::core

#endif  // AMS_AMS_AMS_MODEL_H_
