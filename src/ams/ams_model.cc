#include "ams/ams_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>

#include "linear/linear_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "robust/checkpoint.h"
#include "robust/faults.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"
#include "util/logging.h"

namespace ams::core {

using la::Matrix;
using tensor::Tensor;

namespace {

/// Augments features with a trailing column of ones so slave-LRs carry an
/// intercept: XA = [X | 1].
Matrix AugmentOnes(const Matrix& x) {
  return Matrix::HStack(x, Matrix::Ones(x.rows(), 1));
}

/// Snapshot / restore of parameter values for early stopping.
std::vector<Matrix> SnapshotParams(const std::vector<Tensor>& params) {
  std::vector<Matrix> out;
  out.reserve(params.size());
  for (const Tensor& p : params) out.push_back(p.value());
  return out;
}

void RestoreParams(std::vector<Tensor>* params,
                   const std::vector<Matrix>& snapshot) {
  AMS_DCHECK(params->size() == snapshot.size(), "snapshot size mismatch");
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i].mutable_value() = snapshot[i];
  }
}

/// Everything that determines the training trajectory, rendered to a string:
/// a checkpoint is only resumed when this matches, so a config/data change
/// silently invalidates stale checkpoints instead of corrupting a run.
std::string TrainFingerprint(const AmsConfig& config, int num_features,
                             int num_companies, int num_train_samples) {
  std::ostringstream oss;
  oss << "ams1|s" << config.seed << "|f" << num_features << "|c"
      << num_companies << "|n" << num_train_samples << "|e"
      << config.max_epochs << "|p" << config.patience << "|lr"
      << config.learning_rate << "|g" << config.gamma << "|slg"
      << config.lambda_slg << "|l2" << config.lambda_l2 << "|do"
      << config.dropout << "|gc" << config.grad_clip << "|aa"
      << config.anchored_alpha << "|al" << config.anchored_l1_ratio << "|lb"
      << config.learn_beta_c << "|gat" << config.use_gat << "|k"
      << static_cast<int>(config.gnn_kind) << "|nt";
  for (int w : config.node_transform_layers) oss << "_" << w;
  oss << "|gh";
  for (int w : config.generator_hidden) oss << "_" << w;
  oss << "|gat" << config.gat.num_heads << "_" << config.gat.out_features;
  for (int w : config.gat.hidden_per_head) oss << "_" << w;
  return oss.str();
}

/// Everything that determines prediction behaviour of a *fitted* model,
/// rendered to a string; its hash is the artifact fingerprint.
std::string ModelConfigString(const AmsConfig& config, int num_features,
                              int num_companies) {
  std::ostringstream oss;
  oss << "amsmodel1|f" << num_features << "|c" << num_companies << "|s"
      << config.seed << "|g" << config.gamma << "|slg" << config.lambda_slg
      << "|l2" << config.lambda_l2 << "|aa" << config.anchored_alpha << "|al"
      << config.anchored_l1_ratio << "|lb" << config.learn_beta_c << "|do"
      << config.dropout << "|gat" << config.use_gat << "|k"
      << static_cast<int>(config.gnn_kind) << "|nt";
  for (int w : config.node_transform_layers) oss << "_" << w;
  oss << "|gh";
  for (int w : config.generator_hidden) oss << "_" << w;
  oss << "|gch";
  for (int w : config.gcn_hidden) oss << "_" << w;
  oss << "|gatc" << config.gat.num_heads << "_" << config.gat.out_features
      << "_" << static_cast<int>(config.gat.hidden_activation) << "_"
      << config.gat.attention_dropout << "_" << config.gat.leaky_relu_alpha;
  for (int w : config.gat.hidden_per_head) oss << "_" << w;
  return oss.str();
}

std::string JoinWidths(const std::vector<int>& widths) {
  std::ostringstream oss;
  for (size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) oss << ",";
    oss << widths[i];
  }
  return oss.str();
}

/// Layer widths from "48,32". Bounded so corrupted artifacts can never
/// request absurd allocations; an empty string is an empty list.
Result<std::vector<int>> ParseWidths(const std::string& csv,
                                     const char* what) {
  std::vector<int> widths;
  if (csv.empty()) return widths;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string field = csv.substr(pos, comma - pos);
    if (field.empty() || field.size() > 5 ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(std::string("malformed ") + what +
                                     " list: '" + csv + "'");
    }
    const int width = std::atoi(field.c_str());
    if (width < 1 || width > 4096) {
      return Status::InvalidArgument(std::string(what) + " width out of " +
                                     "range [1, 4096]: " + field);
    }
    widths.push_back(width);
    if (widths.size() > 64) {
      return Status::InvalidArgument(std::string("too many ") + what +
                                     " layers");
    }
    pos = comma + 1;
  }
  return widths;
}

/// Range-checked double -> int conversion for deserialized scalars (a raw
/// cast of a corrupted/huge double is undefined behaviour).
Result<int> ScalarToInt(double value, const char* what, int min_value,
                        int max_value) {
  if (!(value >= min_value && value <= max_value)) {
    std::ostringstream oss;
    oss << what << " out of range [" << min_value << ", " << max_value
        << "]: " << value;
    return Status::InvalidArgument(oss.str());
  }
  return static_cast<int>(value);
}

/// FNV-1a, for the checkpoint filename under AMS_CHECKPOINT_DIR.
std::string HashHex(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

Result<std::vector<AmsModel::QuarterBatch>> AmsModel::SplitQuarters(
    const data::Dataset& dataset) const {
  std::vector<QuarterBatch> batches;
  for (auto& [quarter, rows] : dataset.RowsByQuarter()) {
    if (static_cast<int>(rows.size()) != num_companies_) {
      return Status::InvalidArgument(
          "AMS requires one sample per company per quarter (quarter " +
          std::to_string(quarter) + " has " + std::to_string(rows.size()) +
          " samples, graph has " + std::to_string(num_companies_) +
          " companies)");
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (dataset.meta[rows[i]].company != static_cast<int>(i)) {
        return Status::InvalidArgument(
            "AMS quarter rows must be ordered by company index");
      }
    }
    QuarterBatch batch;
    batch.quarter = quarter;
    batch.rows = rows;
    batches.push_back(std::move(batch));
  }
  return batches;
}

void AmsModel::BuildMasterModules(Rng* init_rng) {
  node_transform_.clear();
  int width = num_features_;
  for (int out : config_.node_transform_layers) {
    node_transform_.emplace_back(width, out, nn::Activation::kRelu, init_rng);
    width = out;
  }
  int generator_in = width;
  gat_.reset();
  gcn_.reset();
  if (config_.use_gat) {
    if (config_.gnn_kind == AmsConfig::GnnKind::kGat) {
      gat_ = std::make_unique<gnn::GatNetwork>(width, config_.gat, init_rng);
      generator_in = gat_->out_features();
    } else {
      gcn_ = std::make_unique<gnn::GcnNetwork>(
          width, config_.gcn_hidden, config_.gat.out_features, init_rng);
      generator_in = gcn_->out_features();
    }
  }
  generator_ = std::make_unique<nn::Mlp>(
      generator_in, config_.generator_hidden, num_features_ + 1,
      nn::Activation::kRelu, init_rng, config_.dropout);
}

AmsModel::MasterOutput AmsModel::MasterForward(const Tensor& x, bool training,
                                               Rng* dropout_rng) const {
  // Node transformation (Eq. 1): stacked ReLU forward layers with dropout.
  Tensor h = x;
  for (const nn::Dense& layer : node_transform_) {
    h = layer.Forward(h);
    if (config_.dropout > 0.0) {
      h = tensor::Dropout(h, config_.dropout, training, dropout_rng);
    }
  }
  // GNN over the company correlation graph (Eq. 2-3; GAT by default).
  if (config_.use_gat) {
    h = config_.gnn_kind == AmsConfig::GnnKind::kGat
            ? gat_->Forward(h, attention_mask_, training, dropout_rng)
            : gcn_->Forward(h, attention_mask_);
  }
  // Generation head M(.) (Eq. 6): per-company slave-LR coefficients.
  MasterOutput out;
  out.generated = generator_->Forward(h, training, dropout_rng);
  // Model assembly (Eq. 10): gamma M(g(X)) + (1 - gamma) beta_c.
  if (config_.gamma >= 1.0) {
    out.assembled = out.generated;
  } else {
    Tensor global_row = tensor::Transpose(beta_c_);  // 1 x (F+1)
    // gamma * generated + (1 - gamma) * beta_c as one fused node.
    out.assembled = tensor::ElementwiseChain()
                        .Scale(config_.gamma)
                        .AddScaled(global_row, 1.0 - config_.gamma)
                        .Apply(out.generated);
  }
  return out;
}

std::vector<Tensor> AmsModel::Parameters() const {
  std::vector<Tensor> params;
  for (const nn::Dense& layer : node_transform_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  if (config_.use_gat) {
    const auto gnn_params = config_.gnn_kind == AmsConfig::GnnKind::kGat
                                ? gat_->Parameters()
                                : gcn_->Parameters();
    for (const Tensor& p : gnn_params) params.push_back(p);
  }
  for (const Tensor& p : generator_->Parameters()) params.push_back(p);
  if (config_.learn_beta_c) params.push_back(beta_c_);
  return params;
}

Status AmsModel::Fit(const data::Dataset& train, const data::Dataset& valid,
                     const graph::CompanyGraph& graph) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (valid.num_features() != train.num_features()) {
    return Status::InvalidArgument("train/valid feature width mismatch");
  }
  if (!(config_.gamma >= 0.0 && config_.gamma <= 1.0)) {
    return Status::InvalidArgument("gamma must be in [0, 1]");
  }
  if (config_.lambda_slg < 0.0 || config_.lambda_l2 < 0.0) {
    return Status::InvalidArgument("negative regularization strength");
  }
  AMS_TRACE_SPAN("ams/train/fit");

  num_features_ = train.num_features();
  num_companies_ = graph.num_nodes();
  attention_mask_ = graph.AttentionMask();

  AMS_ASSIGN_OR_RETURN(std::vector<QuarterBatch> train_batches,
                       SplitQuarters(train));
  AMS_ASSIGN_OR_RETURN(std::vector<QuarterBatch> valid_batches,
                       SplitQuarters(valid));

  // --- Step 1 (§III-F): anchored LR B_acr on all training data (Eq. 5;
  //     optionally elastic-net-generalized, see AmsConfig). ---
  linear::LinearModel anchored;
  if (config_.anchored_l1_ratio <= 0.0) {
    AMS_ASSIGN_OR_RETURN(
        anchored, linear::LinearModel::FitRidge(train.x, train.TargetMatrix(),
                                                config_.anchored_alpha));
  } else {
    linear::LinearOptions anchor_options;
    anchor_options.alpha = config_.anchored_alpha;
    anchor_options.l1_ratio = config_.anchored_l1_ratio;
    AMS_ASSIGN_OR_RETURN(anchored,
                         linear::LinearModel::FitElasticNet(
                             train.x, train.TargetMatrix(), anchor_options));
  }
  b_acr_ = Matrix(num_features_ + 1, 1);
  for (int j = 0; j < num_features_; ++j) {
    b_acr_(j, 0) = anchored.coefficients()(j, 0);
  }
  b_acr_(num_features_, 0) = anchored.intercept();

  // --- Build the master model. ---
  Rng rng(config_.seed);
  Rng init_rng = rng.Fork();
  Rng dropout_rng = rng.Fork();

  BuildMasterModules(&init_rng);
  // Start the generation head at the anchor: zero output weights and a bias
  // equal to B_acr make M(g(X)) == B_acr at initialization, so training
  // begins at the anchored LR and explores the "near-optimal parameter
  // space" around it (paper §III-E1) instead of from random coefficients.
  {
    nn::Dense& out_layer = generator_->mutable_layers()->back();
    out_layer.SetWeights(
        Matrix::Zeros(out_layer.out_features(), out_layer.in_features()),
        b_acr_.Transposed());
  }
  // beta_c starts at the anchor; it stays fixed there unless the config
  // asks for a jointly-learned global LR.
  beta_c_ = config_.learn_beta_c ? Tensor::Parameter(b_acr_)
                                 : Tensor::Constant(b_acr_);

  // Per-quarter constant tensors.
  auto make_inputs = [](const data::Dataset& dataset,
                        const std::vector<QuarterBatch>& batches) {
    std::vector<std::tuple<Tensor, Tensor, Tensor>> inputs;  // x, xa, y
    for (const QuarterBatch& batch : batches) {
      Matrix x(static_cast<int>(batch.rows.size()), dataset.num_features());
      Matrix y(static_cast<int>(batch.rows.size()), 1);
      for (size_t i = 0; i < batch.rows.size(); ++i) {
        const int row = batch.rows[i];
        for (int c = 0; c < dataset.num_features(); ++c) {
          x(static_cast<int>(i), c) = dataset.x(row, c);
        }
        y(static_cast<int>(i), 0) = dataset.y[row];
      }
      inputs.emplace_back(Tensor::Constant(x),
                          Tensor::Constant(AugmentOnes(x)),
                          Tensor::Constant(y));
    }
    return inputs;
  };
  auto train_inputs = make_inputs(train, train_batches);
  auto valid_inputs = make_inputs(valid, valid_batches);

  const Tensor b_acr_row = Tensor::Constant(b_acr_.Transposed());
  const double n_train = train.num_samples();

  std::vector<Tensor> params = Parameters();
  optim::Adam optimizer(params, config_.learning_rate);
  robust::TrainGuard train_guard(config_.guard, &optimizer, &dropout_rng);

  // Per-epoch telemetry: the loss split mirrors Gamma_master's structure, so
  // the reported SLG share shows how strongly the master-slave regularizer
  // (Eq. 7-9 adaptive weighting) steers each epoch relative to the data term.
  struct LossParts {
    double data = 0.0;  // scaled data term
    double slg = 0.0;   // scaled supervised-LR-generation term
  };

  auto forward_loss = [&](bool training, LossParts* parts) {
    // Data term + supervised-LR-generation term of Gamma_master (Eq. 11).
    Tensor data_term = Tensor::Constant(Matrix::Zeros(1, 1));
    Tensor slg_term = Tensor::Constant(Matrix::Zeros(1, 1));
    for (auto& [x, xa, y] : train_inputs) {
      MasterOutput master = MasterForward(x, training, &dropout_rng);
      Tensor pred = tensor::RowDot(xa, master.assembled);
      Tensor err = tensor::Sub(pred, y);
      data_term = tensor::Add(data_term, tensor::SumSquares(err));
      if (config_.lambda_slg > 0.0) {
        // Supervised LR generation (Eq. 8): pull M(g(X_i)) toward B_acr.
        Tensor deviation = tensor::Sub(master.generated, b_acr_row);
        slg_term = tensor::Add(slg_term, tensor::SumSquares(deviation));
      }
    }
    const double scale = 1.0 / (2.0 * n_train);
    Tensor total = tensor::Scale(
        tensor::Add(data_term, tensor::Scale(slg_term, config_.lambda_slg)),
        scale);
    if (parts != nullptr) {
      parts->data = data_term.value()(0, 0) * scale;
      parts->slg = slg_term.value()(0, 0) * config_.lambda_slg * scale;
    }
    if (config_.lambda_l2 > 0.0) {
      Tensor l2 = Tensor::Constant(Matrix::Zeros(1, 1));
      for (const Tensor& p : params) {
        l2 = tensor::Add(l2, tensor::SumSquares(p));
      }
      total = tensor::Add(total, tensor::Scale(l2, 0.5 * config_.lambda_l2));
    }
    return total;
  };

  auto valid_loss = [&]() {
    double sse = 0.0;
    double count = 0.0;
    for (auto& [x, xa, y] : valid_inputs) {
      MasterOutput master = MasterForward(x, /*training=*/false, nullptr);
      Tensor pred = tensor::RowDot(xa, master.assembled);
      const Matrix& p = pred.value();
      const Matrix& target = y.value();
      for (int r = 0; r < p.rows(); ++r) {
        const double d = p(r, 0) - target(r, 0);
        sse += d * d;
      }
      count += p.rows();
    }
    return count > 0 ? sse / count : 0.0;
  };

  // The initial state (generation head == anchored LR) is a selection
  // candidate too: if no training epoch improves validation loss, Fit
  // returns the anchor rather than an arbitrary drifted state.
  double best = valid.num_samples() > 0
                    ? valid_loss()
                    : std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_params = SnapshotParams(params);
  int since_best = 0;
  epochs_run_ = 0;

  // --- Checkpoint/resume. A checkpoint captures parameters, optimizer
  //     moments, the dropout RNG and the early-stopping state after a
  //     committed epoch; restoring all of them makes the resumed trajectory
  //     bit-identical to an uninterrupted run. ---
  const std::string fingerprint = TrainFingerprint(
      config_, num_features_, num_companies_, train.num_samples());
  std::string ckpt_path = config_.checkpoint_path;
  if (ckpt_path.empty()) {
    const std::string dir = robust::CheckpointDirFromEnv();
    if (!dir.empty()) {
      ckpt_path = dir + "/ams_" + HashHex(fingerprint) + ".ckpt";
    }
  }
  int start_epoch = 0;
  if (!ckpt_path.empty() && std::filesystem::exists(ckpt_path)) {
    auto loaded = robust::LoadCheckpoint(ckpt_path);
    bool restored = false;
    if (loaded.ok()) {
      robust::Checkpoint& ckpt = loaded.ValueOrDie();
      auto rng_state = ckpt.GetRngState("rng/dropout");
      optim::OptimizerState opt_state;
      opt_state.learning_rate = ckpt.scalars["opt/lr"];
      opt_state.step_count = static_cast<int64_t>(ckpt.scalars["opt/t"]);
      bool complete = ckpt.strings["fingerprint"] == fingerprint &&
                      rng_state.ok();
      for (size_t i = 0; complete && i < params.size(); ++i) {
        complete = ckpt.tensors.count("param/" + std::to_string(i)) > 0 &&
                   ckpt.tensors.count("best/" + std::to_string(i)) > 0;
      }
      for (size_t i = 0; complete && i < 2 * params.size(); ++i) {
        auto it = ckpt.tensors.find("opt/" + std::to_string(i));
        if (it == ckpt.tensors.end()) {
          complete = false;
        } else {
          opt_state.slots.push_back(it->second);
        }
      }
      if (complete) {
        for (size_t i = 0; i < params.size(); ++i) {
          params[i].mutable_value() =
              ckpt.tensors["param/" + std::to_string(i)];
          best_params[i] = ckpt.tensors["best/" + std::to_string(i)];
        }
        complete = optimizer.RestoreState(opt_state).ok();
      }
      if (complete) {
        dropout_rng.LoadState(rng_state.ValueOrDie());
        best = ckpt.scalars["best"];
        since_best = static_cast<int>(ckpt.scalars["since_best"]);
        epochs_run_ = static_cast<int>(ckpt.scalars["epochs_run"]);
        start_epoch = static_cast<int>(ckpt.scalars["next_epoch"]);
        restored = true;
        AMS_LOG(Info) << "resuming AMS training from " << ckpt_path
                      << " at epoch " << start_epoch;
      }
    }
    if (!restored) {
      AMS_LOG(Warning) << "ignoring stale/corrupt AMS checkpoint "
                       << ckpt_path << (loaded.ok()
                                            ? " (fingerprint mismatch)"
                                            : ": " +
                                                  loaded.status().ToString());
    }
  }
  auto save_checkpoint = [&](int next_epoch) {
    robust::Checkpoint ckpt;
    ckpt.strings["fingerprint"] = fingerprint;
    ckpt.scalars["next_epoch"] = next_epoch;
    ckpt.scalars["since_best"] = since_best;
    ckpt.scalars["best"] = best;
    ckpt.scalars["epochs_run"] = epochs_run_;
    const optim::OptimizerState opt_state = optimizer.SaveState();
    ckpt.scalars["opt/lr"] = opt_state.learning_rate;
    ckpt.scalars["opt/t"] = static_cast<double>(opt_state.step_count);
    for (size_t i = 0; i < opt_state.slots.size(); ++i) {
      ckpt.tensors["opt/" + std::to_string(i)] = opt_state.slots[i];
    }
    for (size_t i = 0; i < params.size(); ++i) {
      ckpt.tensors["param/" + std::to_string(i)] = params[i].value();
      ckpt.tensors["best/" + std::to_string(i)] = best_params[i];
    }
    ckpt.PutRngState("rng/dropout", dropout_rng.SaveState());
    Status save_status = robust::SaveCheckpoint(ckpt_path, ckpt);
    if (!save_status.ok()) {
      AMS_LOG(Warning) << "could not save AMS checkpoint: " << save_status;
    }
  };

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& epoch_counter = registry.GetCounter("ams/train/epochs");
  obs::Gauge& loss_gauge = registry.GetGauge("ams/train/loss");
  obs::Gauge& valid_gauge = registry.GetGauge("ams/train/valid_mse");
  obs::Gauge& grad_norm_gauge = registry.GetGauge("ams/train/grad_norm");
  // Eq. 7-9: weight of the master-slave (supervised LR generation)
  // regularizer — both the configured lambda and its realized share of the
  // epoch loss, which adapts as the generated slave-LRs drift from B_acr.
  obs::Gauge& slg_lambda_gauge = registry.GetGauge("ams/train/reg/lambda_slg");
  obs::Gauge& slg_share_gauge = registry.GetGauge("ams/train/reg/slg_share");
  slg_lambda_gauge.Set(config_.lambda_slg);

  for (int epoch = start_epoch; epoch < config_.max_epochs;) {
    AMS_TRACE_SPAN("ams/train/epoch");
    train_guard.BeginEpoch(epoch);
    optimizer.ZeroGrad();
    LossParts parts;
    Tensor loss = forward_loss(/*training=*/true, &parts);
    const bool loss_finite = loss.value().AllFinite();
    if (loss_finite) tensor::Backward(loss);
    switch (train_guard.GuardStep(epoch, loss_finite)) {
      case robust::TrainGuard::Action::kAbort:
        return train_guard.AbortStatus();
      case robust::TrainGuard::Action::kRetryEpoch:
        continue;  // state rolled back; re-run this epoch
      case robust::TrainGuard::Action::kSkipStep:
        break;  // epoch still advances, its update is dropped
      case robust::TrainGuard::Action::kProceed:
        if (config_.grad_clip > 0.0) {
          grad_norm_gauge.Set(optimizer.ClipGradNorm(config_.grad_clip));
        }
        optimizer.Step();
        break;
    }
    ++epochs_run_;
    epoch_counter.Increment();
    loss_gauge.Set(loss.value()(0, 0));
    const double parts_total = parts.data + parts.slg;
    slg_share_gauge.Set(parts_total > 0.0 ? parts.slg / parts_total : 0.0);

    const double v = valid.num_samples() > 0 ? valid_loss() : 0.0;
    valid_gauge.Set(v);
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      AMS_LOG(Info) << "epoch " << epoch << " train_loss="
                    << loss.value()(0, 0) << " valid_mse=" << v;
    }
    bool stop = false;
    if (v < best - 1e-9) {
      best = v;
      best_params = SnapshotParams(params);
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      stop = true;
    }
    ++epoch;
    if (!ckpt_path.empty() && config_.checkpoint_every > 0 &&
        epoch % config_.checkpoint_every == 0) {
      save_checkpoint(epoch);
    }
    // The injected crash fires after the checkpoint write, simulating a
    // process kill between epochs; a follow-up Fit resumes from it.
    if (robust::FaultInjector::Get().ShouldCrashTraining(epoch - 1)) {
      return Status::Internal("injected training crash after epoch " +
                              std::to_string(epoch - 1));
    }
    if (stop) break;
  }
  RestoreParams(&params, best_params);
  if (!ckpt_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(ckpt_path, ec);
  }
  best_valid_loss_ = best;
  registry.GetGauge("ams/train/best_valid_mse").Set(best);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> AmsModel::Predict(
    const data::Dataset& dataset) const {
  AMS_ASSIGN_OR_RETURN(Matrix coeffs, SlaveCoefficients(dataset));
  std::vector<double> out(dataset.num_samples());
  for (int r = 0; r < dataset.num_samples(); ++r) {
    double acc = coeffs(r, num_features_);  // intercept
    for (int c = 0; c < num_features_; ++c) {
      acc += dataset.x(r, c) * coeffs(r, c);
    }
    out[r] = acc;
  }
  return out;
}

Result<Matrix> AmsModel::SlaveCoefficients(
    const data::Dataset& dataset) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (dataset.num_features() != num_features_) {
    return Status::InvalidArgument("feature width mismatch");
  }
  AMS_ASSIGN_OR_RETURN(std::vector<QuarterBatch> batches,
                       SplitQuarters(dataset));
  Matrix out(dataset.num_samples(), num_features_ + 1);
  for (const QuarterBatch& batch : batches) {
    Matrix x(static_cast<int>(batch.rows.size()), num_features_);
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      for (int c = 0; c < num_features_; ++c) {
        x(static_cast<int>(i), c) = dataset.x(batch.rows[i], c);
      }
    }
    MasterOutput master = MasterForward(Tensor::Constant(std::move(x)),
                                        /*training=*/false, nullptr);
    const Matrix& values = master.assembled.value();
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      for (int c = 0; c <= num_features_; ++c) {
        out(batch.rows[i], c) = values(static_cast<int>(i), c);
      }
    }
  }
  return out;
}

namespace {

Result<double> FindScalar(const robust::Checkpoint& state,
                          const std::string& key) {
  auto it = state.scalars.find(key);
  if (it == state.scalars.end()) {
    return Status::InvalidArgument("artifact missing scalar '" + key + "'");
  }
  if (!std::isfinite(it->second)) {
    return Status::InvalidArgument("non-finite scalar '" + key +
                                   "' in artifact");
  }
  return it->second;
}

Result<std::string> FindString(const robust::Checkpoint& state,
                               const std::string& key) {
  auto it = state.strings.find(key);
  if (it == state.strings.end()) {
    return Status::InvalidArgument("artifact missing string '" + key + "'");
  }
  return it->second;
}

Result<la::Matrix> FindTensor(const robust::Checkpoint& state,
                              const std::string& key, int rows, int cols) {
  auto it = state.tensors.find(key);
  if (it == state.tensors.end()) {
    return Status::InvalidArgument("artifact missing tensor '" + key + "'");
  }
  if (it->second.rows() != rows || it->second.cols() != cols) {
    std::ostringstream oss;
    oss << "artifact tensor '" << key << "' has shape " << it->second.rows()
        << "x" << it->second.cols() << ", expected " << rows << "x" << cols;
    return Status::InvalidArgument(oss.str());
  }
  return it->second;
}

}  // namespace

Result<std::string> AmsModel::ModelFingerprint() const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot fingerprint an unfitted model");
  }
  return HashHex(
      ModelConfigString(config_, num_features_, num_companies_));
}

Result<robust::Checkpoint> AmsModel::ExportState() const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot export an unfitted AMS model");
  }
  robust::Checkpoint state;
  state.strings["kind"] = "ams";
  state.strings["fingerprint"] =
      HashHex(ModelConfigString(config_, num_features_, num_companies_));
  state.strings["cfg/node_transform_layers"] =
      JoinWidths(config_.node_transform_layers);
  state.strings["cfg/generator_hidden"] = JoinWidths(config_.generator_hidden);
  state.strings["cfg/gcn_hidden"] = JoinWidths(config_.gcn_hidden);
  state.strings["cfg/gat_hidden_per_head"] =
      JoinWidths(config_.gat.hidden_per_head);
  state.strings["cfg/seed"] = std::to_string(config_.seed);
  state.scalars["cfg/gamma"] = config_.gamma;
  state.scalars["cfg/lambda_slg"] = config_.lambda_slg;
  state.scalars["cfg/lambda_l2"] = config_.lambda_l2;
  state.scalars["cfg/anchored_alpha"] = config_.anchored_alpha;
  state.scalars["cfg/anchored_l1_ratio"] = config_.anchored_l1_ratio;
  state.scalars["cfg/learn_beta_c"] = config_.learn_beta_c ? 1.0 : 0.0;
  state.scalars["cfg/dropout"] = config_.dropout;
  state.scalars["cfg/use_gat"] = config_.use_gat ? 1.0 : 0.0;
  state.scalars["cfg/gnn_kind"] = static_cast<double>(config_.gnn_kind);
  state.scalars["cfg/gat_num_heads"] = config_.gat.num_heads;
  state.scalars["cfg/gat_out_features"] = config_.gat.out_features;
  state.scalars["cfg/gat_hidden_activation"] =
      static_cast<double>(config_.gat.hidden_activation);
  state.scalars["cfg/gat_attention_dropout"] = config_.gat.attention_dropout;
  state.scalars["cfg/gat_leaky_alpha"] = config_.gat.leaky_relu_alpha;
  state.scalars["dim/num_features"] = num_features_;
  state.scalars["dim/num_companies"] = num_companies_;
  state.scalars["diag/epochs_run"] = epochs_run_;
  state.scalars["diag/best_valid_loss"] = best_valid_loss_;
  state.tensors["mask"] = attention_mask_;
  state.tensors["b_acr"] = b_acr_;
  const std::vector<Tensor> params = Parameters();
  state.scalars["num_params"] = static_cast<double>(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    state.tensors["param/" + std::to_string(i)] = params[i].value();
  }
  return state;
}

Result<AmsModel> AmsModel::FromState(const robust::Checkpoint& state) {
  AMS_ASSIGN_OR_RETURN(std::string kind, FindString(state, "kind"));
  if (kind != "ams") {
    return Status::InvalidArgument("artifact kind is '" + kind +
                                   "', expected 'ams'");
  }

  AmsConfig config;
  AMS_ASSIGN_OR_RETURN(std::string widths_csv,
                       FindString(state, "cfg/node_transform_layers"));
  AMS_ASSIGN_OR_RETURN(config.node_transform_layers,
                       ParseWidths(widths_csv, "node transform"));
  AMS_ASSIGN_OR_RETURN(widths_csv, FindString(state, "cfg/generator_hidden"));
  AMS_ASSIGN_OR_RETURN(config.generator_hidden,
                       ParseWidths(widths_csv, "generator hidden"));
  AMS_ASSIGN_OR_RETURN(widths_csv, FindString(state, "cfg/gcn_hidden"));
  AMS_ASSIGN_OR_RETURN(config.gcn_hidden,
                       ParseWidths(widths_csv, "GCN hidden"));
  AMS_ASSIGN_OR_RETURN(widths_csv,
                       FindString(state, "cfg/gat_hidden_per_head"));
  AMS_ASSIGN_OR_RETURN(config.gat.hidden_per_head,
                       ParseWidths(widths_csv, "GAT hidden"));
  AMS_ASSIGN_OR_RETURN(std::string seed_str, FindString(state, "cfg/seed"));
  if (seed_str.empty() || seed_str.size() > 20 ||
      seed_str.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed seed in artifact: '" +
                                   seed_str + "'");
  }
  config.seed = std::strtoull(seed_str.c_str(), nullptr, 10);

  AMS_ASSIGN_OR_RETURN(config.gamma, FindScalar(state, "cfg/gamma"));
  AMS_ASSIGN_OR_RETURN(config.lambda_slg,
                       FindScalar(state, "cfg/lambda_slg"));
  AMS_ASSIGN_OR_RETURN(config.lambda_l2, FindScalar(state, "cfg/lambda_l2"));
  AMS_ASSIGN_OR_RETURN(config.anchored_alpha,
                       FindScalar(state, "cfg/anchored_alpha"));
  AMS_ASSIGN_OR_RETURN(config.anchored_l1_ratio,
                       FindScalar(state, "cfg/anchored_l1_ratio"));
  AMS_ASSIGN_OR_RETURN(double flag, FindScalar(state, "cfg/learn_beta_c"));
  config.learn_beta_c = flag != 0.0;
  AMS_ASSIGN_OR_RETURN(config.dropout, FindScalar(state, "cfg/dropout"));
  AMS_ASSIGN_OR_RETURN(flag, FindScalar(state, "cfg/use_gat"));
  config.use_gat = flag != 0.0;
  AMS_ASSIGN_OR_RETURN(double raw, FindScalar(state, "cfg/gnn_kind"));
  AMS_ASSIGN_OR_RETURN(int gnn_kind, ScalarToInt(raw, "gnn_kind", 0, 1));
  config.gnn_kind = static_cast<AmsConfig::GnnKind>(gnn_kind);
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/gat_num_heads"));
  AMS_ASSIGN_OR_RETURN(config.gat.num_heads,
                       ScalarToInt(raw, "gat_num_heads", 1, 256));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/gat_out_features"));
  AMS_ASSIGN_OR_RETURN(config.gat.out_features,
                       ScalarToInt(raw, "gat_out_features", 1, 4096));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "cfg/gat_hidden_activation"));
  AMS_ASSIGN_OR_RETURN(int activation,
                       ScalarToInt(raw, "gat_hidden_activation", 0, 4));
  config.gat.hidden_activation = static_cast<nn::Activation>(activation);
  AMS_ASSIGN_OR_RETURN(config.gat.attention_dropout,
                       FindScalar(state, "cfg/gat_attention_dropout"));
  AMS_ASSIGN_OR_RETURN(config.gat.leaky_relu_alpha,
                       FindScalar(state, "cfg/gat_leaky_alpha"));

  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "dim/num_features"));
  AMS_ASSIGN_OR_RETURN(int num_features,
                       ScalarToInt(raw, "num_features", 1, 65536));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "dim/num_companies"));
  AMS_ASSIGN_OR_RETURN(int num_companies,
                       ScalarToInt(raw, "num_companies", 1, 65536));

  // The fingerprint must match what the parsed config hashes to; any skew
  // between the writer's and this reader's field encoding is rejected here
  // rather than producing a subtly different network.
  AMS_ASSIGN_OR_RETURN(std::string fingerprint,
                       FindString(state, "fingerprint"));
  const std::string expected =
      HashHex(ModelConfigString(config, num_features, num_companies));
  if (fingerprint != expected) {
    return Status::InvalidArgument(
        "artifact fingerprint mismatch: stored " + fingerprint +
        ", config hashes to " + expected);
  }

  AmsModel model(config);
  model.num_features_ = num_features;
  model.num_companies_ = num_companies;
  AMS_ASSIGN_OR_RETURN(
      model.attention_mask_,
      FindTensor(state, "mask", num_companies, num_companies));
  AMS_ASSIGN_OR_RETURN(model.b_acr_,
                       FindTensor(state, "b_acr", num_features + 1, 1));
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "diag/epochs_run"));
  AMS_ASSIGN_OR_RETURN(model.epochs_run_,
                       ScalarToInt(raw, "epochs_run", 0, 1 << 30));
  AMS_ASSIGN_OR_RETURN(model.best_valid_loss_,
                       FindScalar(state, "diag/best_valid_loss"));

  // Rebuild the architecture (initial values are irrelevant — every
  // parameter tensor is overwritten below), then load the fitted values.
  Rng init_rng(config.seed);
  model.BuildMasterModules(&init_rng);
  model.beta_c_ = config.learn_beta_c ? Tensor::Parameter(model.b_acr_)
                                      : Tensor::Constant(model.b_acr_);
  std::vector<Tensor> params = model.Parameters();
  AMS_ASSIGN_OR_RETURN(raw, FindScalar(state, "num_params"));
  AMS_ASSIGN_OR_RETURN(int num_params,
                       ScalarToInt(raw, "num_params", 0, 1 << 20));
  if (num_params != static_cast<int>(params.size())) {
    return Status::InvalidArgument(
        "artifact carries " + std::to_string(num_params) +
        " parameter tensors, architecture expects " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    AMS_ASSIGN_OR_RETURN(
        la::Matrix value,
        FindTensor(state, "param/" + std::to_string(i), params[i].rows(),
                   params[i].cols()));
    if (!value.AllFinite()) {
      return Status::InvalidArgument("non-finite parameter tensor param/" +
                                     std::to_string(i) + " in artifact");
    }
    params[i].mutable_value() = std::move(value);
  }
  model.fitted_ = true;
  return model;
}

}  // namespace ams::core
