// Feature assembly per the paper's problem definition (Def. II.3, §II-D):
//
//   X_i^t = { C_i^{t-k..t-1}, VE_i^t, A_i^t } plus one-hot quarter, month
//   and sector, with k = 4.
//
// Ratio normalization divides revenue-scale features by R_i^{t-k} and each
// alt channel by its own value at t-k ("normalized by dividing the value of
// the oldest features"). The regression target is the normalized unexpected
// revenue (R_t - E_t) / R_{t-k}; metadata keeps the absolute quantities so
// metrics and backtests can denormalize.
#ifndef AMS_DATA_FEATURES_H_
#define AMS_DATA_FEATURES_H_

#include <string>
#include <vector>

#include "data/panel.h"
#include "la/matrix.h"
#include "util/status.h"

namespace ams::data {

struct FeatureOptions {
  /// History depth k (the paper sets 4 to cover one year).
  int lag_k = 4;
  /// When false, all alternative-data columns are dropped — the "-na"
  /// variants of Table III.
  bool include_alt = true;
};

/// Absolute-scale bookkeeping for one sample (one company-quarter).
struct SampleMeta {
  int company = 0;        // index into the panel
  int quarter = 0;        // t (panel quarter index)
  double scale = 1.0;     // R_i^{t-k}, the normalization denominator
  double consensus = 0.0; // E_i^t (absolute)
  double actual_revenue = 0.0;  // R_i^t (absolute)
  double actual_ur = 0.0;       // R_i^t - E_i^t (absolute)
  double market_cap = 0.0;      // billions
};

/// A model-ready design matrix with aligned targets and metadata.
struct Dataset {
  la::Matrix x;                    // n x F
  std::vector<double> y;           // normalized UR targets
  std::vector<SampleMeta> meta;    // n entries
  std::vector<std::string> feature_names;
  /// True for one-hot indicator columns (excluded from standardization).
  std::vector<bool> is_onehot;
  int lag_k = 4;
  int num_alt_channels = 0;
  /// Width of one per-quarter lag block: 4 (R, E, LE, HE) + alt channels.
  int lag_block_width = 0;

  int num_samples() const { return x.rows(); }
  int num_features() const { return x.cols(); }

  /// y as an (n x 1) matrix.
  la::Matrix TargetMatrix() const;

  /// Sample row indices grouped by panel quarter index (ascending); used by
  /// AMS, whose GAT consumes whole quarters at a time.
  std::vector<std::pair<int, std::vector<int>>> RowsByQuarter() const;

  /// Time-major sequence view for the recurrent baselines: `lag_k` steps,
  /// each (n x lag_block_width), oldest quarter first. The remaining static
  /// columns (VE_t, A_t, one-hots) are returned via `static_features`.
  void SequenceView(std::vector<la::Matrix>* steps,
                    la::Matrix* static_features) const;
};

/// Builds samples for the given panel quarters. Every quarter index must be
/// >= lag_k (one full year of history).
class FeatureBuilder {
 public:
  FeatureBuilder(const Panel* panel, const FeatureOptions& options);

  /// Feature vector width.
  int num_features() const { return static_cast<int>(names_.size()); }
  const std::vector<std::string>& feature_names() const { return names_; }

  /// Assembles one dataset covering all companies at each listed quarter.
  Result<Dataset> Build(const std::vector<int>& quarters) const;

 private:
  const Panel* panel_;
  FeatureOptions options_;
  std::vector<std::string> names_;
  std::vector<bool> is_onehot_;
};

/// Z-score standardization fitted on training data only (paper §II-D: "we
/// normalize dataset with the mean and variance from the training set").
/// One-hot columns pass through untouched.
class Standardizer {
 public:
  /// Fits per-column mean/std on `train`. Constant columns get std = 1.
  static Standardizer Fit(const Dataset& train);

  /// Standardizes `dataset` in place (must have the same width).
  void Apply(Dataset* dataset) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<bool> is_onehot_;
};

}  // namespace ams::data

#endif  // AMS_DATA_FEATURES_H_
