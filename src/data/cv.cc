#include "data/cv.h"

#include <sstream>

namespace ams::data {

Result<std::vector<CvFold>> TimeSeriesCvFolds(int num_quarters,
                                              const CvOptions& options) {
  if (options.lag_k < 1 || options.initial_train_quarters < 1) {
    return Status::InvalidArgument("invalid CV options");
  }
  const int first_usable = options.lag_k;
  // Initial fold: train on the first window, validate on the next quarter,
  // test on the one after.
  const int first_test =
      first_usable + options.initial_train_quarters + 1;
  if (first_test >= num_quarters) {
    return Status::InvalidArgument(
        "panel too short for even one cross-validation fold");
  }
  std::vector<CvFold> folds;
  for (int test = first_test; test < num_quarters; ++test) {
    CvFold fold;
    fold.valid_quarter = test - 1;
    fold.test_quarter = test;
    for (int t = first_usable; t < fold.valid_quarter; ++t) {
      fold.train_quarters.push_back(t);
    }
    folds.push_back(std::move(fold));
  }
  return folds;
}

CvOptions DefaultCvOptions(DatasetProfile profile) {
  CvOptions options;
  options.lag_k = 4;
  switch (profile) {
    case DatasetProfile::kTransactionAmount:
      // Train 2015q3-2016q2, validate 2016q3, test 2016q4; then roll
      // through 2018q2 (7 test quarters).
      options.initial_train_quarters = 4;
      break;
    case DatasetProfile::kMapQuery:
      // Train 2017q2-2017q3, validate 2017q4, test 2018q1; then roll to
      // 2018q2 (2 test quarters).
      options.initial_train_quarters = 2;
      break;
  }
  return options;
}

std::string DescribeFolds(const Panel& panel,
                          const std::vector<CvFold>& folds) {
  std::ostringstream oss;
  oss << DatasetProfileName(panel.profile) << " dataset, "
      << panel.num_quarters << " quarters (" << panel.QuarterAt(0).ToString()
      << "-" << panel.QuarterAt(panel.num_quarters - 1).ToString() << ")\n";
  for (size_t f = 0; f < folds.size(); ++f) {
    const CvFold& fold = folds[f];
    oss << "fold " << f + 1 << ": train ["
        << panel.QuarterAt(fold.train_quarters.front()).ToString() << " - "
        << panel.QuarterAt(fold.train_quarters.back()).ToString()
        << "]  valid " << panel.QuarterAt(fold.valid_quarter).ToString()
        << "  test " << panel.QuarterAt(fold.test_quarter).ToString() << "\n";
  }
  return oss.str();
}

}  // namespace ams::data
