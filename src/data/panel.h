// The quarterly company panel: the in-memory form of the paper's two
// alternative datasets (revenues, analyst estimates, alternative-data
// channels per company per quarter).
#ifndef AMS_DATA_PANEL_H_
#define AMS_DATA_PANEL_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace ams::data {

/// Calendar quarter, e.g. {2016, 3} == "2016q3".
struct Quarter {
  int year = 2000;
  int q = 1;  // 1..4

  /// Quarter `offset` steps later (negative = earlier).
  Quarter Plus(int offset) const;
  /// Signed distance in quarters (this - other).
  int Minus(const Quarter& other) const;
  /// Fiscal-quarter-end month (March/June/September/December), 1-based.
  int EndMonth() const { return q * 3; }
  std::string ToString() const;

  bool operator==(const Quarter& other) const {
    return year == other.year && q == other.q;
  }
};

/// Which of the paper's two alternative datasets a panel models.
enum class DatasetProfile {
  /// China UnionPay online transaction amounts: 71 companies, 16 quarters
  /// (2014q3-2018q2), one alt channel with strong revenue coupling.
  kTransactionAmount,
  /// Baidu Maps query counts: 62 companies, 9 quarters (2016q2-2018q2),
  /// two alt channels (store, parking lot), weaker and noisier coupling.
  kMapQuery,
};

const char* DatasetProfileName(DatasetProfile profile);

/// One company-quarter observation.
struct CompanyQuarter {
  double revenue = 0.0;        // R_i^t, officially reported (millions CNY)
  double consensus = 0.0;      // E_i^t, mean analyst estimate
  double low_estimate = 0.0;   // LE_i^t
  double high_estimate = 0.0;  // HE_i^t
  /// Aggregated alternative-data channels A_i^t (1 for transaction amount,
  /// 2 for map query: store, parking lot).
  std::vector<double> alt;

  /// Actual unexpected revenue R - E.
  double UnexpectedRevenue() const { return revenue - consensus; }
};

struct Company {
  std::string name;
  int sector = 0;
  double market_cap = 0.0;  // billions, drives backtest allocation buckets
  /// One entry per panel quarter, index-aligned with Panel::QuarterAt.
  std::vector<CompanyQuarter> quarters;
};

/// A complete dataset: all companies over a shared quarter range.
struct Panel {
  DatasetProfile profile = DatasetProfile::kTransactionAmount;
  Quarter start;
  int num_quarters = 0;
  int num_sectors = 0;
  int num_alt_channels = 0;
  std::vector<Company> companies;

  int num_companies() const { return static_cast<int>(companies.size()); }
  Quarter QuarterAt(int index) const { return start.Plus(index); }

  /// Per-company revenue histories over quarters [0, up_to_quarter], used
  /// to build the correlation graph from training data only.
  std::vector<std::vector<double>> RevenueHistories(int up_to_quarter) const;

  /// Structural sanity checks (aligned lengths, positive revenues, alt
  /// channel counts).
  Status Validate() const;
};

}  // namespace ams::data

#endif  // AMS_DATA_PANEL_H_
