#include "data/features.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ams::data {

using la::Matrix;

Matrix Dataset::TargetMatrix() const {
  return Matrix::ColumnVector(y);
}

std::vector<std::pair<int, std::vector<int>>> Dataset::RowsByQuarter() const {
  std::map<int, std::vector<int>> by_quarter;
  for (int r = 0; r < num_samples(); ++r) {
    by_quarter[meta[r].quarter].push_back(r);
  }
  return {by_quarter.begin(), by_quarter.end()};
}

void Dataset::SequenceView(std::vector<Matrix>* steps,
                           Matrix* static_features) const {
  AMS_DCHECK(steps != nullptr && static_features != nullptr,
             "null output arguments");
  steps->clear();
  const int n = num_samples();
  // Lag blocks occupy the first lag_k * lag_block_width columns, oldest
  // lag (t-k) first — see FeatureBuilder for the layout.
  for (int j = 0; j < lag_k; ++j) {
    steps->push_back(
        x.SliceCols(j * lag_block_width, (j + 1) * lag_block_width));
  }
  *static_features = x.SliceCols(lag_k * lag_block_width, x.cols());
  AMS_DCHECK(static_features->rows() == n, "sequence view row mismatch");
}

FeatureBuilder::FeatureBuilder(const Panel* panel,
                               const FeatureOptions& options)
    : panel_(panel), options_(options) {
  AMS_DCHECK(panel != nullptr, "null panel");
  AMS_DCHECK(options.lag_k >= 1, "lag_k must be >= 1");
  const int num_alt = options_.include_alt ? panel_->num_alt_channels : 0;
  // Lag blocks, oldest first: t-k, t-k+1, ..., t-1.
  for (int j = options_.lag_k; j >= 1; --j) {
    const std::string suffix = "_dq" + std::to_string(j);
    names_.push_back("revenue" + suffix);
    names_.push_back("consensus" + suffix);
    names_.push_back("low_est" + suffix);
    names_.push_back("high_est" + suffix);
    for (int c = 0; c < num_alt; ++c) {
      names_.push_back("alt" + std::to_string(c) + suffix);
    }
  }
  // Current-quarter estimation features VE_t.
  names_.push_back("consensus_t");
  names_.push_back("low_est_t");
  names_.push_back("high_est_t");
  // Current-quarter alternative features A_t.
  for (int c = 0; c < num_alt; ++c) {
    names_.push_back("alt" + std::to_string(c) + "_t");
  }
  is_onehot_.assign(names_.size(), false);
  // One-hot calendar quarter, fiscal-end month, and sector.
  for (int q = 1; q <= 4; ++q) {
    names_.push_back("quarter_q" + std::to_string(q));
    is_onehot_.push_back(true);
  }
  for (int m = 1; m <= 12; ++m) {
    names_.push_back("month_" + std::to_string(m));
    is_onehot_.push_back(true);
  }
  for (int s = 0; s < panel_->num_sectors; ++s) {
    names_.push_back("sector_" + std::to_string(s));
    is_onehot_.push_back(true);
  }
}

Result<Dataset> FeatureBuilder::Build(const std::vector<int>& quarters) const {
  const int k = options_.lag_k;
  const int num_alt = options_.include_alt ? panel_->num_alt_channels : 0;
  for (int t : quarters) {
    if (t < k || t >= panel_->num_quarters) {
      return Status::InvalidArgument(
          "quarter index " + std::to_string(t) +
          " lacks a full year of history or is out of range");
    }
  }

  Dataset dataset;
  dataset.lag_k = k;
  dataset.num_alt_channels = num_alt;
  dataset.lag_block_width = 4 + num_alt;
  dataset.feature_names = names_;
  dataset.is_onehot = is_onehot_;

  const int n = static_cast<int>(quarters.size()) * panel_->num_companies();
  dataset.x = Matrix(n, num_features());
  dataset.y.reserve(n);
  dataset.meta.reserve(n);

  int row = 0;
  for (int t : quarters) {
    const Quarter quarter = panel_->QuarterAt(t);
    for (int i = 0; i < panel_->num_companies(); ++i) {
      const Company& company = panel_->companies[i];
      const CompanyQuarter& now = company.quarters[t];
      const CompanyQuarter& oldest = company.quarters[t - k];
      const double scale = oldest.revenue;
      AMS_DCHECK(scale > 0.0, "non-positive normalization scale");

      int col = 0;
      for (int j = k; j >= 1; --j) {
        const CompanyQuarter& lag = company.quarters[t - j];
        dataset.x(row, col++) = lag.revenue / scale;
        dataset.x(row, col++) = lag.consensus / scale;
        dataset.x(row, col++) = lag.low_estimate / scale;
        dataset.x(row, col++) = lag.high_estimate / scale;
        for (int c = 0; c < num_alt; ++c) {
          dataset.x(row, col++) = lag.alt[c] / oldest.alt[c];
        }
      }
      dataset.x(row, col++) = now.consensus / scale;
      dataset.x(row, col++) = now.low_estimate / scale;
      dataset.x(row, col++) = now.high_estimate / scale;
      for (int c = 0; c < num_alt; ++c) {
        dataset.x(row, col++) = now.alt[c] / oldest.alt[c];
      }
      dataset.x(row, col + quarter.q - 1) = 1.0;
      col += 4;
      dataset.x(row, col + quarter.EndMonth() - 1) = 1.0;
      col += 12;
      dataset.x(row, col + company.sector) = 1.0;
      col += panel_->num_sectors;
      AMS_DCHECK(col == num_features(), "feature layout mismatch");

      SampleMeta meta;
      meta.company = i;
      meta.quarter = t;
      meta.scale = scale;
      meta.consensus = now.consensus;
      meta.actual_revenue = now.revenue;
      meta.actual_ur = now.UnexpectedRevenue();
      meta.market_cap = company.market_cap;
      dataset.meta.push_back(meta);
      dataset.y.push_back(meta.actual_ur / scale);
      ++row;
    }
  }
  return dataset;
}

Standardizer Standardizer::Fit(const Dataset& train) {
  Standardizer s;
  const int p = train.num_features();
  const int n = train.num_samples();
  AMS_DCHECK(n > 0, "cannot fit standardizer on empty data");
  s.means_.assign(p, 0.0);
  s.stds_.assign(p, 1.0);
  s.is_onehot_ = train.is_onehot;
  for (int c = 0; c < p; ++c) {
    if (s.is_onehot_[c]) continue;
    double mean = 0.0;
    for (int r = 0; r < n; ++r) mean += train.x(r, c);
    mean /= n;
    double var = 0.0;
    for (int r = 0; r < n; ++r) {
      const double d = train.x(r, c) - mean;
      var += d * d;
    }
    var /= n;
    s.means_[c] = mean;
    s.stds_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  return s;
}

void Standardizer::Apply(Dataset* dataset) const {
  AMS_DCHECK(dataset != nullptr, "null dataset");
  AMS_DCHECK(dataset->num_features() == static_cast<int>(means_.size()),
             "standardizer width mismatch");
  for (int c = 0; c < dataset->num_features(); ++c) {
    if (is_onehot_[c]) continue;
    for (int r = 0; r < dataset->num_samples(); ++r) {
      dataset->x(r, c) = (dataset->x(r, c) - means_[c]) / stds_[c];
    }
  }
}

}  // namespace ams::data
