#include "data/panel_io.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "robust/atomic_io.h"
#include "util/string_util.h"

namespace ams::data {

namespace {

constexpr int kFixedColumns = 9;  // columns before the alt channels

std::vector<std::string> HeaderFor(int num_alt_channels) {
  std::vector<std::string> header = {
      "company", "sector",    "market_cap",   "year",         "quarter",
      "revenue", "consensus", "low_estimate", "high_estimate"};
  for (int c = 0; c < num_alt_channels; ++c) {
    header.push_back("alt" + std::to_string(c));
  }
  return header;
}

Result<double> ParseDouble(const std::string& field,
                           const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse " + what + ": '" + field +
                                   "'");
  }
  return value;
}

Result<int> ParseInt(const std::string& field, const std::string& what) {
  AMS_ASSIGN_OR_RETURN(double value, ParseDouble(field, what));
  return static_cast<int>(value);
}

}  // namespace

CsvTable PanelToCsv(const Panel& panel) {
  CsvTable table;
  table.header = HeaderFor(panel.num_alt_channels);
  for (const Company& company : panel.companies) {
    for (int t = 0; t < panel.num_quarters; ++t) {
      const Quarter quarter = panel.QuarterAt(t);
      const CompanyQuarter& cq = company.quarters[t];
      std::vector<std::string> row = {
          company.name,
          std::to_string(company.sector),
          FormatDouble(company.market_cap, 6),
          std::to_string(quarter.year),
          std::to_string(quarter.q),
          FormatDouble(cq.revenue, 6),
          FormatDouble(cq.consensus, 6),
          FormatDouble(cq.low_estimate, 6),
          FormatDouble(cq.high_estimate, 6)};
      for (double a : cq.alt) row.push_back(FormatDouble(a, 6));
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

Status WritePanelCsv(const std::string& path, const Panel& panel) {
  // Atomic tmp+rename with a CRC32 footer: a crash mid-write leaves the
  // previous file (or nothing), never a torn panel.
  return robust::WriteCsvAtomic(path, PanelToCsv(panel));
}

Result<Panel> PanelFromCsv(const CsvTable& table, DatasetProfile profile) {
  if (table.header.size() < static_cast<size_t>(kFixedColumns) + 1) {
    return Status::InvalidArgument(
        "panel CSV needs at least one alt channel column");
  }
  for (int c = 0; c < kFixedColumns; ++c) {
    if (table.header[c] != HeaderFor(1)[c]) {
      return Status::InvalidArgument("unexpected column '" +
                                     table.header[c] + "' at position " +
                                     std::to_string(c));
    }
  }
  const int num_alt = static_cast<int>(table.header.size()) - kFixedColumns;

  struct ParsedRow {
    Quarter quarter;
    CompanyQuarter data;
  };
  // Preserve first-appearance order of companies.
  std::vector<std::string> company_order;
  std::map<std::string, int> sectors;
  std::map<std::string, double> caps;
  std::map<std::string, std::vector<ParsedRow>> rows_by_company;

  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::InvalidArgument("ragged panel CSV row");
    }
    const std::string& name = row[0];
    if (rows_by_company.find(name) == rows_by_company.end()) {
      company_order.push_back(name);
      AMS_ASSIGN_OR_RETURN(sectors[name], ParseInt(row[1], "sector"));
      AMS_ASSIGN_OR_RETURN(caps[name], ParseDouble(row[2], "market_cap"));
    }
    ParsedRow parsed;
    AMS_ASSIGN_OR_RETURN(parsed.quarter.year, ParseInt(row[3], "year"));
    AMS_ASSIGN_OR_RETURN(parsed.quarter.q, ParseInt(row[4], "quarter"));
    if (parsed.quarter.q < 1 || parsed.quarter.q > 4) {
      return Status::InvalidArgument("quarter must be 1..4");
    }
    AMS_ASSIGN_OR_RETURN(parsed.data.revenue,
                         ParseDouble(row[5], "revenue"));
    AMS_ASSIGN_OR_RETURN(parsed.data.consensus,
                         ParseDouble(row[6], "consensus"));
    AMS_ASSIGN_OR_RETURN(parsed.data.low_estimate,
                         ParseDouble(row[7], "low_estimate"));
    AMS_ASSIGN_OR_RETURN(parsed.data.high_estimate,
                         ParseDouble(row[8], "high_estimate"));
    parsed.data.alt.resize(num_alt);
    for (int c = 0; c < num_alt; ++c) {
      AMS_ASSIGN_OR_RETURN(parsed.data.alt[c],
                           ParseDouble(row[kFixedColumns + c], "alt"));
    }
    rows_by_company[name].push_back(std::move(parsed));
  }
  if (company_order.empty()) {
    return Status::InvalidArgument("panel CSV has no data rows");
  }

  // Establish the common quarter range from the first company.
  auto& first_rows = rows_by_company[company_order[0]];
  std::sort(first_rows.begin(), first_rows.end(),
            [](const ParsedRow& a, const ParsedRow& b) {
              return a.quarter.Minus(b.quarter) < 0;
            });
  const Quarter start = first_rows.front().quarter;
  const int num_quarters = static_cast<int>(first_rows.size());

  Panel panel;
  panel.profile = profile;
  panel.start = start;
  panel.num_quarters = num_quarters;
  panel.num_alt_channels = num_alt;

  int max_sector = 0;
  for (const std::string& name : company_order) {
    auto& rows = rows_by_company[name];
    if (static_cast<int>(rows.size()) != num_quarters) {
      return Status::InvalidArgument("company " + name +
                                     " has a different quarter count");
    }
    std::sort(rows.begin(), rows.end(),
              [](const ParsedRow& a, const ParsedRow& b) {
                return a.quarter.Minus(b.quarter) < 0;
              });
    Company company;
    company.name = name;
    company.sector = sectors[name];
    company.market_cap = caps[name];
    for (int t = 0; t < num_quarters; ++t) {
      if (!(rows[t].quarter == start.Plus(t))) {
        return Status::InvalidArgument("company " + name +
                                       " has non-contiguous quarters");
      }
      company.quarters.push_back(rows[t].data);
    }
    max_sector = std::max(max_sector, company.sector);
    panel.companies.push_back(std::move(company));
  }
  panel.num_sectors = max_sector + 1;
  AMS_RETURN_NOT_OK(panel.Validate());
  return panel;
}

Result<Panel> ReadPanelCsv(const std::string& path, DatasetProfile profile) {
  // Lenient: verifies the CRC footer when present, but still accepts
  // hand-written panels without one.
  AMS_ASSIGN_OR_RETURN(CsvTable table, robust::ReadCsvLenient(path));
  return PanelFromCsv(table, profile);
}

}  // namespace ams::data
