#include "data/panel.h"

#include <cmath>

namespace ams::data {

Quarter Quarter::Plus(int offset) const {
  int index = year * 4 + (q - 1) + offset;
  Quarter out;
  out.year = index / 4;
  out.q = index % 4 + 1;
  return out;
}

int Quarter::Minus(const Quarter& other) const {
  return (year * 4 + q) - (other.year * 4 + other.q);
}

std::string Quarter::ToString() const {
  return std::to_string(year) + "q" + std::to_string(q);
}

const char* DatasetProfileName(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kTransactionAmount:
      return "transaction amount";
    case DatasetProfile::kMapQuery:
      return "map query";
  }
  return "unknown";
}

std::vector<std::vector<double>> Panel::RevenueHistories(
    int up_to_quarter) const {
  AMS_DCHECK(up_to_quarter >= 0 && up_to_quarter < num_quarters,
             "quarter index out of range");
  std::vector<std::vector<double>> histories;
  histories.reserve(companies.size());
  for (const Company& company : companies) {
    std::vector<double> history(up_to_quarter + 1);
    for (int t = 0; t <= up_to_quarter; ++t) {
      history[t] = company.quarters[t].revenue;
    }
    histories.push_back(std::move(history));
  }
  return histories;
}

Status Panel::Validate() const {
  if (companies.empty()) return Status::InvalidArgument("panel is empty");
  if (num_quarters < 1) return Status::InvalidArgument("no quarters");
  for (const Company& company : companies) {
    if (static_cast<int>(company.quarters.size()) != num_quarters) {
      return Status::InvalidArgument("company " + company.name +
                                     " has misaligned quarter count");
    }
    if (company.sector < 0 || company.sector >= num_sectors) {
      return Status::InvalidArgument("company " + company.name +
                                     " has out-of-range sector");
    }
    if (company.market_cap <= 0.0) {
      return Status::InvalidArgument("company " + company.name +
                                     " has non-positive market cap");
    }
    for (const CompanyQuarter& cq : company.quarters) {
      if (!(cq.revenue > 0.0) || !std::isfinite(cq.revenue)) {
        return Status::InvalidArgument("non-positive revenue in " +
                                       company.name);
      }
      if (!(cq.consensus > 0.0) || !std::isfinite(cq.consensus)) {
        return Status::InvalidArgument("non-positive consensus in " +
                                       company.name);
      }
      if (cq.low_estimate > cq.consensus || cq.consensus > cq.high_estimate) {
        return Status::InvalidArgument("estimate ordering violated in " +
                                       company.name);
      }
      if (static_cast<int>(cq.alt.size()) != num_alt_channels) {
        return Status::InvalidArgument("alt channel count mismatch in " +
                                       company.name);
      }
      for (double a : cq.alt) {
        if (!(a > 0.0) || !std::isfinite(a)) {
          return Status::InvalidArgument("non-positive alt signal in " +
                                         company.name);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace ams::data
