// Synthetic market generator: the documented substitute for the paper's two
// proprietary alternative datasets (DESIGN.md §1).
//
// The generative story mirrors the information structure the paper relies on:
//   revenue_t  = base * growth^t * season(sector, q) * exp(u_vis + u_hid + e_r)
//   consensus  = base * growth^t * season * exp(u_vis) * (1 + bias) * exp(e_a)
//   alt_c,t    = scale_c * growth^t * season * exp(kappa_c * (u_vis + u_hid)
//                                                  + eta_c)
// where u_vis / u_hid are AR(1) demand-shock components. Analysts observe
// only u_vis; the alternative signal is coupled (kappa_c) to the *total*
// shock, so it carries exactly the information edge the paper attributes to
// alternative data. Sector-shared innovations give companies in a sector
// correlated revenues, which the company correlation graph can exploit.
#ifndef AMS_DATA_GENERATOR_H_
#define AMS_DATA_GENERATOR_H_

#include <cstdint>

#include "data/panel.h"
#include "util/status.h"

namespace ams::data {

struct GeneratorConfig {
  DatasetProfile profile = DatasetProfile::kTransactionAmount;
  int num_companies = 71;
  int num_quarters = 16;
  Quarter start{2014, 3};
  int num_sectors = 8;
  uint64_t seed = 42;

  // --- Demand-shock process. ---
  /// AR(1) persistence of both shock components.
  double shock_persistence = 0.5;
  /// Std dev of the analyst-visible innovation.
  double visible_vol = 0.05;
  /// Std dev of the hidden innovation (what alt data can reveal).
  double hidden_vol = 0.06;
  /// Fraction of each innovation shared across a sector (graph structure:
  /// neighbours' alternative signals help denoise the shared component).
  double sector_share = 0.6;

  // --- Reporting / analysts. ---
  /// Std dev of the reporting noise (unpredictable by anyone).
  double reporting_noise = 0.012;
  /// Std dev of the consensus noise. Deliberately the largest noise term:
  /// it sits in the SR denominator |R - E| but not in a model's error, which
  /// is what lets a good model reach SR < 1 (beat the consensus) at all.
  double analyst_noise = 0.018;
  /// Std dev of the persistent per-company analyst bias — predictable
  /// structure a model can learn from the lagged (R, E) features.
  double analyst_bias_vol = 0.015;

  // --- Alternative-data channels (size = panel's num_alt_channels). ---
  /// Coupling of each channel to the total demand shock.
  std::vector<double> alt_coupling = {0.9};
  /// Measurement-noise std dev of each channel.
  std::vector<double> alt_noise = {0.03};
  /// Log-normal spread of the per-company coupling multiplier: companies
  /// differ in how strongly their alt signal tracks revenue, which is what
  /// per-company slave-LR weights (Fig. 8) adapt to.
  double coupling_heterogeneity = 0.15;
  /// Uniform range of the per-sector coupling multiplier. Sector membership
  /// is an observable one-hot feature, so the *slope* of the alt signal
  /// differs across sectors in a way a per-company generated LR can express
  /// but a single global linear model cannot (it can only shift intercepts).
  double sector_coupling_min = 0.3;
  double sector_coupling_max = 1.7;
  /// Random-walk volatility of the (log) alt-panel coverage: card panels
  /// grow, apps gain/lose users — drift unrelated to revenue. Naive ratio
  /// models (QoQ/YoY) integrate this drift over their full lag, while
  /// learned models can difference it away with adjacent lags.
  double alt_coverage_wander = 0.065;
  /// Per-company deterministic per-quarter drift in log alt coverage.
  double alt_coverage_drift_vol = 0.01;

  // --- Company scale. ---
  /// ln(base quarterly revenue, millions): mean and std dev.
  double log_base_mean = 6.0;   // exp(6) ~ 400M per quarter
  double log_base_vol = 1.1;
  /// Per-quarter growth rate: mean and std dev.
  double growth_mean = 0.015;
  double growth_vol = 0.02;
  /// Seasonal amplitude (peak-vs-trough multiplier spread).
  double seasonal_amplitude = 0.22;

  /// Paper-calibrated defaults for each dataset profile (company and quarter
  /// counts, start quarter, channel couplings).
  static GeneratorConfig Defaults(DatasetProfile profile, uint64_t seed = 42);
};

/// Generates a complete panel; deterministic for a given config.
Result<Panel> GenerateMarket(const GeneratorConfig& config);

}  // namespace ams::data

#endif  // AMS_DATA_GENERATOR_H_
