#include "data/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/rng.h"

namespace ams::data {

GeneratorConfig GeneratorConfig::Defaults(DatasetProfile profile,
                                          uint64_t seed) {
  GeneratorConfig config;
  config.profile = profile;
  config.seed = seed;
  switch (profile) {
    case DatasetProfile::kTransactionAmount:
      // 71 companies, 16 quarters of 2014q3-2018q2 (paper §II-D); one
      // strongly-coupled, low-noise channel.
      config.num_companies = 71;
      config.num_quarters = 16;
      config.start = Quarter{2014, 3};
      config.alt_coupling = {0.9};
      config.alt_noise = {0.03};
      break;
    case DatasetProfile::kMapQuery:
      // 62 companies, 9 quarters of 2016q2-2018q2; two weaker, noisier
      // channels (map query to store, to parking lot).
      config.num_companies = 62;
      config.num_quarters = 9;
      config.start = Quarter{2016, 2};
      config.alt_coupling = {0.65, 0.55};
      config.alt_noise = {0.08, 0.12};
      break;
  }
  return config;
}

namespace {

Status ValidateConfig(const GeneratorConfig& config) {
  if (config.num_companies < 2) {
    return Status::InvalidArgument("need >= 2 companies");
  }
  if (config.num_quarters < 2) {
    return Status::InvalidArgument("need >= 2 quarters");
  }
  if (config.num_sectors < 1 || config.num_sectors > config.num_companies) {
    return Status::InvalidArgument("bad sector count");
  }
  if (config.alt_coupling.empty() ||
      config.alt_coupling.size() != config.alt_noise.size()) {
    return Status::InvalidArgument("alt channel configuration mismatch");
  }
  if (config.shock_persistence < 0.0 || config.shock_persistence >= 1.0) {
    return Status::InvalidArgument("shock_persistence must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<Panel> GenerateMarket(const GeneratorConfig& config) {
  AMS_RETURN_NOT_OK(ValidateConfig(config));

  Rng root(config.seed);
  Rng sector_rng = root.Fork();
  Rng company_rng = root.Fork();
  Rng shock_rng = root.Fork();

  const int num_channels = static_cast<int>(config.alt_coupling.size());
  const int t_count = config.num_quarters;

  Panel panel;
  panel.profile = config.profile;
  panel.start = config.start;
  panel.num_quarters = t_count;
  panel.num_sectors = config.num_sectors;
  panel.num_alt_channels = num_channels;

  // Sector seasonal profiles: a smooth per-quarter multiplier with a random
  // peak quarter, normalized to mean 1.
  std::vector<std::array<double, 4>> season(config.num_sectors);
  for (auto& profile : season) {
    const int peak = static_cast<int>(sector_rng.UniformInt(4));
    double total = 0.0;
    for (int q = 0; q < 4; ++q) {
      const int dist = std::min((q - peak + 4) % 4, (peak - q + 4) % 4);
      profile[q] = 1.0 + config.seasonal_amplitude * (1.0 - dist * 0.6) +
                   sector_rng.Normal(0.0, 0.02);
      total += profile[q];
    }
    for (int q = 0; q < 4; ++q) profile[q] *= 4.0 / total;
  }

  // Per-sector coupling multipliers (observable heterogeneity: sector
  // one-hots are features, so adaptive models can learn sector-specific
  // alt-signal slopes).
  std::vector<double> sector_coupling(config.num_sectors);
  for (double& multiplier : sector_coupling) {
    multiplier = sector_rng.Uniform(config.sector_coupling_min,
                                    config.sector_coupling_max);
  }

  // Sector-shared shock innovations, one visible + one hidden per sector per
  // quarter. These create the cross-company correlation structure.
  std::vector<std::vector<double>> sector_vis(config.num_sectors),
      sector_hid(config.num_sectors);
  for (int s = 0; s < config.num_sectors; ++s) {
    sector_vis[s].resize(t_count);
    sector_hid[s].resize(t_count);
    for (int t = 0; t < t_count; ++t) {
      sector_vis[s][t] = shock_rng.Normal();
      sector_hid[s][t] = shock_rng.Normal();
    }
  }

  const double shared = std::sqrt(config.sector_share);
  const double idio = std::sqrt(1.0 - config.sector_share);

  panel.companies.reserve(config.num_companies);
  for (int i = 0; i < config.num_companies; ++i) {
    Company company;
    company.name = "C" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    company.sector = i % config.num_sectors;
    Rng rng = company_rng.Fork();

    const double base =
        std::exp(rng.Normal(config.log_base_mean, config.log_base_vol));
    const double growth = rng.Normal(config.growth_mean, config.growth_vol);
    const double analyst_bias = rng.Normal(0.0, config.analyst_bias_vol);
    // Market cap (billions): annualized revenue times a random multiple.
    company.market_cap =
        4.0 * base * rng.Uniform(1.5, 6.0) / 1000.0;

    std::vector<double> alt_scale(num_channels);
    std::vector<double> coupling(num_channels);
    std::vector<double> coverage_drift(num_channels);
    std::vector<double> coverage(num_channels, 0.0);  // log coverage walk
    for (int c = 0; c < num_channels; ++c) {
      alt_scale[c] = std::exp(rng.Normal(4.0, 0.8));
      coupling[c] = config.alt_coupling[c] * sector_coupling[company.sector] *
                    std::exp(rng.Normal(0.0, config.coupling_heterogeneity));
      coverage_drift[c] = rng.Normal(0.0, config.alt_coverage_drift_vol);
    }

    company.quarters.resize(t_count);
    double u_vis = 0.0;
    double u_hid = 0.0;
    for (int t = 0; t < t_count; ++t) {
      const Quarter quarter = panel.QuarterAt(t);
      const int q_index = quarter.q - 1;
      const double vis_innov =
          config.visible_vol * (shared * sector_vis[company.sector][t] +
                                idio * rng.Normal());
      const double hid_innov =
          config.hidden_vol * (shared * sector_hid[company.sector][t] +
                               idio * rng.Normal());
      u_vis = config.shock_persistence * u_vis + vis_innov;
      u_hid = config.shock_persistence * u_hid + hid_innov;

      const double trend = base * std::pow(1.0 + growth, t) *
                           season[company.sector][q_index];

      CompanyQuarter& cq = company.quarters[t];
      cq.revenue = trend * std::exp(u_vis + u_hid +
                                    rng.Normal(0.0, config.reporting_noise));
      cq.consensus = trend * std::exp(u_vis) * (1.0 + analyst_bias) *
                     std::exp(rng.Normal(0.0, config.analyst_noise));
      const double spread =
          std::max(0.01, rng.Normal(0.04, 0.015));
      cq.low_estimate = cq.consensus * (1.0 - spread * rng.Uniform(0.5, 1.0));
      cq.high_estimate = cq.consensus * (1.0 + spread * rng.Uniform(0.5, 1.0));

      cq.alt.resize(num_channels);
      for (int c = 0; c < num_channels; ++c) {
        coverage[c] += coverage_drift[c] +
                       rng.Normal(0.0, config.alt_coverage_wander);
        cq.alt[c] = alt_scale[c] * std::pow(1.0 + growth, t) *
                    season[company.sector][q_index] *
                    std::exp(coupling[c] * (u_vis + u_hid) + coverage[c] +
                             rng.Normal(0.0, config.alt_noise[c]));
      }
    }
    panel.companies.push_back(std::move(company));
  }

  AMS_RETURN_NOT_OK(panel.Validate());
  return panel;
}

}  // namespace ams::data
