// Panel serialization: export a panel to CSV and import one back.
//
// The CSV schema is the natural interchange format for users who have real
// alternative data: one row per company-quarter with the columns
//   company,sector,market_cap,year,quarter,revenue,consensus,low_estimate,
//   high_estimate,alt0[,alt1,...]
// Import validates the same invariants as data::Panel::Validate (aligned
// quarters, positive revenues, ordered estimates).
#ifndef AMS_DATA_PANEL_IO_H_
#define AMS_DATA_PANEL_IO_H_

#include <string>

#include "data/panel.h"
#include "util/csv.h"
#include "util/status.h"

namespace ams::data {

/// Serializes the panel into the CSV interchange schema.
CsvTable PanelToCsv(const Panel& panel);

/// Writes the panel to `path` as CSV.
Status WritePanelCsv(const std::string& path, const Panel& panel);

/// Parses a panel from the CSV interchange schema. `profile` tags the
/// result (it does not change parsing). All companies must cover the same
/// contiguous quarter range; rows may appear in any order.
Result<Panel> PanelFromCsv(const CsvTable& table, DatasetProfile profile);

/// Reads a panel from a CSV file.
Result<Panel> ReadPanelCsv(const std::string& path, DatasetProfile profile);

}  // namespace ams::data

#endif  // AMS_DATA_PANEL_IO_H_
