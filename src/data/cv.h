// Time-series cross-validation (paper §IV-C, Fig. 5): expanding-window
// training, one validation quarter, one test quarter, rolled forward until
// the panel is exhausted.
#ifndef AMS_DATA_CV_H_
#define AMS_DATA_CV_H_

#include <string>
#include <vector>

#include "data/panel.h"
#include "util/status.h"

namespace ams::data {

/// One fold: the quarter indices (into the panel) of each split.
struct CvFold {
  std::vector<int> train_quarters;  // expanding window
  int valid_quarter = 0;
  int test_quarter = 0;
};

struct CvOptions {
  /// History depth k; the first k panel quarters produce no samples
  /// ("dropped due to the absence of historical information of one year").
  int lag_k = 4;
  /// Quarters in the initial training window (paper: 4 for transaction
  /// amount, 2 for map query).
  int initial_train_quarters = 4;
};

/// Builds the fold schedule for a panel of `num_quarters` quarters.
/// Fails if the panel is too short for even one fold.
Result<std::vector<CvFold>> TimeSeriesCvFolds(int num_quarters,
                                              const CvOptions& options);

/// Profile-appropriate CV options (the paper's two schedules).
CvOptions DefaultCvOptions(DatasetProfile profile);

/// Human-readable schedule (used by the Fig. 5 bench and logs).
std::string DescribeFolds(const Panel& panel, const std::vector<CvFold>& folds);

}  // namespace ams::data

#endif  // AMS_DATA_CV_H_
