// Fully-connected layers and a small MLP container.
#ifndef AMS_NN_DENSE_H_
#define AMS_NN_DENSE_H_

#include <vector>

#include "tensor/fusion.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::nn {

/// Activation applied after a dense layer.
enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies `act` to `x` (identity for kNone).
tensor::Tensor Activate(const tensor::Tensor& x, Activation act);

/// Records `act` onto a fused elementwise chain (no-op for kNone);
/// bit-identical to Activate by the fusion contract (tensor/fusion.h).
void AppendActivation(tensor::ElementwiseChain* chain, Activation act);

/// One affine layer y = x W^T + b, with optional activation.
///
/// W has shape (out x in); inputs are batches of row vectors (N x in).
class Dense {
 public:
  /// Initializes W per the activation (He for ReLU-family, Xavier otherwise)
  /// and b to zero.
  Dense(int in_features, int out_features, Activation act, Rng* rng,
        bool use_bias = true);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// The trainable tensors of this layer (W, then b if present).
  std::vector<tensor::Tensor> Parameters() const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

  /// Overwrites the layer's weights/bias (e.g. to start an output layer at a
  /// known-good solution). Shapes must match; bias is ignored when the layer
  /// has none.
  void SetWeights(const la::Matrix& weight, const la::Matrix& bias);

 private:
  int in_features_;
  int out_features_;
  Activation act_;
  bool use_bias_;
  tensor::Tensor weight_;  // out x in
  tensor::Tensor bias_;    // 1 x out (null if !use_bias_)
};

/// A stack of Dense layers with shared hidden activation, optional inverted
/// dropout between hidden layers, and a linear output layer.
class Mlp {
 public:
  /// `hidden` lists hidden-layer widths (may be empty = linear model).
  Mlp(int in_features, const std::vector<int>& hidden, int out_features,
      Activation hidden_act, Rng* rng, double dropout = 0.0);

  /// Forward pass; dropout is active only when `training` is true.
  tensor::Tensor Forward(const tensor::Tensor& x, bool training = false,
                         Rng* dropout_rng = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const std::vector<Dense>& layers() const { return layers_; }
  /// Mutable layer access (used to re-initialize the output layer).
  std::vector<Dense>* mutable_layers() { return &layers_; }

 private:
  int in_features_;
  int out_features_;
  double dropout_;
  std::vector<Dense> layers_;
};

}  // namespace ams::nn

#endif  // AMS_NN_DENSE_H_
