#include "nn/init.h"

#include <cmath>

namespace ams::nn {

la::Matrix XavierUniform(int rows, int cols, int fan_in, int fan_out,
                         Rng* rng) {
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  la::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Uniform(-bound, bound);
  }
  return m;
}

la::Matrix HeNormal(int rows, int cols, int fan_in, Rng* rng) {
  const double stddev = std::sqrt(2.0 / fan_in);
  return GaussianInit(rows, cols, stddev, rng);
}

la::Matrix GaussianInit(int rows, int cols, double stddev, Rng* rng) {
  la::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, stddev);
  }
  return m;
}

}  // namespace ams::nn
