#include "nn/dense.h"

#include "nn/init.h"

namespace ams::nn {

using tensor::Tensor;

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tensor::Relu(x);
    case Activation::kLeakyRelu:
      return tensor::LeakyRelu(x);
    case Activation::kSigmoid:
      return tensor::Sigmoid(x);
    case Activation::kTanh:
      return tensor::Tanh(x);
  }
  return x;
}

void AppendActivation(tensor::ElementwiseChain* chain, Activation act) {
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      chain->Relu();
      break;
    case Activation::kLeakyRelu:
      chain->LeakyRelu(0.2);  // the tensor::LeakyRelu default
      break;
    case Activation::kSigmoid:
      chain->Sigmoid();
      break;
    case Activation::kTanh:
      chain->Tanh();
      break;
  }
}

Dense::Dense(int in_features, int out_features, Activation act, Rng* rng,
             bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      act_(act),
      use_bias_(use_bias) {
  la::Matrix w;
  if (act == Activation::kRelu || act == Activation::kLeakyRelu) {
    w = HeNormal(out_features, in_features, in_features, rng);
  } else {
    w = XavierUniform(out_features, in_features, in_features, out_features,
                      rng);
  }
  weight_ = Tensor::Parameter(std::move(w));
  if (use_bias_) {
    bias_ = Tensor::Parameter(la::Matrix::Zeros(1, out_features));
  }
}

Tensor Dense::Forward(const Tensor& x) const {
  AMS_DCHECK(x.cols() == in_features_, "Dense input width mismatch");
  Tensor out = tensor::MatMul(x, tensor::Transpose(weight_));
  // Bias add + activation as one fused tape node instead of two.
  tensor::ElementwiseChain chain;
  if (use_bias_) chain.Add(bias_);
  AppendActivation(&chain, act_);
  return chain.Apply(out);
}

std::vector<Tensor> Dense::Parameters() const {
  std::vector<Tensor> params = {weight_};
  if (use_bias_) params.push_back(bias_);
  return params;
}

void Dense::SetWeights(const la::Matrix& weight, const la::Matrix& bias) {
  AMS_DCHECK(weight.rows() == out_features_ && weight.cols() == in_features_,
             "SetWeights weight shape mismatch");
  weight_.mutable_value() = weight;
  if (use_bias_) {
    AMS_DCHECK(bias.rows() == 1 && bias.cols() == out_features_,
               "SetWeights bias shape mismatch");
    bias_.mutable_value() = bias;
  }
}

Mlp::Mlp(int in_features, const std::vector<int>& hidden, int out_features,
         Activation hidden_act, Rng* rng, double dropout)
    : in_features_(in_features),
      out_features_(out_features),
      dropout_(dropout) {
  int width = in_features;
  for (int h : hidden) {
    layers_.emplace_back(width, h, hidden_act, rng);
    width = h;
  }
  layers_.emplace_back(width, out_features, Activation::kNone, rng);
}

Tensor Mlp::Forward(const Tensor& x, bool training, Rng* dropout_rng) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    const bool is_hidden = i + 1 < layers_.size();
    if (is_hidden && dropout_ > 0.0) {
      h = tensor::Dropout(h, dropout_, training, dropout_rng);
    }
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const Dense& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace ams::nn
