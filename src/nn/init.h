// Weight initialization schemes.
#ifndef AMS_NN_INIT_H_
#define AMS_NN_INIT_H_

#include "la/matrix.h"
#include "util/rng.h"

namespace ams::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suited to tanh/sigmoid/linear layers.
la::Matrix XavierUniform(int rows, int cols, int fan_in, int fan_out,
                         Rng* rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Suited to ReLU layers.
la::Matrix HeNormal(int rows, int cols, int fan_in, Rng* rng);

/// N(0, stddev).
la::Matrix GaussianInit(int rows, int cols, double stddev, Rng* rng);

}  // namespace ams::nn

#endif  // AMS_NN_INIT_H_
