// GEMM microkernels behind la::Matrix, runtime-dispatched between a portable
// scalar implementation and an AVX2 one compiled in its own translation unit.
//
// FP-order contract: for a fixed problem shape, every kernel accumulates each
// output element's products in ascending k order with one IEEE multiply and
// one IEEE add per product — the historical scalar i-k-j semantics. The AVX2
// kernels vectorize across *output columns* (independent elements, one lane
// each) and deliberately use mul+add instead of FMA, so their results are
// bit-identical to the scalar kernels and the committed golden files stay
// valid. The AVX2 TU is compiled with -ffp-contract=off so the compiler
// cannot re-fuse those operations behind our back.
//
// Dispatch: resolved once per process. AMS_SIMD=off|scalar forces the scalar
// kernels; AMS_SIMD=avx2 requests AVX2 (falls back with a warning when the
// CPU lacks it); unset/auto picks AVX2 when __builtin_cpu_supports agrees.
#ifndef AMS_LA_GEMM_KERNELS_H_
#define AMS_LA_GEMM_KERNELS_H_

#include <cstdint>

namespace ams::la::internal {

// Cache-blocking tile sizes shared by all kernel implementations: a
// kGemmBlockK x kGemmBlockJ panel of B (64 * 256 * 8 bytes = 128 KiB) plus
// the live output row segments stay cache-resident while a row range
// streams through them.
inline constexpr int kGemmBlockK = 64;
inline constexpr int kGemmBlockJ = 256;

/// Raw-pointer kernel table. All matrices are dense row-major; strides are
/// implied by the dimensions (A is packed on `inner`/`a_cols`, B on
/// `out_cols`, C on `out_cols`/`b_rows`).
struct GemmKernels {
  /// C rows [r0, r1) += A rows * B, cache-blocked over (k, j).
  /// A: (>= r1) x inner, B: inner x out_cols, C: (>= r1) x out_cols.
  void (*matmul_rows)(const double* a, const double* b, double* c, int64_t r0,
                      int64_t r1, int inner, int out_cols);
  /// C rows [i0, i1) of A^T * B (i indexes A's columns, k A/B rows ascends).
  /// A: a_rows x a_cols, B: a_rows x out_cols, C: a_cols x out_cols.
  void (*transpose_matmul_rows)(const double* a, const double* b, double* c,
                                int64_t i0, int64_t i1, int a_rows, int a_cols,
                                int out_cols);
  /// C rows [r0, r1) of A * B^T: independent row dot products.
  /// A: (>= r1) x inner, B: b_rows x inner, C: (>= r1) x b_rows.
  void (*matmul_transpose_rows)(const double* a, const double* b, double* c,
                                int64_t r0, int64_t r1, int inner, int b_rows);
  const char* name;
};

/// The portable scalar kernels (the pre-SIMD reference semantics).
const GemmKernels& ScalarGemmKernels();

/// The AVX2 kernels, or nullptr when this build has no AVX2 translation
/// unit (non-x86 target or compiler without -mavx2). Does NOT check the
/// running CPU — callers combine this with CpuSupportsAvx2().
const GemmKernels* Avx2GemmKernels();

/// True when the running CPU executes AVX2 instructions.
bool CpuSupportsAvx2();

/// The kernels la::Matrix uses, resolved once from AMS_SIMD + cpuid.
const GemmKernels& ActiveGemmKernels();

}  // namespace ams::la::internal

#endif  // AMS_LA_GEMM_KERNELS_H_
