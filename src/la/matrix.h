// Dense row-major matrix with the kernels the rest of the library needs:
// gemm, transpose, elementwise arithmetic, reductions, and factorizations
// (Cholesky) for the closed-form linear models.
#ifndef AMS_LA_MATRIX_H_
#define AMS_LA_MATRIX_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "la/pool.h"
#include "util/status.h"

namespace ams::la {

/// Dense row-major matrix of doubles.
///
/// Shapes are checked with AMS_DCHECK in element accessors and with Status
/// returns in the fallible factory/solver entry points.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}
  /// rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }
  static Matrix Identity(int n);
  /// Column vector from data.
  static Matrix ColumnVector(const std::vector<double>& values);
  /// Row vector from data.
  static Matrix RowVector(const std::vector<double>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(int r, int c) {
    AMS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
               "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    AMS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
               "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* row_data(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // --- Elementwise arithmetic (shape-checked). ---
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  /// Hadamard (elementwise) product.
  Matrix Hadamard(const Matrix& other) const;

  /// Applies `fn` to every element, returning a new matrix.
  Matrix Map(const std::function<double(double)>& fn) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// this (rows x k) times other (k x cols).
  Matrix MatMul(const Matrix& other) const;
  /// this^T times other, without materializing the transpose.
  Matrix TransposeMatMul(const Matrix& other) const;
  /// this times other^T, without materializing the transpose.
  Matrix MatMulTranspose(const Matrix& other) const;

  /// Rows [begin, end) as a new matrix.
  Matrix SliceRows(int begin, int end) const;
  /// Columns [begin, end) as a new matrix.
  Matrix SliceCols(int begin, int end) const;
  /// Single row r as a 1 x cols matrix.
  Matrix Row(int r) const { return SliceRows(r, r + 1); }
  /// Single column c as a rows x 1 matrix.
  Matrix Col(int c) const { return SliceCols(c, c + 1); }

  /// Stacks `top` above `bottom` (equal column counts).
  static Matrix VStack(const Matrix& top, const Matrix& bottom);
  /// Concatenates `left` and `right` horizontally (equal row counts).
  static Matrix HStack(const Matrix& left, const Matrix& right);

  // --- Reductions. ---
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Frobenius norm.
  double Norm() const;
  /// Column-wise sums as a 1 x cols matrix.
  Matrix ColSums() const;
  /// Row-wise sums as a rows x 1 matrix.
  Matrix RowSums() const;

  /// True if all elements are finite.
  bool AllFinite() const;

  bool operator==(const Matrix& other) const {
    return same_shape(other) && data_ == other.data_;
  }

  /// Max |a - b| over elements; matrices must be same shape.
  double MaxAbsDiff(const Matrix& other) const;

  std::string ToString(int precision = 4) const;

 private:
  // Buffers come from the process-wide BufferPool (la/pool.h): the autograd
  // tape allocates a fresh matrix per op, and pooling turns that churn into
  // free-list reuse instead of malloc traffic.
  using Buffer = std::vector<double, PoolAllocator<double>>;

  int rows_;
  int cols_;
  Buffer data_;
};

inline Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

/// Dot product of two equally-sized vectors (any shape, flattened).
double Dot(const Matrix& a, const Matrix& b);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// b may have multiple right-hand-side columns.
Result<Matrix> CholeskySolve(const Matrix& a, const Matrix& b);

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves the ridge system (X^T X + lambda I) beta = X^T y.
/// `penalize_intercept_col` < 0 penalizes all columns; otherwise that column
/// (typically a bias column of ones) is excluded from the penalty.
Result<Matrix> RidgeSolve(const Matrix& x, const Matrix& y, double lambda,
                          int unpenalized_col = -1);

}  // namespace ams::la

#endif  // AMS_LA_MATRIX_H_
