// Descriptive statistics and the significance tests used in the paper's
// evaluation (pairwise t-tests on cross-validation fold results).
#ifndef AMS_LA_STATS_H_
#define AMS_LA_STATS_H_

#include <vector>

#include "util/status.h"

namespace ams::la {

/// Arithmetic mean. NaN for empty input (the mean is undefined; callers
/// that need a hard failure should check emptiness themselves).
double Mean(const std::vector<double>& values);

/// Sample variance (divides by n-1). NaN for fewer than two values.
double SampleVariance(const std::vector<double>& values);

/// Sample standard deviation (sqrt of SampleVariance; NaN for n < 2).
double SampleStdDev(const std::vector<double>& values);

/// Population standard deviation (divides by n). NaN for empty input.
double PopulationStdDev(const std::vector<double>& values);

/// Pearson correlation coefficient of two equally-sized series.
/// Returns 0 when either series is constant or shorter than two points
/// (correlation undefined).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b) via Lentz's continued
/// fraction. Accurate to ~1e-12 over the parameter ranges used here.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// Standard normal CDF.
double NormalCdf(double z);

/// Result of a paired t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;   // two-sided by default
  double mean_diff = 0.0;
  int dof = 0;
};

/// Paired (dependent-samples) t-test on a - b. Two-sided p-value.
/// Requires equal sizes and at least two pairs; returns an error otherwise.
/// If all differences are identical (zero variance), p = 1 when the mean
/// difference is 0 and p = 0 otherwise.
Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b);

/// One-sample t-test of `values` against `mu`. Two-sided p-value.
Result<TTestResult> OneSampleTTest(const std::vector<double>& values,
                                   double mu);

}  // namespace ams::la

#endif  // AMS_LA_STATS_H_
