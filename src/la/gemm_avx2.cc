// AVX2 GEMM microkernels. This translation unit is compiled with
// -mavx2 -ffp-contract=off (see src/la/CMakeLists.txt) and deliberately
// includes almost nothing: any inline function compiled here could be
// emitted with AVX2 instructions and picked by the linker for all callers,
// which would crash non-AVX2 hosts before dispatch ever runs.
//
// Bit-identity with the scalar kernels (the contract golden files are
// recorded against): vector lanes hold independent output columns, each
// accumulated in ascending k with one IEEE multiply and one IEEE add per
// product — never FMA. -ffp-contract=off stops the compiler from fusing
// the scalar tails.
#include "la/gemm_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ams::la::internal {

namespace {

inline int MinInt(int a, int b) { return a < b ? a : b; }

/// y[0..n) += a * x[0..n), 4 lanes at a time, scalar tail.
inline void Axpy(double* y, const double* x, double a, int n) {
  const __m256d va = _mm256_set1_pd(a);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vx = _mm256_loadu_pd(x + j);
    const __m256d vy = _mm256_loadu_pd(y + j);
    _mm256_storeu_pd(y + j, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

void Avx2MatMulRows(const double* a, const double* b, double* c, int64_t r0,
                    int64_t r1, int inner, int out_cols) {
  for (int kk = 0; kk < inner; kk += kGemmBlockK) {
    const int k_end = MinInt(kk + kGemmBlockK, inner);
    for (int jj = 0; jj < out_cols; jj += kGemmBlockJ) {
      const int j_end = MinInt(jj + kGemmBlockJ, out_cols);
      for (int64_t i = r0; i < r1; ++i) {
        double* c_row = c + i * out_cols;
        const double* a_row = a + i * inner;
        for (int k = kk; k < k_end; ++k) {
          const double a_ik = a_row[k];
          if (a_ik == 0.0) continue;
          const double* b_row = b + static_cast<int64_t>(k) * out_cols;
          Axpy(c_row + jj, b_row + jj, a_ik, j_end - jj);
        }
      }
    }
  }
}

void Avx2TransposeMatMulRows(const double* a, const double* b, double* c,
                             int64_t i0, int64_t i1, int a_rows, int a_cols,
                             int out_cols) {
  for (int k = 0; k < a_rows; ++k) {
    const double* a_row = a + static_cast<int64_t>(k) * a_cols;
    const double* b_row = b + static_cast<int64_t>(k) * out_cols;
    for (int64_t i = i0; i < i1; ++i) {
      const double a_ki = a_row[i];
      if (a_ki == 0.0) continue;
      Axpy(c + i * out_cols, b_row, a_ki, out_cols);
    }
  }
}

void Avx2MatMulTransposeRows(const double* a, const double* b, double* c,
                             int64_t r0, int64_t r1, int inner, int b_rows) {
  for (int64_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * inner;
    double* c_row = c + i * b_rows;
    int j = 0;
    // Four output columns at once: each lane is one dot product with its
    // own accumulator, k ascending — the scalar order, four at a time.
    for (; j + 4 <= b_rows; j += 4) {
      const double* b0 = b + static_cast<int64_t>(j) * inner;
      const double* b1 = b0 + inner;
      const double* b2 = b1 + inner;
      const double* b3 = b2 + inner;
      __m256d acc = _mm256_setzero_pd();
      for (int k = 0; k < inner; ++k) {
        const __m256d va = _mm256_set1_pd(a_row[k]);
        const __m256d vb = _mm256_set_pd(b3[k], b2[k], b1[k], b0[k]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      _mm256_storeu_pd(c_row + j, acc);
    }
    for (; j < b_rows; ++j) {
      const double* b_row = b + static_cast<int64_t>(j) * inner;
      double acc = 0.0;
      for (int k = 0; k < inner; ++k) acc += a_row[k] * b_row[k];
      c_row[j] = acc;
    }
  }
}

constexpr GemmKernels kAvx2Kernels = {
    Avx2MatMulRows,
    Avx2TransposeMatMulRows,
    Avx2MatMulTransposeRows,
    "avx2",
};

}  // namespace

const GemmKernels* Avx2GemmKernels() { return &kAvx2Kernels; }

}  // namespace ams::la::internal

#else  // !defined(__AVX2__)

namespace ams::la::internal {

const GemmKernels* Avx2GemmKernels() { return nullptr; }

}  // namespace ams::la::internal

#endif
