#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "la/gemm_kernels.h"
#include "par/thread_pool.h"

namespace ams::la {

namespace {

// GEMM dispatch constants. Determinism contract: for a fixed problem shape
// the per-element floating-point addition order is always k-ascending —
// identical to the historical single-threaded i-k-j kernel — and row-range
// boundaries never depend on the worker count, so every thread count
// produces bit-identical results. The scalar and AVX2 microkernels share
// this contract (see gemm_kernels.h), so the SIMD choice never changes
// bits either.
//
// Products below kParallelFlops run entirely on the calling thread: the
// autograd/GAT stack issues thousands of small GEMMs where a pool handoff
// would cost more than the multiply.
constexpr int64_t kParallelFlops = int64_t{1} << 18;
// Rows per pool chunk; small enough to balance ragged tails, large enough
// that chunk claiming is noise.
constexpr int64_t kRowGrain = 16;

}  // namespace

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  AMS_DCHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = static_cast<int>(init.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(init.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : init) {
    AMS_DCHECK(static_cast<int>(row.size()) == cols_,
               "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AMS_DCHECK(same_shape(other), "shape mismatch in +=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  AMS_DCHECK(same_shape(other), "shape mismatch in -=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  AMS_DCHECK(same_shape(other), "shape mismatch in Hadamard");
  Matrix out = *this;
  for (size_t i = 0; i < out.data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Map(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  for (double& v : out.data_) v = fn(v);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const double* src = row_data(r);
    for (int c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

namespace {

/// Runs `rows` output rows through `kernel`, on the pool when the product
/// is large enough to amortize the handoff.
template <typename Kernel>
void DispatchGemm(int64_t flops, int64_t rows, const Kernel& kernel) {
  if (flops < kParallelFlops) {
    kernel(0, rows);
    return;
  }
  par::ThreadPool& pool = par::DefaultPool();
  if (pool.parallelism() == 1) {
    kernel(0, rows);
    return;
  }
  pool.ParallelFor(0, rows, kRowGrain, kernel);
}

}  // namespace

Matrix Matrix::MatMul(const Matrix& other) const {
  AMS_DCHECK(cols_ == other.rows_, "inner dimension mismatch in MatMul");
  Matrix out(rows_, other.cols_, 0.0);
  const int64_t flops =
      int64_t{rows_} * cols_ * other.cols_;
  const internal::GemmKernels& kernels = internal::ActiveGemmKernels();
  DispatchGemm(flops, rows_, [&](int64_t r0, int64_t r1) {
    kernels.matmul_rows(data(), other.data(), out.data(), r0, r1, cols_,
                        other.cols_);
  });
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  AMS_DCHECK(rows_ == other.rows_, "row mismatch in TransposeMatMul");
  Matrix out(cols_, other.cols_, 0.0);
  const int64_t flops =
      int64_t{rows_} * cols_ * other.cols_;
  const internal::GemmKernels& kernels = internal::ActiveGemmKernels();
  DispatchGemm(flops, cols_, [&](int64_t i0, int64_t i1) {
    kernels.transpose_matmul_rows(data(), other.data(), out.data(), i0, i1,
                                  rows_, cols_, other.cols_);
  });
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  AMS_DCHECK(cols_ == other.cols_, "column mismatch in MatMulTranspose");
  Matrix out(rows_, other.rows_, 0.0);
  const int64_t flops =
      int64_t{rows_} * cols_ * other.rows_;
  const internal::GemmKernels& kernels = internal::ActiveGemmKernels();
  DispatchGemm(flops, rows_, [&](int64_t r0, int64_t r1) {
    kernels.matmul_transpose_rows(data(), other.data(), out.data(), r0, r1,
                                  cols_, other.rows_);
  });
  return out;
}

Matrix Matrix::SliceRows(int begin, int end) const {
  AMS_DCHECK(begin >= 0 && begin <= end && end <= rows_,
             "bad row slice bounds");
  Matrix out(end - begin, cols_);
  std::memcpy(out.data(), row_data(begin),
              static_cast<size_t>(end - begin) * cols_ * sizeof(double));
  return out;
}

Matrix Matrix::SliceCols(int begin, int end) const {
  AMS_DCHECK(begin >= 0 && begin <= end && end <= cols_,
             "bad column slice bounds");
  Matrix out(rows_, end - begin);
  for (int r = 0; r < rows_; ++r) {
    std::memcpy(out.row_data(r), row_data(r) + begin,
                static_cast<size_t>(end - begin) * sizeof(double));
  }
  return out;
}

Matrix Matrix::VStack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  AMS_DCHECK(top.cols_ == bottom.cols_, "column mismatch in VStack");
  Matrix out(top.rows_ + bottom.rows_, top.cols_);
  std::memcpy(out.data(), top.data(),
              static_cast<size_t>(top.size()) * sizeof(double));
  std::memcpy(out.data() + top.size(), bottom.data(),
              static_cast<size_t>(bottom.size()) * sizeof(double));
  return out;
}

Matrix Matrix::HStack(const Matrix& left, const Matrix& right) {
  if (left.empty()) return right;
  if (right.empty()) return left;
  AMS_DCHECK(left.rows_ == right.rows_, "row mismatch in HStack");
  Matrix out(left.rows_, left.cols_ + right.cols_);
  for (int r = 0; r < left.rows_; ++r) {
    std::memcpy(out.row_data(r), left.row_data(r),
                static_cast<size_t>(left.cols_) * sizeof(double));
    std::memcpy(out.row_data(r) + left.cols_, right.row_data(r),
                static_cast<size_t>(right.cols_) * sizeof(double));
  }
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Mean() const {
  AMS_DCHECK(!empty(), "Mean of empty matrix");
  return Sum() / size();
}

double Matrix::Min() const {
  AMS_DCHECK(!empty(), "Min of empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Max() const {
  AMS_DCHECK(!empty(), "Max of empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::ColSums() const {
  Matrix out(1, cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* src = row_data(r);
    for (int c = 0; c < cols_; ++c) out(0, c) += src[c];
  }
  return out;
}

Matrix Matrix::RowSums() const {
  Matrix out(rows_, 1, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* src = row_data(r);
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += src[c];
    out(r, 0) = acc;
  }
  return out;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  AMS_DCHECK(same_shape(other), "shape mismatch in MaxAbsDiff");
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream oss;
  oss.precision(precision);
  oss << std::fixed;
  oss << "[";
  for (int r = 0; r < rows_; ++r) {
    oss << (r == 0 ? "[" : " [");
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) oss << ", ";
      oss << (*this)(r, c);
    }
    oss << "]" << (r + 1 < rows_ ? "\n" : "");
  }
  oss << "]";
  return oss.str();
}

double Dot(const Matrix& a, const Matrix& b) {
  AMS_DCHECK(a.size() == b.size(), "size mismatch in Dot");
  double acc = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (int i = 0; i < a.size(); ++i) acc += pa[i] * pb[i];
  return acc;
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor requires a square matrix");
  }
  const int n = a.rows();
  Matrix l(n, n, 0.0);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::ComputeError("matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return l;
}

Result<Matrix> CholeskySolve(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("CholeskySolve dimension mismatch");
  }
  AMS_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const int n = a.rows();
  const int m = b.cols();
  // Forward substitution: L z = b.
  Matrix z(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = 0; i < n; ++i) {
      double v = b(i, c);
      for (int k = 0; k < i; ++k) v -= l(i, k) * z(k, c);
      z(i, c) = v / l(i, i);
    }
  }
  // Back substitution: L^T x = z.
  Matrix x(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = n - 1; i >= 0; --i) {
      double v = z(i, c);
      for (int k = i + 1; k < n; ++k) v -= l(k, i) * x(k, c);
      x(i, c) = v / l(i, i);
    }
  }
  return x;
}

Result<Matrix> RidgeSolve(const Matrix& x, const Matrix& y, double lambda,
                          int unpenalized_col) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("RidgeSolve: X and y row counts differ");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("RidgeSolve: negative lambda");
  }
  Matrix gram = x.TransposeMatMul(x);
  for (int i = 0; i < gram.rows(); ++i) {
    if (i == unpenalized_col) continue;
    gram(i, i) += lambda;
  }
  // A touch of jitter keeps the system SPD when lambda == 0 and X is
  // rank-deficient (constant one-hot columns are common in our features).
  for (int i = 0; i < gram.rows(); ++i) gram(i, i) += 1e-10;
  Matrix xty = x.TransposeMatMul(y);
  return CholeskySolve(gram, xty);
}

}  // namespace ams::la
