#include "la/pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ams::la {

namespace {

// Every request is rounded up to a multiple of this (bytes). 256 keeps the
// class count small while the tape's dominant shapes (1x1 scalars through
// mid-sized layer activations) land on few enough classes to reuse well.
constexpr size_t kAllocationUnit = 256;
// Classes [1, kSmallClasses] units get an exact free list; larger blocks go
// through the best-fit map.
constexpr size_t kSmallClasses = 256;  // exact lists up to 64 KiB
// A cached large block is reused only when its capacity is at most this
// multiple of the request, bounding best-fit waste.
constexpr size_t kBestFitSlack = 2;
// Bytes reserved in front of every block for the capacity header. 16 keeps
// the user pointer at the system allocator's own alignment.
constexpr size_t kHeaderBytes = 16;

constexpr uint64_t kDefaultMaxResident = uint64_t{512} << 20;  // 512 MiB

size_t RoundUpToUnit(size_t bytes) {
  if (bytes == 0) bytes = 1;
  return (bytes + kAllocationUnit - 1) / kAllocationUnit * kAllocationUnit;
}

// The live pool, published for the static Free() path. Cleared in the
// destructor so frees that arrive after static teardown (matrices with
// static storage duration) fall back to the system allocator.
std::atomic<BufferPool*> g_pool{nullptr};

}  // namespace

struct BufferPool::Impl {
  std::mutex mu;
  // small[units]: blocks of exactly units * kAllocationUnit capacity.
  std::array<std::vector<void*>, kSmallClasses + 1> small;
  // capacity -> cached blocks of that capacity, for large requests.
  std::map<size_t, std::vector<void*>> large;

  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> resident{0};
  std::atomic<uint64_t> in_use{0};
  std::atomic<uint64_t> frees{0};

  obs::Counter* hits_counter;
  obs::Counter* misses_counter;
  obs::Gauge* hit_rate_gauge;
  obs::Gauge* resident_gauge;
  obs::Gauge* in_use_gauge;

  Impl() {
    auto& registry = obs::MetricsRegistry::Get();
    hits_counter = &registry.GetCounter("la/pool_hits");
    misses_counter = &registry.GetCounter("la/pool_misses");
    hit_rate_gauge = &registry.GetGauge("la/pool_hit_rate");
    resident_gauge = &registry.GetGauge("la/pool_resident_bytes");
    in_use_gauge = &registry.GetGauge("la/pool_in_use_bytes");
  }

  // Gauges are a sampled view for reporters, not an exact ledger (the
  // atomics behind GetStats are). Refreshing them on every pool op costs
  // five extra atomic accesses on the hottest path in the codebase, so we
  // refresh every 64th op and at the explicit read points.
  static constexpr uint64_t kGaugeRefreshMask = 63;

  void UpdateGauges() {
    const uint64_t a = allocs.load(std::memory_order_relaxed);
    const uint64_t h = hits.load(std::memory_order_relaxed);
    hit_rate_gauge->Set(a == 0 ? 0.0 : static_cast<double>(h) / a);
    resident_gauge->Set(
        static_cast<double>(resident.load(std::memory_order_relaxed)));
    in_use_gauge->Set(
        static_cast<double>(in_use.load(std::memory_order_relaxed)));
  }
};

BufferPool& BufferPool::Global() {
  static BufferPool pool;
  return pool;
}

BufferPool::BufferPool() : impl_(new Impl) {
  const char* mode = std::getenv("AMS_POOL");
  if (mode != nullptr) {
    const std::string m = mode;
    enabled_ = !(m == "off" || m == "0" || m == "false");
  }
  max_resident_bytes_ = kDefaultMaxResident;
  if (const char* cap = std::getenv("AMS_POOL_MAX_BYTES")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cap, &end, 10);
    if (end != cap) max_resident_bytes_ = v;
  }
  g_pool.store(this, std::memory_order_release);
}

BufferPool::~BufferPool() {
  g_pool.store(nullptr, std::memory_order_release);
  ReleaseCached();
  delete impl_;
  impl_ = nullptr;
}

void* BufferPool::Allocate(size_t bytes) {
  const size_t capacity = RoundUpToUnit(bytes);
  const uint64_t alloc_seq =
      impl_->allocs.fetch_add(1, std::memory_order_relaxed);

  char* base = nullptr;
  size_t got_capacity = capacity;
  if (enabled_) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const size_t units = capacity / kAllocationUnit;
    if (units <= kSmallClasses) {
      auto& list = impl_->small[units];
      if (!list.empty()) {
        base = static_cast<char*>(list.back());
        list.pop_back();
      }
    } else {
      // Emptied capacity entries stay in the map (their vectors keep their
      // heap storage too): steady-state churn on a large shape must not
      // allocate and free a map node per cycle.
      auto it = impl_->large.lower_bound(capacity);
      while (it != impl_->large.end() &&
             it->first <= capacity * kBestFitSlack && it->second.empty()) {
        ++it;
      }
      if (it != impl_->large.end() && it->first <= capacity * kBestFitSlack) {
        got_capacity = it->first;
        base = static_cast<char*>(it->second.back());
        it->second.pop_back();
      }
    }
    if (base != nullptr) {
      impl_->resident.fetch_sub(got_capacity, std::memory_order_relaxed);
    }
  }

  if (base != nullptr) {
    impl_->hits.fetch_add(1, std::memory_order_relaxed);
    impl_->hits_counter->Increment();
  } else {
    got_capacity = capacity;
    base = static_cast<char*>(::operator new(capacity + kHeaderBytes));
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    impl_->misses_counter->Increment();
  }
  *reinterpret_cast<size_t*>(base) = got_capacity;
  impl_->in_use.fetch_add(got_capacity, std::memory_order_relaxed);
  if ((alloc_seq & Impl::kGaugeRefreshMask) == 0) impl_->UpdateGauges();
  return base + kHeaderBytes;
}

void BufferPool::Free(void* ptr) {
  if (ptr == nullptr) return;
  char* base = static_cast<char*>(ptr) - kHeaderBytes;
  const size_t capacity = *reinterpret_cast<size_t*>(base);
  BufferPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) {
    // Pool already destroyed (static-teardown ordering): hand the block
    // straight back to the system allocator.
    ::operator delete(base);
    return;
  }
  pool->FreeImpl(base, capacity);
}

void BufferPool::FreeImpl(void* base, size_t capacity) {
  impl_->in_use.fetch_sub(capacity, std::memory_order_relaxed);
  bool cached = false;
  if (enabled_ &&
      impl_->resident.load(std::memory_order_relaxed) + capacity <=
          max_resident_bytes_) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const size_t units = capacity / kAllocationUnit;
    if (units <= kSmallClasses) {
      impl_->small[units].push_back(base);
    } else {
      impl_->large[capacity].push_back(base);
    }
    impl_->resident.fetch_add(capacity, std::memory_order_relaxed);
    cached = true;
  }
  if (!cached) ::operator delete(base);
  const uint64_t free_seq =
      impl_->frees.fetch_add(1, std::memory_order_relaxed);
  if ((free_seq & Impl::kGaugeRefreshMask) == 0) impl_->UpdateGauges();
}

BufferPool::Stats BufferPool::GetStats() const {
  impl_->UpdateGauges();
  Stats s;
  s.allocs = impl_->allocs.load(std::memory_order_relaxed);
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.resident_bytes = impl_->resident.load(std::memory_order_relaxed);
  s.in_use_bytes = impl_->in_use.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ReleaseCached() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& list : impl_->small) {
    for (void* base : list) ::operator delete(base);
    list.clear();
  }
  for (auto& [capacity, list] : impl_->large) {
    for (void* base : list) ::operator delete(base);
  }
  impl_->large.clear();
  impl_->resident.store(0, std::memory_order_relaxed);
  impl_->UpdateGauges();
}

}  // namespace ams::la
