#include "la/stats.h"

#include <cmath>
#include <limits>

namespace ams::la {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return std::numeric_limits<double>::quiet_NaN();
  const double mu = Mean(values);
  double s = 0.0;
  for (double v : values) s += (v - mu) * (v - mu);
  return s / static_cast<double>(values.size() - 1);
}

double SampleStdDev(const std::vector<double>& values) {
  return std::sqrt(SampleVariance(values));
}

double PopulationStdDev(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double mu = Mean(values);
  double s = 0.0;
  for (double v : values) s += (v - mu) * (v - mu);
  return std::sqrt(s / static_cast<double>(values.size()));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  AMS_DCHECK(a.size() == b.size(), "PearsonCorrelation size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Numerical Recipes
// style modified Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  AMS_DCHECK(a > 0.0 && b > 0.0, "incomplete beta requires a, b > 0");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double dof) {
  AMS_DCHECK(dof > 0.0, "StudentTCdf requires dof > 0");
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = dof / (dof + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

Result<TTestResult> TTestFromDiffs(const std::vector<double>& diffs) {
  if (diffs.size() < 2) {
    return Status::InvalidArgument("t-test requires at least 2 pairs");
  }
  const int n = static_cast<int>(diffs.size());
  TTestResult result;
  result.mean_diff = Mean(diffs);
  result.dof = n - 1;
  const double sd = SampleStdDev(diffs);
  if (sd == 0.0) {
    result.t_statistic =
        result.mean_diff == 0.0 ? 0.0
                                : std::numeric_limits<double>::infinity() *
                                      (result.mean_diff > 0 ? 1.0 : -1.0);
    result.p_value = result.mean_diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic =
      result.mean_diff / (sd / std::sqrt(static_cast<double>(n)));
  const double cdf = StudentTCdf(std::fabs(result.t_statistic),
                                 static_cast<double>(result.dof));
  result.p_value = 2.0 * (1.0 - cdf);
  return result;
}

}  // namespace

Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("PairedTTest size mismatch");
  }
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  return TTestFromDiffs(diffs);
}

Result<TTestResult> OneSampleTTest(const std::vector<double>& values,
                                   double mu) {
  std::vector<double> diffs(values.size());
  for (size_t i = 0; i < values.size(); ++i) diffs[i] = values[i] - mu;
  return TTestFromDiffs(diffs);
}

}  // namespace ams::la
