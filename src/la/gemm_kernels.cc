// Scalar GEMM kernels (the reference FP semantics) and the process-wide
// kernel dispatch. The AVX2 kernels live in gemm_avx2.cc, compiled with
// -mavx2 -ffp-contract=off; both implementations share the blocked loop
// structure so they are bit-identical (see gemm_kernels.h).
#include "la/gemm_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace ams::la::internal {

namespace {

void ScalarMatMulRows(const double* a, const double* b, double* c, int64_t r0,
                      int64_t r1, int inner, int out_cols) {
  for (int kk = 0; kk < inner; kk += kGemmBlockK) {
    const int k_end = std::min(kk + kGemmBlockK, inner);
    for (int jj = 0; jj < out_cols; jj += kGemmBlockJ) {
      const int j_end = std::min(jj + kGemmBlockJ, out_cols);
      for (int64_t i = r0; i < r1; ++i) {
        double* c_row = c + i * out_cols;
        const double* a_row = a + i * inner;
        for (int k = kk; k < k_end; ++k) {
          const double a_ik = a_row[k];
          if (a_ik == 0.0) continue;
          const double* b_row = b + static_cast<int64_t>(k) * out_cols;
          for (int j = jj; j < j_end; ++j) c_row[j] += a_ik * b_row[j];
        }
      }
    }
  }
}

void ScalarTransposeMatMulRows(const double* a, const double* b, double* c,
                               int64_t i0, int64_t i1, int a_rows, int a_cols,
                               int out_cols) {
  for (int k = 0; k < a_rows; ++k) {
    const double* a_row = a + static_cast<int64_t>(k) * a_cols;
    const double* b_row = b + static_cast<int64_t>(k) * out_cols;
    for (int64_t i = i0; i < i1; ++i) {
      const double a_ki = a_row[i];
      if (a_ki == 0.0) continue;
      double* c_row = c + i * out_cols;
      for (int j = 0; j < out_cols; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

void ScalarMatMulTransposeRows(const double* a, const double* b, double* c,
                               int64_t r0, int64_t r1, int inner, int b_rows) {
  for (int64_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * inner;
    double* c_row = c + i * b_rows;
    for (int j = 0; j < b_rows; ++j) {
      const double* b_row = b + static_cast<int64_t>(j) * inner;
      double acc = 0.0;
      for (int k = 0; k < inner; ++k) acc += a_row[k] * b_row[k];
      c_row[j] = acc;
    }
  }
}

constexpr GemmKernels kScalarKernels = {
    ScalarMatMulRows,
    ScalarTransposeMatMulRows,
    ScalarMatMulTransposeRows,
    "scalar",
};

}  // namespace

const GemmKernels& ScalarGemmKernels() { return kScalarKernels; }

bool CpuSupportsAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const GemmKernels& ActiveGemmKernels() {
  static const GemmKernels& kernels = []() -> const GemmKernels& {
    const char* env = std::getenv("AMS_SIMD");
    const std::string mode = env != nullptr ? env : "auto";
    if (mode == "off" || mode == "scalar") return kScalarKernels;
    const GemmKernels* avx2 = Avx2GemmKernels();
    if (avx2 != nullptr && CpuSupportsAvx2()) return *avx2;
    if (mode == "avx2") {
      AMS_LOG(Warning) << "AMS_SIMD=avx2 requested but "
                    << (avx2 == nullptr ? "this build has no AVX2 kernels"
                                        : "the CPU lacks AVX2")
                    << "; using scalar GEMM kernels";
    }
    return kScalarKernels;
  }();
  return kernels;
}

}  // namespace ams::la::internal
