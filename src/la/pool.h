// Pooled tensor memory: a thread-safe, bucketed free-list arena that sits
// behind every la::Matrix buffer and autograd tape Node, so the op-per-op
// allocation churn of AMS/GNN training stops hitting the system allocator.
//
// Design (after the chainerx memory_pool free-list/bucketing scheme):
//   * Every block carries a 16-byte header recording its rounded capacity,
//     so Free() never trusts the caller's size and an oversized best-fit
//     block re-enters the pool under its true class.
//   * Requests are rounded up to kAllocationUnit. Small classes (up to
//     kSmallClassLimit units) get an exact free list per class — O(1) pop.
//     Larger blocks live in a size-ordered best-fit map; a cached block is
//     reused only when it wastes less than 2x the request.
//   * One mutex guards the free lists. The hot path is pop/push plus a few
//     relaxed atomics for stats; contention is far below the malloc traffic
//     it replaces (the tape allocates per op, mostly from one thread).
//
// Observability: counters la/pool_hits, la/pool_misses and gauges
// la/pool_hit_rate, la/pool_resident_bytes (cached in free lists),
// la/pool_in_use_bytes (handed out, not yet returned).
//
// Env knobs:
//   AMS_POOL=off             bypass the pool entirely (plain operator new)
//   AMS_POOL_MAX_BYTES=N     cap on cached (resident) bytes; blocks freed
//                            beyond the cap go straight back to the system
//                            (default 512 MiB)
//
// Shutdown: the singleton frees its cached blocks on static destruction so
// LeakSanitizer sees a clean exit; buffers that outlive the pool (static
// matrices destroyed later) are routed to plain operator delete.
#ifndef AMS_LA_POOL_H_
#define AMS_LA_POOL_H_

#include <cstddef>
#include <cstdint>

namespace ams::la {

class BufferPool {
 public:
  /// The process-wide pool (Meyer's singleton, created on first use).
  static BufferPool& Global();

  /// Returns a block of at least `bytes` usable bytes (16-byte aligned).
  /// Never returns nullptr for bytes == 0 (a minimal block is handed out).
  void* Allocate(size_t bytes);

  /// Returns a block obtained from Allocate. Safe to call after the pool's
  /// static destruction (falls back to the system allocator) so matrices
  /// with static storage duration destroy cleanly in any order.
  static void Free(void* ptr);

  struct Stats {
    uint64_t allocs = 0;          // total Allocate calls
    uint64_t hits = 0;            // served from a free list
    uint64_t misses = 0;          // fell through to operator new
    uint64_t resident_bytes = 0;  // cached in free lists right now
    uint64_t in_use_bytes = 0;    // handed out, not yet freed
    double hit_rate() const {
      return allocs == 0 ? 0.0 : static_cast<double>(hits) / allocs;
    }
  };
  Stats GetStats() const;

  /// Frees every cached block (resident_bytes -> 0). In-use blocks are
  /// unaffected. For tests and explicit memory-pressure relief.
  void ReleaseCached();

  bool enabled() const { return enabled_; }
  uint64_t max_resident_bytes() const { return max_resident_bytes_; }

  ~BufferPool();

 private:
  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  void FreeImpl(void* ptr, size_t capacity);

  struct Impl;
  Impl* impl_;  // raw pointer: pool.cc owns layout, header stays light
  bool enabled_ = true;
  uint64_t max_resident_bytes_ = 0;
};

/// Minimal std allocator over BufferPool::Global(). Stateless: all
/// instances are interchangeable, so containers swap/move freely.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(BufferPool::Global().Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t /*n*/) { BufferPool::Free(p); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) {
    return false;
  }
};

}  // namespace ams::la

#endif  // AMS_LA_POOL_H_
