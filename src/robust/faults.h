// Deterministic fault injection for exercising the recovery paths in CI.
//
// Faults are armed from the AMS_FAULTS environment variable (or
// programmatically in tests) using a small grammar:
//
//   AMS_FAULTS="nan_grad@epoch=3;task_throw@index=7;io_truncate@write=2"
//
// Each entry is `<kind>@<key>=<ordinal>` and fires exactly once, at the
// matching point of the process's execution:
//
//   nan_grad@epoch=N     corrupt a gradient in the N-th guarded training
//                        epoch (see robust::TrainGuard)
//   task_throw@index=N   throw InjectedFault from the N-th retry-wrapped
//                        task entry (see robust::RunWithRetry)
//   io_truncate@write=N  truncate the payload of the N-th atomic file
//                        write (see robust::AtomicWriteFile)
//   train_crash@epoch=N  abort AMS training right after epoch N commits
//                        (and after its checkpoint is saved)
//   hpo_crash@trial=N    abort RandomSearch after N trials have completed
//                        and been checkpointed
//   bit_flip@read=N      flip one payload bit in the N-th verified file
//                        read (see robust::ReadFileVerified) — the CRC
//                        footer must catch it
//   partial_read@read=N  drop the second half of the N-th verified file
//                        read, simulating a short read / torn page
//
// Network-path kinds, fired inside serve::NetServer's accept/read/write
// loops (the kind is resolved by its name *and* key, so `conn_drop` names
// two distinct injection points):
//
//   conn_drop@accept=N     close the N-th accepted connection immediately,
//                          before any frame is read
//   torn_frame@net_read=N  truncate the N-th network frame read mid-frame
//                          (the decoder must reject the torn bytes)
//   slow_peer@net_read=N   stall the N-th network frame read (a dribbling
//                          client), long enough to expire tight deadlines
//   conn_drop@net_write=N  close the connection instead of performing the
//                          N-th response write (client sees EOF and must
//                          retry)
//   torn_scrape@admin=N    truncate the N-th admin-plane response halfway
//                          and hang up (obs::AdminServer; scrapers must
//                          treat short reads as failed scrapes)
//
// Ordinals are deterministic given single-run determinism of the call
// sites: epoch/trial ordinals are supplied by the caller, while
// task/write/accept/net ordinals count process-wide calls in order. Every
// injected fault bumps the `robust/faults_injected` counter so a run that
// silently recovered is still visible in AMS_TELEMETRY reports. Entries
// may be separated by ';' or ',' (the latter nests more easily inside
// other comma-free env grammars).
#ifndef AMS_ROBUST_FAULTS_H_
#define AMS_ROBUST_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.h"

namespace ams::robust {

enum class FaultKind {
  kNanGrad,
  kTaskThrow,
  kIoTruncate,
  kTrainCrash,
  kHpoCrash,
  kBitFlipRead,
  kPartialRead,
  kConnDropAccept,
  kTornFrameRead,
  kSlowPeerRead,
  kConnDropWrite,
  kTornScrape,
};

/// The key each kind expects after the '@'; used for parse validation and
/// error messages.
const char* FaultKindName(FaultKind kind);
const char* FaultKindKey(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kNanGrad;
  int64_t at = 0;
};

/// Parses the AMS_FAULTS grammar. Rejects unknown kinds, wrong keys,
/// missing '@'/'=', non-numeric or negative ordinals, and empty entries.
Result<std::vector<Fault>> ParseFaultSpec(const std::string& spec);

/// Exception thrown by injected task faults (distinguishable from genuine
/// task exceptions in logs by its message prefix).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error("injected fault: " + what) {}
};

/// Process-wide injector. Thread-safe; each armed fault fires at most once.
class FaultInjector {
 public:
  /// Lazily initialized from AMS_FAULTS on first access. A malformed spec
  /// disables injection with a warning rather than failing the run.
  static FaultInjector& Get();

  /// Replaces the armed fault set (tests). Resets call counters.
  Status Configure(const std::string& spec);

  /// Clears all armed faults and counters (tests).
  void Disarm();

  /// True when any fault of any kind is still armed (cheap pre-check for
  /// hot loops).
  bool AnyArmed() const { return armed_count_.load(std::memory_order_relaxed) > 0; }

  // Query points, one per fault kind. Epoch/trial ordinals are supplied by
  // the caller; task/write ordinals are process-wide call counts.
  bool ShouldCorruptGradient(int64_t epoch) { return Fire(FaultKind::kNanGrad, epoch); }
  bool ShouldTruncateWrite() { return FireCounted(FaultKind::kIoTruncate, &write_calls_); }

  /// Read-side faults fired at one shared process-wide read ordinal, so
  /// "the N-th read" means the same read for both kinds.
  struct ReadFaults {
    bool bit_flip = false;
    bool partial = false;
  };
  /// Called once per verified file read (robust::ReadFileVerified /
  /// ReadFileLenient); always advances the read ordinal.
  ReadFaults OnRead();

  bool ShouldCrashTraining(int64_t epoch) { return Fire(FaultKind::kTrainCrash, epoch); }
  bool ShouldCrashHpo(int64_t completed_trials) {
    return Fire(FaultKind::kHpoCrash, completed_trials);
  }

  /// Called once per accepted network connection; true = drop it on the
  /// floor before reading anything (conn_drop@accept).
  bool OnAccept() { return FireCounted(FaultKind::kConnDropAccept, &accept_calls_); }

  /// Network read faults fired at one shared process-wide frame-read
  /// ordinal, so "the N-th net read" means the same frame for both kinds.
  struct NetReadFaults {
    bool torn = false;
    bool slow = false;
  };
  /// Called once per network frame read in the server's read loop; always
  /// advances the net-read ordinal.
  NetReadFaults OnNetRead();

  /// Called once per response write in the server's write path; true =
  /// drop the connection instead of writing (conn_drop@net_write).
  bool OnNetWrite() { return FireCounted(FaultKind::kConnDropWrite, &net_write_calls_); }

  /// Called once per admin-plane response write (the serve layer installs
  /// this as obs::AdminServer's write-fault hook); true = tear the scrape
  /// (torn_scrape@admin).
  bool OnAdminScrape() { return FireCounted(FaultKind::kTornScrape, &admin_calls_); }

  /// Throws InjectedFault when a task_throw fault matches this (process-wide
  /// ordinal-counted) task entry.
  void MaybeThrowTask();

 private:
  FaultInjector() = default;

  struct ArmedFault {
    Fault fault;
    bool fired = false;
  };

  bool Fire(FaultKind kind, int64_t ordinal);
  bool FireCounted(FaultKind kind, std::atomic<int64_t>* counter);

  mutable std::mutex mu_;
  std::vector<ArmedFault> faults_;
  std::atomic<int64_t> armed_count_{0};
  std::atomic<int64_t> task_calls_{0};
  std::atomic<int64_t> write_calls_{0};
  std::atomic<int64_t> read_calls_{0};
  std::atomic<int64_t> accept_calls_{0};
  std::atomic<int64_t> net_read_calls_{0};
  std::atomic<int64_t> net_write_calls_{0};
  std::atomic<int64_t> admin_calls_{0};
};

}  // namespace ams::robust

#endif  // AMS_ROBUST_FAULTS_H_
