#include "robust/faults.h"

#include <cstdlib>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ams::robust {

namespace {

constexpr struct {
  FaultKind kind;
  const char* name;
  const char* key;
} kFaultTable[] = {
    {FaultKind::kNanGrad, "nan_grad", "epoch"},
    {FaultKind::kTaskThrow, "task_throw", "index"},
    {FaultKind::kIoTruncate, "io_truncate", "write"},
    {FaultKind::kTrainCrash, "train_crash", "epoch"},
    {FaultKind::kHpoCrash, "hpo_crash", "trial"},
    {FaultKind::kBitFlipRead, "bit_flip", "read"},
    {FaultKind::kPartialRead, "partial_read", "read"},
    {FaultKind::kConnDropAccept, "conn_drop", "accept"},
    {FaultKind::kTornFrameRead, "torn_frame", "net_read"},
    {FaultKind::kSlowPeerRead, "slow_peer", "net_read"},
    {FaultKind::kConnDropWrite, "conn_drop", "net_write"},
    {FaultKind::kTornScrape, "torn_scrape", "admin"},
};

obs::Counter& InjectedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Get().GetCounter("robust/faults_injected");
  return counter;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const auto& entry : kFaultTable) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

const char* FaultKindKey(FaultKind kind) {
  for (const auto& entry : kFaultTable) {
    if (entry.kind == kind) return entry.key;
  }
  return "?";
}

Result<std::vector<Fault>> ParseFaultSpec(const std::string& spec) {
  std::vector<Fault> faults;
  // ';' and ',' are interchangeable entry separators.
  std::vector<std::string> entries;
  for (const std::string& seg : SplitString(spec, ';')) {
    for (const std::string& raw : SplitString(seg, ',')) {
      entries.push_back(TrimString(raw));
    }
  }
  for (const std::string& entry : entries) {
    if (entry.empty()) {
      return Status::InvalidArgument("empty entry in fault spec: '" + spec +
                                     "'");
    }
    const size_t at_pos = entry.find('@');
    if (at_pos == std::string::npos) {
      return Status::InvalidArgument("fault entry missing '@': '" + entry +
                                     "'");
    }
    const std::string kind_name = entry.substr(0, at_pos);
    const std::string rest = entry.substr(at_pos + 1);
    const size_t eq_pos = rest.find('=');
    if (eq_pos == std::string::npos) {
      return Status::InvalidArgument("fault entry missing '=': '" + entry +
                                     "'");
    }
    const std::string key = rest.substr(0, eq_pos);
    const std::string value = rest.substr(eq_pos + 1);

    // A kind is identified by its (name, key) pair: `conn_drop` names two
    // distinct injection points, disambiguated by `accept` vs `net_write`.
    Fault fault;
    bool known = false;
    bool matched = false;
    std::string expected_keys;
    for (const auto& table_entry : kFaultTable) {
      if (kind_name != table_entry.name) continue;
      known = true;
      if (!expected_keys.empty()) expected_keys += "' or '";
      expected_keys += table_entry.key;
      if (key == table_entry.key) {
        fault.kind = table_entry.kind;
        matched = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown fault kind: '" + kind_name +
                                     "'");
    }
    if (!matched) {
      return Status::InvalidArgument("fault '" + kind_name +
                                     "' expects key '" + expected_keys +
                                     "', got '" + key + "'");
    }
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("fault ordinal must be a non-negative "
                                     "integer: '" +
                                     entry + "'");
    }
    fault.at = std::strtoll(value.c_str(), nullptr, 10);
    faults.push_back(fault);
  }
  return faults;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    const char* env = std::getenv("AMS_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      Status status = instance->Configure(env);
      if (!status.ok()) {
        AMS_LOG(Warning) << "ignoring malformed AMS_FAULTS: " << status;
      } else {
        AMS_LOG(Info) << "fault injection armed: " << env;
      }
    }
    return instance;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  AMS_ASSIGN_OR_RETURN(std::vector<Fault> faults, ParseFaultSpec(spec));
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  for (const Fault& fault : faults) faults_.push_back({fault, false});
  armed_count_.store(static_cast<int64_t>(faults_.size()),
                     std::memory_order_relaxed);
  task_calls_.store(0, std::memory_order_relaxed);
  write_calls_.store(0, std::memory_order_relaxed);
  read_calls_.store(0, std::memory_order_relaxed);
  accept_calls_.store(0, std::memory_order_relaxed);
  net_read_calls_.store(0, std::memory_order_relaxed);
  net_write_calls_.store(0, std::memory_order_relaxed);
  admin_calls_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  task_calls_.store(0, std::memory_order_relaxed);
  write_calls_.store(0, std::memory_order_relaxed);
  read_calls_.store(0, std::memory_order_relaxed);
  accept_calls_.store(0, std::memory_order_relaxed);
  net_read_calls_.store(0, std::memory_order_relaxed);
  net_write_calls_.store(0, std::memory_order_relaxed);
  admin_calls_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::Fire(FaultKind kind, int64_t ordinal) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (ArmedFault& armed : faults_) {
    if (armed.fired || armed.fault.kind != kind) continue;
    if (armed.fault.at != ordinal) continue;
    armed.fired = true;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    InjectedCounter().Increment();
    obs::MetricsRegistry::Get()
        .GetCounter("robust/faults_injected", {{"kind", FaultKindName(kind)}})
        .Increment();
    AMS_LOG(Warning) << "injecting fault " << FaultKindName(kind) << "@"
                     << FaultKindKey(kind) << "=" << ordinal;
    // Flight-recorder payload: a = ordinal (the AMS_LOG line above also
    // lands in the ring via the warn observer; this event survives even if
    // log capture is off).
    obs::FlightRecorder::Get().Record(
        obs::FlightEventKind::kFault, FaultKindName(kind),
        static_cast<uint64_t>(ordinal), 0);
    return true;
  }
  return false;
}

bool FaultInjector::FireCounted(FaultKind kind,
                                std::atomic<int64_t>* counter) {
  // The ordinal counts every call, armed or not, so "the N-th write" means
  // the same write whether or not other faults are configured.
  const int64_t ordinal = counter->fetch_add(1, std::memory_order_relaxed);
  return Fire(kind, ordinal);
}

FaultInjector::ReadFaults FaultInjector::OnRead() {
  // One shared ordinal for both read kinds, advanced on every call (armed or
  // not) so "the N-th read" is stable across fault configurations.
  const int64_t ordinal = read_calls_.fetch_add(1, std::memory_order_relaxed);
  ReadFaults faults;
  faults.bit_flip = Fire(FaultKind::kBitFlipRead, ordinal);
  faults.partial = Fire(FaultKind::kPartialRead, ordinal);
  return faults;
}

FaultInjector::NetReadFaults FaultInjector::OnNetRead() {
  // One shared ordinal for both net-read kinds, advanced on every call
  // (armed or not) so "the N-th net read" is stable across configurations.
  const int64_t ordinal =
      net_read_calls_.fetch_add(1, std::memory_order_relaxed);
  NetReadFaults faults;
  faults.torn = Fire(FaultKind::kTornFrameRead, ordinal);
  faults.slow = Fire(FaultKind::kSlowPeerRead, ordinal);
  return faults;
}

void FaultInjector::MaybeThrowTask() {
  if (FireCounted(FaultKind::kTaskThrow, &task_calls_)) {
    throw InjectedFault("task_throw");
  }
}

}  // namespace ams::robust
