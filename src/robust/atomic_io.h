// Crash-safe file artifacts: atomic writes with a CRC32 footer.
//
// AtomicWriteFile stages the contents in a temp file next to the target,
// flushes, close-checks, then renames into place, so readers never observe
// a half-written file under the final name (POSIX rename atomicity within a
// filesystem). A trailing CRC32 footer covers the payload so that torn
// writes that do slip through (power loss between write and rename of a
// reused name, manual truncation, bit rot) are detected at read time, and
// callers fall back to regeneration instead of consuming garbage.
//
// Footer format: the last 16 bytes of the file are "#crc32:XXXXXXXX\n"
// with the IEEE CRC-32 of every preceding byte in lowercase hex. The '#'
// prefix keeps the footer inert for CSV-style line parsers.
#ifndef AMS_ROBUST_ATOMIC_IO_H_
#define AMS_ROBUST_ATOMIC_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/csv.h"
#include "util/status.h"

namespace ams::robust {

/// IEEE 802.3 CRC-32 (the zlib/PNG polynomial), table-driven.
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(std::string_view data);

/// The 16-byte footer for `payload`.
std::string CrcFooter(std::string_view payload);

/// Writes payload + CRC footer to `path` via temp file + flush +
/// close-check + rename. An armed io_truncate fault halves the payload
/// before writing (the footer then fails verification at read time).
Status AtomicWriteFile(const std::string& path, std::string_view payload);

/// Reads `path`, verifies and strips the CRC footer. kIoError when the
/// footer is missing or the checksum mismatches.
Result<std::string> ReadFileVerified(const std::string& path);

/// Like ReadFileVerified, but a file without a footer is returned as-is
/// (for artifacts that predate the footer or come from external tools);
/// a present-but-mismatching footer is still an error.
Result<std::string> ReadFileLenient(const std::string& path);

/// CSV conveniences over the atomic writer / verified readers.
Status WriteCsvAtomic(const std::string& path, const CsvTable& table);
Result<CsvTable> ReadCsvVerified(const std::string& path);
Result<CsvTable> ReadCsvLenient(const std::string& path);

}  // namespace ams::robust

#endif  // AMS_ROBUST_ATOMIC_IO_H_
