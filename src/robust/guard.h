// Guarded training: non-finite loss/gradient detection with a configurable
// recovery policy, shared by AMS training, the neural TrainLoop and (in
// spirit) GBDT's per-round checks.
//
// Policies (AMS_GUARD_POLICY=abort|skip|rollback, default abort):
//   abort     return an error, preserving the historical behavior;
//   skip      drop this epoch's update and move on (the optimizer never
//             steps on the poisoned gradient);
//   rollback  restore the last-good snapshot — parameter values, optimizer
//             moments and the dropout RNG stream — and re-run the epoch.
//             Because the RNG is rewound too, a retry after a one-shot
//             injected fault recomputes the exact gradient the fault-free
//             run would have produced, keeping training bit-identical.
//             Persistent divergence (a genuinely unstable step) halves the
//             learning rate from the second retry of the same epoch on, and
//             aborts once `max_retries` is exhausted.
//
// Counters: robust/nan_detected, robust/skipped_steps, robust/rollbacks,
// robust/retries_exhausted.
#ifndef AMS_ROBUST_GUARD_H_
#define AMS_ROBUST_GUARD_H_

#include <string>
#include <vector>

#include "la/matrix.h"
#include "optim/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace ams::robust {

enum class GuardPolicy { kAbort, kSkipStep, kRollback };

/// "abort" | "skip" | "rollback".
Result<GuardPolicy> ParseGuardPolicy(const std::string& name);

struct GuardOptions {
  GuardPolicy policy = GuardPolicy::kAbort;
  /// Rollback retries per epoch before giving up.
  int max_retries = 3;
  /// LR multiplier applied from the second retry of the same epoch on.
  double retry_lr_decay = 0.5;

  /// Policy from AMS_GUARD_POLICY (parsed once per process); unset or
  /// malformed values keep the abort default.
  static GuardOptions FromEnv();
};

/// Per-Fit guard. Call BeginEpoch at the top of every (possibly retried)
/// epoch and GuardStep after the backward pass; act on the returned Action.
class TrainGuard {
 public:
  /// `optimizer` owns the guarded parameters; `rng` is the training-time
  /// noise stream (dropout) to rewind on rollback, or nullptr when training
  /// is noise-free.
  TrainGuard(const GuardOptions& options, optim::Optimizer* optimizer,
             Rng* rng);

  enum class Action {
    kProceed,     // gradients are finite: clip + step as usual
    kSkipStep,    // drop the update, advance to the next epoch
    kRetryEpoch,  // state rolled back: re-run the same epoch
    kAbort,       // unrecoverable: return AbortStatus()
  };

  /// Snapshots last-good state when entering `epoch` for the first time
  /// (no-op for non-rollback policies and for retries of the same epoch,
  /// whose state was just restored from that snapshot).
  void BeginEpoch(int64_t epoch);

  /// Applies any armed nan_grad fault for `epoch`, then validates the loss
  /// and every parameter gradient. `loss_finite` is the caller's check on
  /// the forward value (when it is false the backward pass was skipped).
  Action GuardStep(int64_t epoch, bool loss_finite);

  /// The error to return when GuardStep said kAbort.
  Status AbortStatus() const { return Status::ComputeError(abort_message_); }

 private:
  void Snapshot();
  void Restore();

  GuardOptions options_;
  optim::Optimizer* optimizer_;
  Rng* rng_;
  int64_t snapshot_epoch_ = -1;
  int retries_this_epoch_ = 0;
  std::vector<la::Matrix> snapshot_params_;
  optim::OptimizerState snapshot_opt_state_;
  RngState snapshot_rng_state_;
  std::string abort_message_;
};

}  // namespace ams::robust

#endif  // AMS_ROBUST_GUARD_H_
