#include "robust/guard.h"

#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "robust/faults.h"
#include "util/logging.h"

namespace ams::robust {

using la::Matrix;

Result<GuardPolicy> ParseGuardPolicy(const std::string& name) {
  if (name == "abort") return GuardPolicy::kAbort;
  if (name == "skip") return GuardPolicy::kSkipStep;
  if (name == "rollback") return GuardPolicy::kRollback;
  return Status::InvalidArgument("unknown guard policy: '" + name +
                                 "' (want abort|skip|rollback)");
}

GuardOptions GuardOptions::FromEnv() {
  static GuardPolicy env_policy = [] {
    const char* env = std::getenv("AMS_GUARD_POLICY");
    if (env == nullptr || env[0] == '\0') return GuardPolicy::kAbort;
    auto parsed = ParseGuardPolicy(env);
    if (!parsed.ok()) {
      AMS_LOG(Warning) << "ignoring malformed AMS_GUARD_POLICY: "
                       << parsed.status();
      return GuardPolicy::kAbort;
    }
    return parsed.ValueOrDie();
  }();
  GuardOptions options;
  options.policy = env_policy;
  return options;
}

TrainGuard::TrainGuard(const GuardOptions& options,
                       optim::Optimizer* optimizer, Rng* rng)
    : options_(options), optimizer_(optimizer), rng_(rng) {}

void TrainGuard::BeginEpoch(int64_t epoch) {
  if (options_.policy != GuardPolicy::kRollback) return;
  if (epoch == snapshot_epoch_) return;  // retry: snapshot still current
  snapshot_epoch_ = epoch;
  retries_this_epoch_ = 0;
  Snapshot();
}

void TrainGuard::Snapshot() {
  snapshot_params_.clear();
  snapshot_params_.reserve(optimizer_->params().size());
  for (const auto& p : optimizer_->params()) {
    snapshot_params_.push_back(p.value());
  }
  snapshot_opt_state_ = optimizer_->SaveState();
  if (rng_ != nullptr) snapshot_rng_state_ = rng_->SaveState();
}

void TrainGuard::Restore() {
  // Tensor copies share their node, so writing through a copied handle
  // restores the optimizer's actual parameters.
  std::vector<tensor::Tensor> params = optimizer_->params();
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot_params_[i];
  }
  Status status = optimizer_->RestoreState(snapshot_opt_state_);
  AMS_DCHECK(status.ok(), "rollback restore failed");
  if (rng_ != nullptr) rng_->LoadState(snapshot_rng_state_);
}

TrainGuard::Action TrainGuard::GuardStep(int64_t epoch, bool loss_finite) {
  if (loss_finite && FaultInjector::Get().ShouldCorruptGradient(epoch)) {
    // Poison one gradient entry the way a real overflow would: the guard
    // below must catch it before the optimizer consumes it.
    for (const auto& p : optimizer_->params()) {
      if (p.rows() == 0 || p.cols() == 0) continue;
      Matrix poison = Matrix::Zeros(p.rows(), p.cols());
      poison(0, 0) = std::numeric_limits<double>::quiet_NaN();
      p.node()->AccumulateGrad(poison);
      break;
    }
  }

  bool finite = loss_finite;
  if (finite) {
    for (const auto& p : optimizer_->params()) {
      if (!p.grad().AllFinite()) {
        finite = false;
        break;
      }
    }
  }
  if (finite) return Action::kProceed;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("robust/nan_detected").Increment();

  switch (options_.policy) {
    case GuardPolicy::kAbort:
      abort_message_ = "training diverged (non-finite loss/gradient at epoch " +
                       std::to_string(epoch) + ")";
      return Action::kAbort;
    case GuardPolicy::kSkipStep:
      registry.GetCounter("robust/skipped_steps").Increment();
      AMS_LOG(Warning) << "non-finite gradient at epoch " << epoch
                       << ": skipping step";
      return Action::kSkipStep;
    case GuardPolicy::kRollback:
      break;
  }

  if (retries_this_epoch_ >= options_.max_retries) {
    registry.GetCounter("robust/retries_exhausted").Increment();
    abort_message_ = "training diverged at epoch " + std::to_string(epoch) +
                     "; " + std::to_string(options_.max_retries) +
                     " rollback retries exhausted";
    return Action::kAbort;
  }
  ++retries_this_epoch_;
  Restore();
  // The first retry replays the epoch unchanged (enough to recover from a
  // transient one-shot fault bit-identically); a second failure at the same
  // epoch means the step itself is unstable, so decay the LR.
  if (retries_this_epoch_ >= 2) {
    optimizer_->set_learning_rate(optimizer_->learning_rate() *
                                  options_.retry_lr_decay);
  }
  registry.GetCounter("robust/rollbacks").Increment();
  AMS_LOG(Warning) << "non-finite gradient at epoch " << epoch
                   << ": rolled back (retry " << retries_this_epoch_ << "/"
                   << options_.max_retries << ", lr="
                   << optimizer_->learning_rate() << ")";
  return Action::kRetryEpoch;
}

}  // namespace ams::robust
