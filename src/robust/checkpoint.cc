#include "robust/checkpoint.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "robust/atomic_io.h"
#include "util/logging.h"

namespace ams::robust {

namespace {

constexpr char kMagic[] = "AMSCKPT1";
constexpr size_t kMagicSize = sizeof(kMagic) - 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over the serialized blob.
class Reader {
 public:
  explicit Reader(const std::string& blob) : blob_(blob) {}

  Result<uint32_t> U32() {
    AMS_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(blob_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    AMS_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(blob_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> Double() {
    AMS_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> String() {
    AMS_ASSIGN_OR_RETURN(uint32_t size, U32());
    AMS_RETURN_NOT_OK(Need(size));
    std::string s = blob_.substr(pos_, size);
    pos_ += size;
    return s;
  }

  bool AtEnd() const { return pos_ == blob_.size(); }
  size_t Remaining() const { return blob_.size() - pos_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > blob_.size()) {
      return Status::InvalidArgument("truncated checkpoint blob");
    }
    return Status::OK();
  }

  const std::string& blob_;
  size_t pos_ = 0;
};

}  // namespace

void Checkpoint::PutRngState(const std::string& key, const RngState& state) {
  la::Matrix m(1, 6);
  for (int i = 0; i < 4; ++i) {
    double d;
    std::memcpy(&d, &state.s[i], sizeof(d));
    m(0, i) = d;
  }
  m(0, 4) = state.has_cached_normal ? 1.0 : 0.0;
  m(0, 5) = state.cached_normal;
  tensors[key] = std::move(m);
}

Result<RngState> Checkpoint::GetRngState(const std::string& key) const {
  auto it = tensors.find(key);
  if (it == tensors.end()) {
    return Status::NotFound("checkpoint has no RNG state '" + key + "'");
  }
  const la::Matrix& m = it->second;
  if (m.rows() != 1 || m.cols() != 6) {
    return Status::InvalidArgument("malformed RNG state '" + key + "'");
  }
  RngState state;
  for (int i = 0; i < 4; ++i) {
    double d = m(0, i);
    std::memcpy(&state.s[i], &d, sizeof(d));
  }
  state.has_cached_normal = m(0, 4) != 0.0;
  state.cached_normal = m(0, 5);
  return state;
}

std::string SerializeCheckpoint(const Checkpoint& checkpoint) {
  std::string out(kMagic, kMagicSize);
  AppendU32(&out, static_cast<uint32_t>(checkpoint.strings.size()));
  for (const auto& [key, value] : checkpoint.strings) {
    AppendString(&out, key);
    AppendString(&out, value);
  }
  AppendU32(&out, static_cast<uint32_t>(checkpoint.scalars.size()));
  for (const auto& [key, value] : checkpoint.scalars) {
    AppendString(&out, key);
    AppendDouble(&out, value);
  }
  AppendU32(&out, static_cast<uint32_t>(checkpoint.tensors.size()));
  for (const auto& [key, value] : checkpoint.tensors) {
    AppendString(&out, key);
    AppendU32(&out, static_cast<uint32_t>(value.rows()));
    AppendU32(&out, static_cast<uint32_t>(value.cols()));
    for (int i = 0; i < value.size(); ++i) {
      AppendDouble(&out, value.data()[i]);
    }
  }
  return out;
}

Result<Checkpoint> DeserializeCheckpoint(const std::string& blob) {
  if (blob.size() < kMagicSize ||
      blob.compare(0, kMagicSize, kMagic) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  const std::string body = blob.substr(kMagicSize);
  Reader reader(body);
  Checkpoint checkpoint;
  AMS_ASSIGN_OR_RETURN(uint32_t num_strings, reader.U32());
  for (uint32_t i = 0; i < num_strings; ++i) {
    AMS_ASSIGN_OR_RETURN(std::string key, reader.String());
    AMS_ASSIGN_OR_RETURN(std::string value, reader.String());
    checkpoint.strings[std::move(key)] = std::move(value);
  }
  AMS_ASSIGN_OR_RETURN(uint32_t num_scalars, reader.U32());
  for (uint32_t i = 0; i < num_scalars; ++i) {
    AMS_ASSIGN_OR_RETURN(std::string key, reader.String());
    AMS_ASSIGN_OR_RETURN(double value, reader.Double());
    checkpoint.scalars[std::move(key)] = value;
  }
  AMS_ASSIGN_OR_RETURN(uint32_t num_tensors, reader.U32());
  for (uint32_t i = 0; i < num_tensors; ++i) {
    AMS_ASSIGN_OR_RETURN(std::string key, reader.String());
    AMS_ASSIGN_OR_RETURN(uint32_t rows, reader.U32());
    AMS_ASSIGN_OR_RETURN(uint32_t cols, reader.U32());
    if (rows > (1u << 24) || cols > (1u << 24)) {
      return Status::InvalidArgument("implausible tensor shape in checkpoint");
    }
    // Bound the allocation by the bytes actually present: a corrupted shape
    // field must not make the reader try to materialize terabytes.
    if (static_cast<uint64_t>(rows) * cols * 8 > reader.Remaining()) {
      return Status::InvalidArgument("truncated tensor payload in checkpoint");
    }
    la::Matrix m(static_cast<int>(rows), static_cast<int>(cols));
    for (int j = 0; j < m.size(); ++j) {
      AMS_ASSIGN_OR_RETURN(double value, reader.Double());
      m.data()[j] = value;
    }
    checkpoint.tensors[std::move(key)] = std::move(m);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }
  return checkpoint;
}

Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint) {
  obs::MetricsRegistry::Get().GetCounter("robust/checkpoint_writes")
      .Increment();
  return AtomicWriteFile(path, SerializeCheckpoint(checkpoint));
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  auto contents = ReadFileVerified(path);
  if (!contents.ok()) {
    if (std::filesystem::exists(path)) {
      obs::MetricsRegistry::Get().GetCounter("robust/checkpoint_corrupt")
          .Increment();
    }
    return contents.status();
  }
  auto checkpoint = DeserializeCheckpoint(contents.ValueOrDie());
  if (!checkpoint.ok()) {
    obs::MetricsRegistry::Get().GetCounter("robust/checkpoint_corrupt")
        .Increment();
    return checkpoint.status();
  }
  obs::MetricsRegistry::Get().GetCounter("robust/checkpoint_loads")
      .Increment();
  return checkpoint;
}

std::string CheckpointDirFromEnv() {
  const char* env = std::getenv("AMS_CHECKPOINT_DIR");
  if (env == nullptr || env[0] == '\0') return "";
  std::error_code ec;
  std::filesystem::create_directories(env, ec);
  return env;
}

}  // namespace ams::robust
