// Bounded retry-with-backoff for throwing tasks.
//
// Wraps a unit of work (an HPO trial, an experiment model fit) so that a
// transient exception — injected via task_throw or genuine — is retried a
// bounded number of times with exponential backoff instead of killing the
// whole run. Deterministic work retried after a transient failure produces
// the same result it would have produced without the failure, so recovery
// is invisible in the output.
//
// Counters: robust/task_throws (every caught exception),
// robust/task_retries (every re-attempt), robust/retries_exhausted.
#ifndef AMS_ROBUST_RETRY_H_
#define AMS_ROBUST_RETRY_H_

#include <functional>
#include <future>
#include <utility>

#include "par/thread_pool.h"
#include "util/status.h"

namespace ams::robust {

struct RetryOptions {
  /// Total attempts (first try included).
  int max_attempts = 3;
  /// Sleep before attempt k (1-based retries) is base_backoff_ms * 2^(k-1).
  int base_backoff_ms = 1;
};

/// Runs `fn`, retrying on any thrown exception. Each entry (including
/// retries) passes through the fault injector's task_throw point. Returns
/// OK on the first successful attempt, or an Internal status carrying the
/// last exception's message once attempts are exhausted.
Status RunWithRetry(const std::function<void()>& fn,
                    const RetryOptions& options = RetryOptions());

/// Submits a retry-wrapped task to `pool`; the future resolves to the
/// RunWithRetry status (never throws).
template <typename Fn>
std::future<Status> SubmitWithRetry(par::ThreadPool& pool, Fn fn,
                                    RetryOptions options = RetryOptions()) {
  return pool.Submit([fn = std::move(fn), options]() {
    return RunWithRetry(fn, options);
  });
}

}  // namespace ams::robust

#endif  // AMS_ROBUST_RETRY_H_
