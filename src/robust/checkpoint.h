// Generic binary checkpoints for resumable training and HPO.
//
// A Checkpoint is three typed key-value maps (strings, doubles, matrices)
// serialized to a length-prefixed binary blob and persisted through the
// atomic writer, so a checkpoint file is either a complete, CRC-verified
// snapshot or it is rejected at load time — a kill at any point leaves at
// worst the previous checkpoint on disk. Doubles and matrix payloads are
// stored as raw little-endian IEEE-754 bytes, which makes save/load an
// exact bit-level round-trip (required for bit-identical resume).
#ifndef AMS_ROBUST_CHECKPOINT_H_
#define AMS_ROBUST_CHECKPOINT_H_

#include <map>
#include <string>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace ams::robust {

struct Checkpoint {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> scalars;
  std::map<std::string, la::Matrix> tensors;

  /// RNG state round-trip: the four 64-bit state words are stored bit-cast
  /// as doubles in a 1x6 matrix under `key` (exact, since matrix payloads
  /// are raw bytes).
  void PutRngState(const std::string& key, const RngState& state);
  Result<RngState> GetRngState(const std::string& key) const;
};

/// Serialization to/from the in-memory blob (exposed for tests).
std::string SerializeCheckpoint(const Checkpoint& checkpoint);
Result<Checkpoint> DeserializeCheckpoint(const std::string& blob);

/// Atomic, CRC-protected persistence. LoadCheckpoint fails (rather than
/// returning partial data) on a missing, truncated or corrupt file; callers
/// treat that as "no checkpoint" and start fresh.
Status SaveCheckpoint(const std::string& path, const Checkpoint& checkpoint);
Result<Checkpoint> LoadCheckpoint(const std::string& path);

/// AMS_CHECKPOINT_DIR, or "" when checkpointing is off. Creates the
/// directory on first use.
std::string CheckpointDirFromEnv();

}  // namespace ams::robust

#endif  // AMS_ROBUST_CHECKPOINT_H_
