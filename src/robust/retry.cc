#include "robust/retry.h"

#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "robust/faults.h"
#include "util/logging.h"

namespace ams::robust {

Status RunWithRetry(const std::function<void()>& fn,
                    const RetryOptions& options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  std::string last_error;
  const int attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      registry.GetCounter("robust/task_retries").Increment();
      const auto backoff = std::chrono::milliseconds(
          static_cast<int64_t>(options.base_backoff_ms) << (attempt - 1));
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
    try {
      FaultInjector::Get().MaybeThrowTask();
      fn();
      return Status::OK();
    } catch (const std::exception& e) {
      registry.GetCounter("robust/task_throws").Increment();
      last_error = e.what();
      AMS_LOG(Warning) << "task attempt " << attempt + 1 << "/" << attempts
                       << " threw: " << last_error;
    } catch (...) {
      registry.GetCounter("robust/task_throws").Increment();
      last_error = "unknown exception";
    }
  }
  registry.GetCounter("robust/retries_exhausted").Increment();
  return Status::Internal("task failed after " + std::to_string(attempts) +
                          " attempts; last error: " + last_error);
}

}  // namespace ams::robust
