#include "robust/atomic_io.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "robust/faults.h"
#include "util/logging.h"

namespace ams::robust {

namespace {

constexpr size_t kFooterSize = 16;  // "#crc32:XXXXXXXX\n"
constexpr char kFooterPrefix[] = "#crc32:";

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

obs::Counter& CrcFailureCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Get().GetCounter("robust/crc_failures");
  return counter;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  std::string contents = oss.str();
  // Injected read-side faults corrupt the bytes as if the medium (or a
  // torn page) had; the CRC footer checks downstream must detect both.
  const FaultInjector::ReadFaults faults = FaultInjector::Get().OnRead();
  if (faults.partial) contents.resize(contents.size() / 2);
  if (faults.bit_flip && !contents.empty()) {
    contents[contents.size() / 2] ^= 0x01;
  }
  return contents;
}

/// True when `contents` ends with a well-formed footer (hex validity is
/// checked by the CRC comparison).
bool HasFooter(const std::string& contents) {
  return contents.size() >= kFooterSize &&
         contents.compare(contents.size() - kFooterSize,
                          sizeof(kFooterPrefix) - 1, kFooterPrefix) == 0 &&
         contents.back() == '\n';
}

/// Verifies and strips the footer in place.
Status StripFooter(std::string* contents, const std::string& path) {
  const size_t payload_size = contents->size() - kFooterSize;
  const std::string hex = contents->substr(
      payload_size + sizeof(kFooterPrefix) - 1, 8);
  uint32_t stored = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else {
      CrcFailureCounter().Increment();
      return Status::IoError("malformed CRC footer in " + path);
    }
    stored = (stored << 4) | static_cast<uint32_t>(digit);
  }
  const uint32_t actual =
      Crc32(std::string_view(contents->data(), payload_size));
  if (actual != stored) {
    CrcFailureCounter().Increment();
    return Status::IoError("CRC mismatch in " + path +
                           " (file truncated or corrupt)");
  }
  contents->resize(payload_size);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return Crc32(data.data(), data.size()); }

std::string CrcFooter(std::string_view payload) {
  char buf[kFooterSize + 1];
  std::snprintf(buf, sizeof(buf), "#crc32:%08x\n", Crc32(payload));
  return std::string(buf, kFooterSize);
}

Status AtomicWriteFile(const std::string& path, std::string_view payload) {
  static obs::Counter& write_counter =
      obs::MetricsRegistry::Get().GetCounter("robust/atomic_writes");
  write_counter.Increment();

  // The footer is computed over the full payload before any injected
  // truncation, exactly like a real torn write: the checksum promises more
  // bytes than the file holds, so readers reject it.
  const std::string footer = CrcFooter(payload);
  std::string_view to_write = payload;
  if (FaultInjector::Get().ShouldTruncateWrite()) {
    to_write = payload.substr(0, payload.size() / 2);
  }

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp_path);
    out.write(to_write.data(), static_cast<std::streamsize>(to_write.size()));
    out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IoError("write failed: " + tmp_path);
    }
    out.close();
    if (out.fail()) {
      std::remove(tmp_path.c_str());
      return Status::IoError("close failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("rename failed: " + tmp_path + " -> " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileVerified(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
  if (!HasFooter(contents)) {
    CrcFailureCounter().Increment();
    return Status::IoError("missing CRC footer in " + path);
  }
  AMS_RETURN_NOT_OK(StripFooter(&contents, path));
  return contents;
}

Result<std::string> ReadFileLenient(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
  if (HasFooter(contents)) {
    AMS_RETURN_NOT_OK(StripFooter(&contents, path));
  }
  return contents;
}

Status WriteCsvAtomic(const std::string& path, const CsvTable& table) {
  return AtomicWriteFile(path, CsvToString(table));
}

Result<CsvTable> ReadCsvVerified(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(std::string contents, ReadFileVerified(path));
  return ParseCsv(contents);
}

Result<CsvTable> ReadCsvLenient(const std::string& path) {
  AMS_ASSIGN_OR_RETURN(std::string contents, ReadFileLenient(path));
  return ParseCsv(contents);
}

}  // namespace ams::robust
