// Gradient-boosted regression trees in the XGBoost style (Chen & Guestrin,
// KDD 2016): second-order (gradient/hessian) objective, exact greedy split
// enumeration, L2-regularized leaf weights, shrinkage, min-child-weight and
// min-split-gain pruning, and row/column subsampling.
//
// Used as the "XGBoost" baseline of Tables I-V with objective reg:linear
// (squared error), as in the paper.
#ifndef AMS_GBDT_GBDT_H_
#define AMS_GBDT_GBDT_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace ams::gbdt {

struct GbdtOptions {
  int num_rounds = 100;
  double learning_rate = 0.1;  // eta / shrinkage
  int max_depth = 3;
  /// Minimum sum of hessians in a child (with squared error, the child's
  /// sample count).
  double min_child_weight = 1.0;
  /// L2 regularization on leaf weights (XGBoost lambda).
  double reg_lambda = 1.0;
  /// Minimum gain required to make a split (XGBoost gamma).
  double min_split_gain = 0.0;
  /// Fraction of rows sampled per tree.
  double subsample = 1.0;
  /// Fraction of features sampled per tree.
  double colsample = 1.0;
  /// Stop when validation RMSE has not improved in this many rounds
  /// (0 = disabled; requires validation data in Fit).
  int early_stopping_rounds = 0;
  uint64_t seed = 42;
};

/// A single regression tree, stored as a flat node array.
class RegressionTree {
 public:
  struct Node {
    int feature = -1;        // split feature; -1 for leaves
    double threshold = 0.0;  // go left when x[feature] < threshold
    int left = -1;
    int right = -1;
    double weight = 0.0;     // leaf output
    double gain = 0.0;       // split gain (0 for leaves)
    bool is_leaf = true;
  };

  /// Grows a tree on the given rows against gradients/hessians.
  /// `feature_subset` lists the candidate feature indices for this tree.
  static RegressionTree Grow(const la::Matrix& x,
                             const std::vector<double>& grad,
                             const std::vector<double>& hess,
                             const std::vector<int>& rows,
                             const std::vector<int>& feature_subset,
                             const GbdtOptions& options);

  /// Rebuilds a tree from a node array (artifact loading, see src/serve).
  /// Rejects arrays where any split node's feature is outside
  /// [0, num_features) or whose children do not point strictly forward in
  /// the array — the invariant Grow maintains, and what guarantees
  /// PredictRow terminates and stays in bounds on untrusted input.
  static Result<RegressionTree> FromNodes(std::vector<Node> nodes,
                                          int num_features);

  double PredictRow(const double* row) const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  /// Maximum root-to-leaf depth (root = 0).
  int Depth() const;
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  int GrowNode(const la::Matrix& x, const std::vector<double>& grad,
               const std::vector<double>& hess, std::vector<int>* rows,
               const std::vector<int>& feature_subset,
               const GbdtOptions& options, int depth);
  std::vector<Node> nodes_;
};

/// The boosted ensemble.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = {}) : options_(options) {}

  /// Trains on (x, y); optional validation pair enables early stopping.
  Status Fit(const la::Matrix& x, const la::Matrix& y,
             const la::Matrix* valid_x = nullptr,
             const la::Matrix* valid_y = nullptr);

  Result<std::vector<double>> Predict(const la::Matrix& x) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  double base_score() const { return base_score_; }
  int num_features() const { return num_features_; }
  const GbdtOptions& options() const { return options_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }

  /// Reassembles a fitted ensemble from its serialized parts (artifact
  /// loading); trees must already have passed RegressionTree::FromNodes
  /// validation against the same `num_features`.
  static Result<GbdtRegressor> FromParts(GbdtOptions options,
                                         double base_score, int num_features,
                                         std::vector<RegressionTree> trees);

  /// Total split-gain importance per feature (sums over all trees). Requires
  /// a fitted model.
  std::vector<double> FeatureImportance() const;

 private:
  GbdtOptions options_;
  double base_score_ = 0.0;
  int num_features_ = 0;
  std::vector<RegressionTree> trees_;
};

}  // namespace ams::gbdt

#endif  // AMS_GBDT_GBDT_H_
