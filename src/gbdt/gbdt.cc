#include "gbdt/gbdt.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace ams::gbdt {

using la::Matrix;

namespace {

/// Leaf weight under the second-order objective: -G / (H + lambda).
/// A non-finite statistic (overflowed gradients, lambda = -H) yields a
/// neutral 0.0 leaf instead of poisoning every later prediction.
double LeafWeight(double grad_sum, double hess_sum, double reg_lambda) {
  const double w = -grad_sum / (hess_sum + reg_lambda);
  if (!std::isfinite(w)) {
    static obs::Counter& nan_counter =
        obs::MetricsRegistry::Get().GetCounter("robust/nan_detected");
    nan_counter.Increment();
    return 0.0;
  }
  return w;
}

/// Score term G^2 / (H + lambda) used in the gain formula. Non-finite
/// terms score 0.0 so a poisoned partition cannot win the split search.
double ScoreTerm(double grad_sum, double hess_sum, double reg_lambda) {
  const double s = grad_sum * grad_sum / (hess_sum + reg_lambda);
  return std::isfinite(s) ? s : 0.0;
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = -std::numeric_limits<double>::infinity();
};

/// Nodes whose rows x candidate-features product is below this scan their
/// features on the calling thread; deep small nodes dominate tree growth
/// and would drown in pool handoffs.
constexpr int64_t kParallelSplitWork = 8192;

/// Per-depth breakdown of "gbdt/splits_evaluated". Depths >= kDepthBuckets
/// share one "8+" bucket to bound label cardinality; the pointer array is
/// interned once (thread-safe static init) so the per-node update stays a
/// single cached atomic add.
constexpr int kDepthBuckets = 8;

obs::Counter& SplitCounterForDepth(int depth) {
  static const std::array<obs::Counter*, kDepthBuckets + 1> by_depth = [] {
    std::array<obs::Counter*, kDepthBuckets + 1> counters{};
    for (int d = 0; d <= kDepthBuckets; ++d) {
      const std::string label =
          d < kDepthBuckets ? std::to_string(d)
                            : std::to_string(kDepthBuckets) + "+";
      counters[d] = &obs::MetricsRegistry::Get().GetCounter(
          "gbdt/splits_evaluated", {{"depth", label}});
    }
    return counters;
  }();
  return *by_depth[std::min(std::max(depth, 0), kDepthBuckets)];
}

/// Best split and split count for one candidate feature. The row order is
/// fixed by (value, row index), so the scan — and its floating-point
/// prefix sums — is identical no matter which thread runs it or what state
/// any shared scratch buffer was left in.
BestSplit ScanFeature(const Matrix& x, const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<int>& rows, int feature,
                      double grad_sum, double hess_sum, double parent_score,
                      const GbdtOptions& options,
                      uint64_t* splits_evaluated) {
  std::vector<int> sorted = rows;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    const double xa = x(a, feature);
    const double xb = x(b, feature);
    if (xa != xb) return xa < xb;
    return a < b;
  });
  BestSplit best;
  double left_grad = 0.0;
  double left_hess = 0.0;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    const int r = sorted[i];
    left_grad += grad[r];
    left_hess += hess[r];
    const double cur = x(r, feature);
    const double next = x(sorted[i + 1], feature);
    if (cur == next) continue;  // cannot split between equal values
    const double right_grad = grad_sum - left_grad;
    const double right_hess = hess_sum - left_hess;
    if (left_hess < options.min_child_weight ||
        right_hess < options.min_child_weight) {
      continue;
    }
    ++*splits_evaluated;
    const double gain =
        0.5 * (ScoreTerm(left_grad, left_hess, options.reg_lambda) +
               ScoreTerm(right_grad, right_hess, options.reg_lambda) -
               parent_score) -
        options.min_split_gain;
    if (gain > best.gain) {
      best.feature = feature;
      best.threshold = 0.5 * (cur + next);
      best.gain = gain;
    }
  }
  return best;
}

}  // namespace

int RegressionTree::GrowNode(const Matrix& x, const std::vector<double>& grad,
                             const std::vector<double>& hess,
                             std::vector<int>* rows,
                             const std::vector<int>& feature_subset,
                             const GbdtOptions& options, int depth) {
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (int r : *rows) {
    grad_sum += grad[r];
    hess_sum += hess[r];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].weight =
      LeafWeight(grad_sum, hess_sum, options.reg_lambda);

  if (depth >= options.max_depth || rows->size() < 2) return node_index;

  const double parent_score =
      ScoreTerm(grad_sum, hess_sum, options.reg_lambda);

  // Per-feature scans are independent; fan them out when the node is big
  // enough. The reduction below walks features in feature_subset order with
  // a strict >, which reproduces the serial scan's winner (first feature,
  // then first threshold within it, to reach the maximum gain) exactly.
  const size_t num_features = feature_subset.size();
  std::vector<BestSplit> feature_best(num_features);
  std::vector<uint64_t> feature_splits(num_features, 0);
  auto scan_range = [&](int64_t f0, int64_t f1) {
    for (int64_t fi = f0; fi < f1; ++fi) {
      feature_best[fi] = ScanFeature(
          x, grad, hess, *rows, feature_subset[fi], grad_sum, hess_sum,
          parent_score, options, &feature_splits[fi]);
    }
  };
  const int64_t scan_work =
      static_cast<int64_t>(rows->size()) * static_cast<int64_t>(num_features);
  if (scan_work >= kParallelSplitWork) {
    par::DefaultPool().ParallelFor(0, static_cast<int64_t>(num_features),
                                   /*grain=*/1, scan_range);
  } else {
    scan_range(0, static_cast<int64_t>(num_features));
  }

  BestSplit best;
  uint64_t splits_evaluated = 0;
  for (size_t fi = 0; fi < num_features; ++fi) {
    splits_evaluated += feature_splits[fi];
    if (feature_best[fi].gain > best.gain) best = feature_best[fi];
  }

  // One amortized registry update per node (total + per-depth label) keeps
  // the candidate scan free of atomics.
  static obs::Counter& split_counter =
      obs::MetricsRegistry::Get().GetCounter("gbdt/splits_evaluated");
  split_counter.Add(splits_evaluated);
  SplitCounterForDepth(depth).Add(splits_evaluated);

  if (best.feature < 0 || best.gain <= 0.0) return node_index;

  std::vector<int> left_rows;
  std::vector<int> right_rows;
  for (int r : *rows) {
    if (x(r, best.feature) < best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  AMS_DCHECK(!left_rows.empty() && !right_rows.empty(),
             "degenerate GBDT split");
  rows->clear();
  rows->shrink_to_fit();

  const int left = GrowNode(x, grad, hess, &left_rows, feature_subset,
                            options, depth + 1);
  const int right = GrowNode(x, grad, hess, &right_rows, feature_subset,
                             options, depth + 1);
  Node& node = nodes_[node_index];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.gain = best.gain;
  node.left = left;
  node.right = right;
  node.is_leaf = false;
  return node_index;
}

RegressionTree RegressionTree::Grow(const Matrix& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    const std::vector<int>& rows,
                                    const std::vector<int>& feature_subset,
                                    const GbdtOptions& options) {
  RegressionTree tree;
  std::vector<int> mutable_rows = rows;
  tree.GrowNode(x, grad, hess, &mutable_rows, feature_subset, options,
                /*depth=*/0);
  return tree;
}

Result<RegressionTree> RegressionTree::FromNodes(std::vector<Node> nodes,
                                                 int num_features) {
  if (nodes.empty()) {
    return Status::InvalidArgument("tree node array is empty");
  }
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes[i];
    if (node.is_leaf) {
      if (!std::isfinite(node.weight)) {
        return Status::InvalidArgument("non-finite leaf weight in tree");
      }
      continue;
    }
    if (node.feature < 0 || node.feature >= num_features) {
      return Status::InvalidArgument("tree split feature out of range");
    }
    if (!std::isfinite(node.threshold)) {
      return Status::InvalidArgument("non-finite split threshold in tree");
    }
    // Children strictly after the parent: in-bounds and acyclic, so
    // PredictRow's descent loop always terminates.
    if (node.left <= i || node.left >= n || node.right <= i ||
        node.right >= n) {
      return Status::InvalidArgument("tree child index out of range");
    }
  }
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

double RegressionTree::PredictRow(const double* row) const {
  AMS_DCHECK(!nodes_.empty(), "predict on empty tree");
  int index = 0;
  while (!nodes_[index].is_leaf) {
    const Node& node = nodes_[index];
    index = row[node.feature] < node.threshold ? node.left : node.right;
  }
  return nodes_[index].weight;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++count;
  }
  return count;
}

int RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Depth via DFS over the flat representation.
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (!node.is_leaf) {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }
  return max_depth;
}

Status GbdtRegressor::Fit(const Matrix& x, const Matrix& y,
                          const Matrix* valid_x, const Matrix* valid_y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.rows() != x.rows() || y.cols() != 1) {
    return Status::InvalidArgument("y must be (num_rows x 1)");
  }
  if (options_.num_rounds < 1 || options_.learning_rate <= 0.0 ||
      options_.max_depth < 1 || options_.subsample <= 0.0 ||
      options_.subsample > 1.0 || options_.colsample <= 0.0 ||
      options_.colsample > 1.0) {
    return Status::InvalidArgument("invalid GBDT hyperparameters");
  }
  AMS_TRACE_SPAN("gbdt/fit");
  const bool has_valid = valid_x != nullptr && valid_y != nullptr &&
                         valid_x->rows() > 0;
  if (options_.early_stopping_rounds > 0 && !has_valid) {
    return Status::InvalidArgument(
        "early stopping requires validation data");
  }

  const int n = x.rows();
  num_features_ = x.cols();
  trees_.clear();
  base_score_ = y.Mean();

  Rng rng(options_.seed);
  std::vector<double> pred(n, base_score_);
  std::vector<double> valid_pred;
  if (has_valid) valid_pred.assign(valid_x->rows(), base_score_);

  std::vector<double> grad(n);
  std::vector<double> hess(n, 1.0);

  double best_valid_rmse = std::numeric_limits<double>::infinity();
  int best_round = -1;

  const int rows_per_tree =
      std::max(1, static_cast<int>(std::lround(options_.subsample * n)));
  const int cols_per_tree = std::max(
      1, static_cast<int>(std::lround(options_.colsample * num_features_)));

  for (int round = 0; round < options_.num_rounds; ++round) {
    // Squared-error objective: g = pred - y, h = 1.
    bool grads_finite = true;
    for (int r = 0; r < n; ++r) {
      grad[r] = pred[r] - y(r, 0);
      grads_finite = grads_finite && std::isfinite(grad[r]);
    }
    if (!grads_finite) {
      obs::MetricsRegistry::Get().GetCounter("robust/nan_detected")
          .Increment();
      return Status::ComputeError(
          "GBDT training diverged: non-finite gradient at round " +
          std::to_string(round));
    }

    std::vector<int> rows =
        rows_per_tree == n
            ? [&] {
                std::vector<int> all(n);
                for (int r = 0; r < n; ++r) all[r] = r;
                return all;
              }()
            : rng.SampleWithoutReplacement(n, rows_per_tree);
    std::vector<int> features =
        cols_per_tree == num_features_
            ? [&] {
                std::vector<int> all(num_features_);
                for (int c = 0; c < num_features_; ++c) all[c] = c;
                return all;
              }()
            : rng.SampleWithoutReplacement(num_features_, cols_per_tree);

    RegressionTree tree = [&] {
      AMS_TRACE_SPAN("gbdt/tree_fit");
      return RegressionTree::Grow(x, grad, hess, rows, features, options_);
    }();
    static obs::Counter& tree_counter =
        obs::MetricsRegistry::Get().GetCounter("gbdt/trees_grown");
    tree_counter.Increment();
    for (int r = 0; r < n; ++r) {
      pred[r] += options_.learning_rate * tree.PredictRow(x.row_data(r));
    }
    trees_.push_back(std::move(tree));

    if (has_valid) {
      double sq = 0.0;
      for (int r = 0; r < valid_x->rows(); ++r) {
        valid_pred[r] += options_.learning_rate *
                         trees_.back().PredictRow(valid_x->row_data(r));
        const double err = valid_pred[r] - (*valid_y)(r, 0);
        sq += err * err;
      }
      const double rmse = std::sqrt(sq / valid_x->rows());
      if (rmse < best_valid_rmse - 1e-12) {
        best_valid_rmse = rmse;
        best_round = round;
      } else if (options_.early_stopping_rounds > 0 &&
                 round - best_round >= options_.early_stopping_rounds) {
        trees_.resize(best_round + 1);
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<double>> GbdtRegressor::Predict(const Matrix& x) const {
  if (trees_.empty()) return Status::FailedPrecondition("model not fitted");
  if (x.cols() != num_features_) {
    return Status::InvalidArgument("feature width mismatch in Predict");
  }
  std::vector<double> out(x.rows(), base_score_);
  for (int r = 0; r < x.rows(); ++r) {
    const double* row = x.row_data(r);
    double acc = base_score_;
    for (const RegressionTree& tree : trees_) {
      acc += options_.learning_rate * tree.PredictRow(row);
    }
    out[r] = acc;
  }
  return out;
}

Result<GbdtRegressor> GbdtRegressor::FromParts(
    GbdtOptions options, double base_score, int num_features,
    std::vector<RegressionTree> trees) {
  if (num_features < 1) {
    return Status::InvalidArgument("num_features must be positive");
  }
  if (!std::isfinite(base_score) || !std::isfinite(options.learning_rate)) {
    return Status::InvalidArgument("non-finite GBDT scoring parameters");
  }
  for (const RegressionTree& tree : trees) {
    if (tree.num_nodes() == 0) {
      return Status::InvalidArgument("empty tree in ensemble");
    }
  }
  GbdtRegressor model(options);
  model.base_score_ = base_score;
  model.num_features_ = num_features;
  model.trees_ = std::move(trees);
  return model;
}

std::vector<double> GbdtRegressor::FeatureImportance() const {
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    for (const RegressionTree::Node& node : tree.nodes()) {
      if (!node.is_leaf) importance[node.feature] += node.gain;
    }
  }
  return importance;
}

}  // namespace ams::gbdt
