#include "util/string_util.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace ams {

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string TrimString(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      oss << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    oss << "|\n";
  };
  emit_row(rows[0]);
  for (size_t c = 0; c < cols; ++c) {
    oss << "|" << std::string(width[c] + 2, '-');
  }
  oss << "|\n";
  for (size_t r = 1; r < rows.size(); ++r) emit_row(rows[r]);
  return oss.str();
}

std::string GetFlag(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

uint64_t GetFlagU64(int argc, char** argv, const std::string& key,
                    uint64_t fallback) {
  std::string v = GetFlag(argc, argv, key, "");
  if (v.empty()) return fallback;
  return std::strtoull(v.c_str(), nullptr, 10);
}

int GetFlagInt(int argc, char** argv, const std::string& key, int fallback) {
  std::string v = GetFlag(argc, argv, key, "");
  if (v.empty()) return fallback;
  return static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
}

}  // namespace ams
