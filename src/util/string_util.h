// Small string/formatting helpers shared by the CLI tools and benches.
#ifndef AMS_UTIL_STRING_UTIL_H_
#define AMS_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace ams {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 4);

/// Renders rows as an aligned plain-text table (first row = header).
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

/// Parses "--key=value"-style flags from argv. Returns value or fallback.
std::string GetFlag(int argc, char** argv, const std::string& key,
                    const std::string& fallback);
uint64_t GetFlagU64(int argc, char** argv, const std::string& key,
                    uint64_t fallback);
int GetFlagInt(int argc, char** argv, const std::string& key, int fallback);

}  // namespace ams

#endif  // AMS_UTIL_STRING_UTIL_H_
