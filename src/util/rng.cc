#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace ams {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  AMS_DCHECK(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::LogUniform(double lo, double hi) {
  AMS_DCHECK(lo > 0.0 && hi >= lo, "LogUniform requires 0 < lo <= hi");
  return std::exp(Uniform(std::log(lo), std::log(hi)));
}

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(UniformInt(static_cast<uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  AMS_DCHECK(k >= 0 && k <= n, "SampleWithoutReplacement requires 0 <= k <= n");
  std::vector<int> perm = Permutation(n);
  perm.resize(k);
  return perm;
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::LoadState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace ams
