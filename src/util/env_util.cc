#include "util/env_util.h"

#include <cstdlib>

#include "util/logging.h"

namespace ams::env {

int EnvInt(const char* name, int fallback, int min_value, int max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < min_value || value > max_value) {
    AMS_LOG(Warning) << "ignoring unparseable " << name << "='" << raw
                     << "' (want integer in [" << min_value << ", "
                     << max_value << "]); keeping default " << fallback;
    return fallback;
  }
  return static_cast<int>(value);
}

double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(value >= min_value) ||
      !(value <= max_value)) {
    AMS_LOG(Warning) << "ignoring unparseable " << name << "='" << raw
                     << "' (want number in [" << min_value << ", "
                     << max_value << "]); keeping default " << fallback;
    return fallback;
  }
  return value;
}

}  // namespace ams::env
