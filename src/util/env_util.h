// Shared env-variable parsing for *Options::FromEnv readers across layers
// (serving knobs AMS_SERVE_*, admin plane AMS_ADMIN_*, flight recorder).
// Unset variables keep the fallback silently; set-but-unparseable (or
// out-of-range) values also keep the fallback but log one AMS_LOG warning
// naming the variable, so a typo'd knob is visible instead of silently
// ignored.
//
// Lived in src/serve/env_util.h until the admin plane needed it from
// src/obs (which src/serve links against); serve/env_util.h now forwards
// here so existing call sites keep compiling.
#ifndef AMS_UTIL_ENV_UTIL_H_
#define AMS_UTIL_ENV_UTIL_H_

namespace ams::env {

int EnvInt(const char* name, int fallback, int min_value, int max_value);
double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value);

}  // namespace ams::env

#endif  // AMS_UTIL_ENV_UTIL_H_
