#include "util/status.h"

namespace ams {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kComputeError:
      return "Compute error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::ostringstream oss;
  oss << StatusCodeToString(code_) << ": " << msg_;
  return oss.str();
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  std::cerr << "Fatal status";
  if (context != nullptr) std::cerr << " in " << context;
  std::cerr << ": " << ToString() << std::endl;
  std::abort();
}

}  // namespace ams
