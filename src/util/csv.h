// Tiny CSV writer/reader used to export experiment outputs.
#ifndef AMS_UTIL_CSV_H_
#define AMS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace ams {

/// In-memory CSV table: a header plus string rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Serializes a table to RFC-4180-ish CSV (quotes fields containing
/// commas/quotes/newlines).
std::string CsvToString(const CsvTable& table);

/// Writes a table to `path`.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Parses CSV text (supports quoted fields). First row becomes the header.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsv(const std::string& path);

}  // namespace ams

#endif  // AMS_UTIL_CSV_H_
