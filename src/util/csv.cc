#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace ams {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void AppendRow(std::ostringstream* oss, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) *oss << ',';
    *oss << QuoteField(row[i]);
  }
  *oss << '\n';
}

}  // namespace

std::string CsvToString(const CsvTable& table) {
  std::ostringstream oss;
  AppendRow(&oss, table.header);
  for (const auto& row : table.rows) AppendRow(&oss, row);
  return oss.str();
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << CsvToString(table);
  // Flush and close-check: a full disk surfaces as a failed flush (or a
  // failed close when the OS buffered the shortfall), which the plain
  // stream destructor would have swallowed, returning OK for a silently
  // truncated file.
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  out.close();
  if (out.fail()) return Status::IoError("close failed: " + path);
  return Status::OK();
}

Result<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> all_rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&]() {
    row.push_back(field);
    field.clear();
    row_has_content = true;
  };
  auto end_row = [&]() {
    if (row_has_content || !field.empty() || !row.empty()) {
      end_field();
      all_rows.push_back(row);
    }
    row.clear();
    row_has_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      end_field();
    } else if (c == '\n') {
      end_row();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV");
  end_row();

  if (all_rows.empty()) return Status::InvalidArgument("empty CSV");
  CsvTable table;
  table.header = all_rows[0];
  table.rows.assign(all_rows.begin() + 1, all_rows.end());
  return table;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseCsv(oss.str());
}

}  // namespace ams
