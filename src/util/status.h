// Status / Result error-handling primitives, following the Arrow/RocksDB
// idiom: fallible public APIs return Status (or Result<T>) instead of
// throwing across library boundaries.
#ifndef AMS_UTIL_STATUS_H_
#define AMS_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace ams {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kComputeError,   // numerical failure (singular matrix, divergence, NaN)
  kIoError,
  kNotImplemented,
  kInternal,
  kUnavailable,       // transient overload: retry later (load shedding)
  kDeadlineExceeded,  // request deadline expired before completion
};

/// Returns a human-readable name for a StatusCode ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message). Use the AMS_RETURN_NOT_OK
/// macro to propagate errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ComputeError(std::string msg) {
    return Status(StatusCode::kComputeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and benchmarks where errors are unrecoverable.
  void Abort(const char* context = nullptr) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status.
///
/// Access the value with ValueOrDie() (aborts on error) or MoveValue() after
/// checking ok(); propagate errors with AMS_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error case).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T& ValueOrDie() {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  /// Moves the contained value out. Requires ok().
  T MoveValue() {
    if (!ok()) status_.Abort("Result::MoveValue");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ams

/// Propagates a non-OK Status from the current function.
#define AMS_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::ams::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define AMS_CONCAT_IMPL(x, y) x##y
#define AMS_CONCAT(x, y) AMS_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define AMS_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  AMS_ASSIGN_OR_RETURN_IMPL(AMS_CONCAT(_res_, __LINE__), lhs, rexpr)

#define AMS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = result_name.MoveValue()

/// Internal invariant check, active in all build types (cheap predicates only).
#define AMS_DCHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "AMS_DCHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " << (msg) << std::endl;                             \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // AMS_UTIL_STATUS_H_
