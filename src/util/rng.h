// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generation, weight init,
// dropout, hyperparameter sampling, market simulation) draw from Rng
// instances derived from a single root seed via SplitMix64, so every
// experiment is reproducible from one --seed flag.
#ifndef AMS_UTIL_RNG_H_
#define AMS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace ams {

/// SplitMix64 step; used to expand one seed into many independent streams.
uint64_t SplitMix64(uint64_t* state);

/// Complete serializable state of an Rng, including the cached Box-Muller
/// deviate, so a restored generator replays the exact same draw sequence.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256** generator with convenience samplers.
///
/// Not thread-safe; create one Rng per logical stream (see Fork()).
class Rng {
 public:
  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Log-uniform sample in [lo, hi]; both bounds must be positive.
  double LogUniform(double lo, double hi);

  /// Derives an independent generator; deterministic for a given call order.
  Rng Fork();

  /// Fisher-Yates shuffle of indices [0, n), returned as a permutation.
  std::vector<int> Permutation(int n);

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Snapshot / restore of the full generator state (checkpointing and
  /// epoch rollback both rely on bit-exact draw replay).
  RngState SaveState() const;
  void LoadState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ams

#endif  // AMS_UTIL_RNG_H_
