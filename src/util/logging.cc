#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace ams {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<bool> g_timestamps{false};
std::atomic<std::ostream*> g_sink{nullptr};  // nullptr = stderr
std::atomic<LogObserver> g_observer{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Small dense per-thread id (0 for the first logging thread).
uint32_t LoggingThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void SetLogSink(std::ostream* sink) {
  g_sink.store(sink, std::memory_order_release);
}

void SetLogObserver(LogObserver observer) {
  g_observer.store(observer, std::memory_order_release);
}

namespace internal {

bool LogEnabled(LogLevel level) {
  return level >= g_level.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (g_timestamps.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now.time_since_epoch())
                            .count() %
                        1000;
    std::tm tm_buf{};
    localtime_r(&seconds, &tm_buf);
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                  tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
    stream_ << stamp << " t" << LoggingThreadId() << " ";
  }
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &std::cerr;
  // One operator<< call so concurrent log lines don't interleave mid-line.
  *sink << line << std::flush;
  const LogObserver observer = g_observer.load(std::memory_order_acquire);
  if (observer != nullptr) observer(level_, line.c_str(), line.size());
}

}  // namespace internal
}  // namespace ams
