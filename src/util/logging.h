// Minimal leveled logging (default sink: stderr).
#ifndef AMS_UTIL_LOGGING_H_
#define AMS_UTIL_LOGGING_H_

#include <ostream>
#include <sstream>

namespace ams {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// When enabled, each line is additionally prefixed with a wall-clock
/// timestamp ("HH:MM:SS.mmm") and a small dense id of the logging thread.
/// Off by default (keeps existing output stable).
void SetLogTimestamps(bool enabled);

/// Redirects log output; pass nullptr to restore stderr. The sink must
/// outlive all logging from it. Each message is written with a single
/// operator<< call, but the sink itself is not locked — swap sinks only in
/// quiescent phases (e.g. test setup), not while other threads log.
void SetLogSink(std::ostream* sink);

/// Observer called with every emitted log line (after threshold filtering,
/// formatted exactly as written to the sink, trailing newline included) —
/// the hook the obs flight recorder uses to capture >= warn lines without
/// the util layer depending on obs. A plain function pointer so the
/// install is one atomic store; pass nullptr to remove. The observer runs
/// on the logging thread and must not log (reentrancy is not guarded).
using LogObserver = void (*)(LogLevel level, const char* line, size_t len);
void SetLogObserver(LogObserver observer);

namespace internal {

/// True when `level` clears the active threshold (used by AMS_LOG to skip
/// message construction entirely).
bool LogEnabled(LogLevel level);

/// Accumulates one log line and flushes it to the sink on destruction.
/// Only constructed for enabled levels — see AMS_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  const LogLevel level_;
  std::ostringstream stream_;
};

/// Lowers the streamed expression to void inside AMS_LOG's conditional.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ams

/// Leveled log line: AMS_LOG(Info) << "x = " << x;
/// When `level` is below the active threshold the streamed arguments are
/// NOT evaluated — do not rely on side effects inside log statements.
#define AMS_LOG(level)                                                   \
  !::ams::internal::LogEnabled(::ams::LogLevel::k##level)                \
      ? (void)0                                                          \
      : ::ams::internal::LogVoidify() &                                  \
            ::ams::internal::LogMessage(::ams::LogLevel::k##level,       \
                                        __FILE__, __LINE__)              \
                .stream()

#endif  // AMS_UTIL_LOGGING_H_
