// Minimal leveled logging to stderr.
#ifndef AMS_UTIL_LOGGING_H_
#define AMS_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace ams {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ams

#define AMS_LOG(level)                                                \
  ::ams::internal::LogMessage(::ams::LogLevel::k##level, __FILE__, __LINE__)

#endif  // AMS_UTIL_LOGGING_H_
