// Sampling wall-clock profiler: a background thread that periodically
// snapshots every registered thread's current trace-span stack (the TLS
// stack maintained by obs/trace.h — no libunwind, no frame pointers, no
// external deps) and aggregates the snapshots into folded-stack counts:
//
//   ams/train/fit;ams/train/epoch 412
//   serve/batch;serve/batch/predict 96
//   (idle) 1033
//
// One line per distinct stack, frames joined by ';', trailing count =
// number of samples that observed that stack. The format is directly
// consumable by flamegraph.pl / speedscope / inferno ("folded" input).
// Threads register implicitly the first time they open a span; a thread
// with no open span at sample time is counted under "(idle)".
//
// Environment wiring (via obs::InstallExitReporter):
//   AMS_PROFILE_FILE=path  enable; write folded stacks to `path` at exit
//   AMS_PROFILE_HZ=n       sampling frequency (default 97 — a prime, so the
//                          sampler cannot phase-lock with millisecond-
//                          aligned periodic work)
//
// Cost model: the steady-state overhead on instrumented code is two relaxed
// atomic stores per span enter/exit (publishing the frame to the sampling
// stack); the sampler thread itself wakes 1/hz and walks a mutex-guarded
// registry of fixed-size per-thread frame arrays. Both are measured in
// bench/micro_obs.cc (BM_SpanEnterExit, BM_SpanEnterExitUnderProfiler).
// Samples are sampling-consistent, not transactionally consistent: a stack
// read concurrently with a span push/pop can be off by its innermost frame,
// which is statistically irrelevant at 97 Hz and race-free by construction
// (all cross-thread slots are atomics; TSan-clean).
#ifndef AMS_OBS_PROFILER_H_
#define AMS_OBS_PROFILER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ams::obs {

class WallProfiler {
 public:
  struct Options {
    double hz = 97.0;        // clamped to [1, 10000]
    std::string file_path;   // folded output written here on Stop()
    std::ostream* out = nullptr;  // test hook; used when file_path is empty
  };

  /// Starts the sampler thread immediately.
  explicit WallProfiler(Options options);
  ~WallProfiler();

  /// Joins the sampler and writes the folded output (file_path, or the
  /// `out` test hook, or nowhere). Idempotent.
  void Stop();

  /// Total per-thread stack samples taken so far (each tick samples every
  /// registered thread once).
  uint64_t samples() const;

  /// Folded stacks accumulated so far, sorted by stack string. Key frames
  /// are ';'-joined span names (sanitized: ';', whitespace -> '_'); empty
  /// stacks fold under "(idle)".
  std::vector<std::pair<std::string, uint64_t>> FoldedCounts() const;

  /// Writes the folded-stack lines ("stack count\n" each) to `out`.
  void WriteFolded(std::ostream& out) const;

  /// Options from AMS_PROFILE_FILE / AMS_PROFILE_HZ; file_path empty when
  /// the variable is unset.
  static Options OptionsFromEnv();

  /// Starts the process-global profiler from the environment (once);
  /// returns nullptr when AMS_PROFILE_FILE is not set. ShutdownGlobal()
  /// stops it and writes the output file (InstallExitReporter's atexit hook
  /// calls it before flushing the exit report, so obs/profile_samples is
  /// final in the report and ledger).
  static WallProfiler* StartFromEnv();
  static void ShutdownGlobal();

  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

 private:
  void Loop();
  void SampleOnce();

  const Options options_;

  mutable std::mutex mu_;  // guards counts_, samples_, stop flags, cv
  std::condition_variable cv_;
  std::map<std::string, uint64_t> counts_;
  uint64_t samples_ = 0;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ams::obs

#endif  // AMS_OBS_PROFILER_H_
