#include "obs/trace.h"

#include <algorithm>

#include "obs/report.h"

namespace ams::obs {

namespace {

/// Process-wide time origin so span timestamps from all threads share one
/// axis.
std::chrono::steady_clock::time_point ProcessOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point origin,
                     std::chrono::steady_clock::time_point t) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t - origin)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

TraceBuffer& TraceBuffer::Get() {
  static TraceBuffer* buffer = new TraceBuffer();  // never freed
  return *buffer;
}

std::vector<SpanRecord> TraceBuffer::UnrolledLocked() const {
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  out.insert(out.end(), spans_.begin() + static_cast<ptrdiff_t>(head_),
             spans_.end());
  out.insert(out.end(), spans_.begin(),
             spans_.begin() + static_cast<ptrdiff_t>(head_));
  return out;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> ordered = UnrolledLocked();
  capacity_ = std::max<size_t>(1, capacity);
  if (ordered.size() > capacity_) {
    dropped_ += ordered.size() - capacity_;
    ordered.erase(ordered.begin(),
                  ordered.begin() +
                      static_cast<ptrdiff_t>(ordered.size() - capacity_));
  }
  spans_ = std::move(ordered);
  head_ = 0;
}

void TraceBuffer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() < capacity_) {
    spans_.push_back(span);
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head. This keeps
  // a saturated buffer O(1) per span (the old erase-front was O(capacity),
  // which made span-heavy runs quadratic once the buffer filled).
  spans_[head_] = span;
  head_ = (head_ + 1) % spans_.size();
  ++dropped_;
}

std::vector<SpanRecord> TraceBuffer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = UnrolledLocked();
  spans_.clear();
  head_ = 0;
  return out;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UnrolledLocked();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  head_ = 0;
  dropped_ = 0;
}

uint32_t TraceBuffer::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      // Pin the process origin before reading the clock so the first span's
      // start is never earlier than the origin.
      start_((ProcessOrigin(), std::chrono::steady_clock::now())),
      histogram_(&MetricsRegistry::Get().GetHistogram(std::string(name) +
                                                      "/ms")) {
  ++t_span_depth;
}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  const double ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  histogram_->Observe(ms);
  TraceBuffer& buffer = TraceBuffer::Get();
  if (buffer.enabled()) {
    SpanRecord span;
    span.name = name_;
    span.start_us = MicrosSince(ProcessOrigin(), start_);
    span.duration_us = MicrosSince(start_, end);
    span.thread_id = TraceBuffer::CurrentThreadId();
    span.depth = t_span_depth;
    buffer.Record(span);
  }
}

void TraceExporter::WriteJson(const std::vector<SpanRecord>& spans,
                              std::ostream& out) {
  // Chrome trace-event format: an object with a "traceEvents" array of
  // complete events (ph == "X"). Span names are usually tame string
  // literals, but nothing enforces that — escape them like every other
  // serialized name so a quote or control character cannot break the file.
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":"
        << JsonEscape(span.name != nullptr ? span.name : "?")
        << ",\"cat\":\"ams\",\"ph\":\"X\",\"ts\":" << span.start_us
        << ",\"dur\":" << span.duration_us
        << ",\"pid\":0,\"tid\":" << span.thread_id << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceExporter::WriteJson(std::ostream& out) {
  WriteJson(TraceBuffer::Get().Snapshot(), out);
}

namespace internal {
uint32_t CurrentSpanDepth() { return t_span_depth; }
}  // namespace internal

}  // namespace ams::obs
