#include "obs/trace.h"

#include <algorithm>

#include "obs/flight.h"
#include "obs/report.h"

namespace ams::obs {

namespace {

/// Process-wide time origin so span timestamps from all threads share one
/// axis.
std::chrono::steady_clock::time_point ProcessOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point origin,
                     std::chrono::steady_clock::time_point t) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t - origin)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

/// One counter mints both span ids and trace ids (a root span's trace_id is
/// its own span_id), so every recorded id is process-unique and nonzero.
uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread span stack. Two views of the same stack:
//   * t_context_stack: {trace_id, span_id} frames, owner-thread only —
//     parent resolution for new spans and CurrentTraceContext().
//     TraceContextScope pushes borrowed frames here without a name.
//   * SamplingStack: span-name frames published through atomics so the
//     profiler's sampler thread can read any thread's stack without
//     stopping it. Only ScopedSpan frames appear here (borrowed contexts
//     carry no name and burn no wall time of their own).
// ---------------------------------------------------------------------------

struct ContextFrame {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

thread_local std::vector<ContextFrame> t_context_stack;

constexpr uint32_t kMaxSampledDepth = 48;

std::mutex& SamplingRegistryMutex() {
  static std::mutex* mu = new std::mutex();  // leaked: outlives TLS dtors
  return *mu;
}

struct SamplingStack;

std::vector<SamplingStack*>& SamplingRegistryLocked() {
  static std::vector<SamplingStack*>* stacks =
      new std::vector<SamplingStack*>();
  return *stacks;
}

/// Registered on first span of a thread, unregistered when the thread
/// exits (TLS destructor). Push order: write the frame slot, then publish
/// the new depth with release; the sampler pairs it with an acquire load,
/// so it never reads an unwritten slot. Beyond kMaxSampledDepth the
/// published depth saturates (deep frames invisible to the profiler, spans
/// themselves unaffected).
struct SamplingStack {
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxSampledDepth];
  uint32_t thread_id;

  SamplingStack() : thread_id(TraceBuffer::CurrentThreadId()) {
    for (auto& frame : frames) {
      frame.store(nullptr, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(SamplingRegistryMutex());
    SamplingRegistryLocked().push_back(this);
  }

  ~SamplingStack() {
    std::lock_guard<std::mutex> lock(SamplingRegistryMutex());
    auto& stacks = SamplingRegistryLocked();
    stacks.erase(std::remove(stacks.begin(), stacks.end(), this),
                 stacks.end());
  }

  void Push(const char* name, uint32_t span_depth) {
    if (span_depth < kMaxSampledDepth) {
      frames[span_depth].store(name, std::memory_order_relaxed);
      depth.store(span_depth + 1, std::memory_order_release);
    }
  }

  void Pop(uint32_t span_depth) {
    if (span_depth < kMaxSampledDepth) {
      depth.store(span_depth, std::memory_order_release);
    }
  }
};

thread_local uint32_t t_span_depth = 0;

SamplingStack& ThreadSamplingStack() {
  thread_local SamplingStack stack;
  return stack;
}

}  // namespace

TraceContext CurrentTraceContext() {
  if (t_context_stack.empty()) return {};
  const ContextFrame& top = t_context_stack.back();
  return {top.trace_id, top.span_id};
}

TraceContextScope::TraceContextScope(TraceContext ctx)
    : pushed_(ctx.valid()) {
  if (pushed_) t_context_stack.push_back({ctx.trace_id, ctx.span_id});
}

TraceContextScope::~TraceContextScope() {
  if (pushed_) t_context_stack.pop_back();
}

TraceBuffer& TraceBuffer::Get() {
  static TraceBuffer* buffer = new TraceBuffer();  // never freed
  return *buffer;
}

std::vector<SpanRecord> TraceBuffer::UnrolledLocked() const {
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  out.insert(out.end(), spans_.begin() + static_cast<ptrdiff_t>(head_),
             spans_.end());
  out.insert(out.end(), spans_.begin(),
             spans_.begin() + static_cast<ptrdiff_t>(head_));
  return out;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> ordered = UnrolledLocked();
  capacity_ = std::max<size_t>(1, capacity);
  if (ordered.size() > capacity_) {
    dropped_ += ordered.size() - capacity_;
    ordered.erase(ordered.begin(),
                  ordered.begin() +
                      static_cast<ptrdiff_t>(ordered.size() - capacity_));
  }
  spans_ = std::move(ordered);
  head_ = 0;
}

void TraceBuffer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() < capacity_) {
    spans_.push_back(span);
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head. This keeps
  // a saturated buffer O(1) per span (the old erase-front was O(capacity),
  // which made span-heavy runs quadratic once the buffer filled).
  spans_[head_] = span;
  head_ = (head_ + 1) % spans_.size();
  ++dropped_;
}

std::vector<SpanRecord> TraceBuffer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = UnrolledLocked();
  spans_.clear();
  head_ = 0;
  return out;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UnrolledLocked();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  head_ = 0;
  dropped_ = 0;
}

uint32_t TraceBuffer::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void ScopedSpan::Enter(const TraceContext* explicit_parent) {
  ContextFrame parent{};
  if (explicit_parent != nullptr && explicit_parent->valid()) {
    parent = {explicit_parent->trace_id, explicit_parent->span_id};
  } else if (!t_context_stack.empty()) {
    parent = t_context_stack.back();
  }
  span_id_ = NextSpanId();
  trace_id_ = parent.trace_id != 0 ? parent.trace_id : span_id_;
  parent_id_ = parent.span_id;
  t_context_stack.push_back({trace_id_, span_id_});
  ThreadSamplingStack().Push(name_, t_span_depth);
  ++t_span_depth;
  // Flight-recorder payload: a = trace_id, b = span_id (no-op when the
  // recorder is disarmed — one relaxed load).
  FlightRecorder::Get().Record(FlightEventKind::kSpanBegin, name_, trace_id_,
                               span_id_);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      // Pin the process origin before reading the clock so the first span's
      // start is never earlier than the origin.
      start_((ProcessOrigin(), std::chrono::steady_clock::now())),
      histogram_(&MetricsRegistry::Get().GetHistogram(std::string(name) +
                                                      "/ms")) {
  Enter(nullptr);
}

ScopedSpan::ScopedSpan(const char* name, TraceContext parent)
    : name_(name),
      start_((ProcessOrigin(), std::chrono::steady_clock::now())),
      histogram_(&MetricsRegistry::Get().GetHistogram(std::string(name) +
                                                      "/ms")) {
  Enter(&parent);
}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  ThreadSamplingStack().Pop(t_span_depth);
  t_context_stack.pop_back();
  const double ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  histogram_->Observe(ms);
  TraceBuffer& buffer = TraceBuffer::Get();
  if (buffer.enabled()) {
    SpanRecord span;
    span.name = name_;
    span.start_us = MicrosSince(ProcessOrigin(), start_);
    span.duration_us = MicrosSince(start_, end);
    span.thread_id = TraceBuffer::CurrentThreadId();
    span.depth = t_span_depth;
    span.trace_id = trace_id_;
    span.span_id = span_id_;
    span.parent_id = parent_id_;
    buffer.Record(span);
  }
  // Flight-recorder payload: a = span_id, b = duration_us.
  FlightRecorder::Get().Record(FlightEventKind::kSpanEnd, name_, span_id_,
                               MicrosSince(start_, end));
}

TraceContext RecordSpanWithParent(const char* name, TraceContext parent,
                                  std::chrono::steady_clock::time_point start,
                                  std::chrono::steady_clock::time_point end,
                                  uint64_t arg) {
  TraceBuffer& buffer = TraceBuffer::Get();
  if (!buffer.enabled()) return {};
  SpanRecord span;
  span.name = name;
  span.start_us = MicrosSince(ProcessOrigin(), start);
  span.duration_us = MicrosSince(start, end);
  span.thread_id = TraceBuffer::CurrentThreadId();
  span.depth = t_span_depth;
  span.span_id = NextSpanId();
  span.trace_id = parent.valid() ? parent.trace_id : span.span_id;
  span.parent_id = parent.span_id;
  span.arg = arg;
  buffer.Record(span);
  return {span.trace_id, span.span_id};
}

void TraceExporter::WriteJson(const std::vector<SpanRecord>& spans,
                              std::ostream& out) {
  // Chrome trace-event format: an object with a "traceEvents" array of
  // complete events (ph == "X"). Span names are usually tame string
  // literals, but nothing enforces that — escape them like every other
  // serialized name so a quote or control character cannot break the file.
  //
  // For every parent->child edge that crosses threads, a flow-event pair
  // binds the two lanes: ph "s" anchored inside the parent slice, ph "f"
  // (bp "e": bind to enclosing slice) at the child's start. Perfetto draws
  // these as arrows, which is what makes one serving request readable as
  // one trace across the caller and batcher lanes.
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const SpanRecord& span) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":"
        << JsonEscape(span.name != nullptr ? span.name : "?")
        << ",\"cat\":\"ams\",\"ph\":\"X\",\"ts\":" << span.start_us
        << ",\"dur\":" << span.duration_us
        << ",\"pid\":0,\"tid\":" << span.thread_id;
    if (span.span_id != 0) {
      out << ",\"args\":{\"trace_id\":" << span.trace_id
          << ",\"span_id\":" << span.span_id
          << ",\"parent_id\":" << span.parent_id;
      if (span.arg != 0) out << ",\"v\":" << span.arg;
      out << "}";
    }
    out << "}";
  };
  // span_id -> index for parent lookups (ids are unique; 0 never recorded).
  std::vector<std::pair<uint64_t, size_t>> index;
  index.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].span_id != 0) index.emplace_back(spans[i].span_id, i);
  }
  std::sort(index.begin(), index.end());
  auto find_span = [&](uint64_t span_id) -> const SpanRecord* {
    auto it = std::lower_bound(
        index.begin(), index.end(), std::make_pair(span_id, size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == index.end() || it->first != span_id) return nullptr;
    return &spans[it->second];
  };
  for (const SpanRecord& span : spans) {
    emit(span);
    if (span.parent_id == 0) continue;
    const SpanRecord* parent = find_span(span.parent_id);
    if (parent == nullptr || parent->thread_id == span.thread_id) continue;
    // Flow start must sit inside the source slice; the parent may have
    // closed before the child started (batcher picks up after Score's
    // admission), so clamp into [parent.start, parent.end].
    const uint64_t src_ts =
        std::min(std::max(span.start_us, parent->start_us),
                 parent->start_us + parent->duration_us);
    out << ",{\"name\":\"trace\",\"cat\":\"ams.flow\",\"ph\":\"s\",\"id\":"
        << span.span_id << ",\"ts\":" << src_ts
        << ",\"pid\":0,\"tid\":" << parent->thread_id << "}"
        << ",{\"name\":\"trace\",\"cat\":\"ams.flow\",\"ph\":\"f\",\"bp\":"
        << "\"e\",\"id\":" << span.span_id << ",\"ts\":" << span.start_us
        << ",\"pid\":0,\"tid\":" << span.thread_id << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceExporter::WriteJson(std::ostream& out) {
  WriteJson(TraceBuffer::Get().Snapshot(), out);
}

namespace internal {

uint32_t CurrentSpanDepth() { return t_span_depth; }

uint64_t MicrosSinceOrigin(std::chrono::steady_clock::time_point t) {
  return MicrosSince(ProcessOrigin(), t);
}

std::vector<ThreadStackSample> SampleThreadStacks() {
  std::vector<ThreadStackSample> out;
  std::lock_guard<std::mutex> lock(SamplingRegistryMutex());
  const auto& stacks = SamplingRegistryLocked();
  out.reserve(stacks.size());
  for (const SamplingStack* stack : stacks) {
    ThreadStackSample sample;
    sample.thread_id = stack->thread_id;
    const uint32_t n = stack->depth.load(std::memory_order_acquire);
    sample.frames.reserve(n);
    for (uint32_t i = 0; i < n && i < kMaxSampledDepth; ++i) {
      const char* name = stack->frames[i].load(std::memory_order_relaxed);
      if (name == nullptr) break;  // racing push; truncate benignly
      sample.frames.push_back(name);
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace internal

}  // namespace ams::obs
