#include "obs/flight.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/trace.h"
#include "util/env_util.h"
#include "util/logging.h"

namespace ams::obs {

namespace {

/// Setup-only lock (Enable/InstallCrashDump); never touched by Record or
/// the dump path.
std::mutex g_setup_mu;

/// Signals whose default action kills the process with useful context.
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

const char* SignalReason(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "signal:SIGSEGV";
    case SIGABRT:
      return "signal:SIGABRT";
    case SIGBUS:
      return "signal:SIGBUS";
    case SIGFPE:
      return "signal:SIGFPE";
    case SIGILL:
      return "signal:SIGILL";
  }
  return "signal:unknown";
}

void CrashHandler(int sig) {
  FlightRecorder::Get().DumpToFile(SignalReason(sig));
  // Default disposition + re-raise: same exit code / core file as an
  // uninstrumented crash. signal() and raise() are async-signal-safe.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void WarnLogObserver(LogLevel level, const char* line, size_t len) {
  if (level < LogLevel::kWarning) return;
  // Drop the trailing newline the sink formatting appends.
  while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) --len;
  std::string one_line(line, len);
  FlightRecorder::Get().Record(FlightEventKind::kLog, one_line.c_str(),
                               static_cast<uint64_t>(level), 0);
}

// --- async-signal-safe formatting helpers ---------------------------------

/// Appends at most `cap - *pos` bytes of NUL-terminated `s`.
void AppendStr(char* buf, size_t cap, size_t* pos, const char* s) {
  while (*s != '\0' && *pos < cap) buf[(*pos)++] = *s++;
}

void AppendU64(char* buf, size_t cap, size_t* pos, uint64_t value) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && n < sizeof(digits));
  while (n > 0 && *pos < cap) buf[(*pos)++] = digits[--n];
}

void WriteAll(int fd, const char* buf, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, buf + written, len - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return;  // nowhere to report a dump-path write error
    }
  }
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpanBegin:
      return "span_begin";
    case FlightEventKind::kSpanEnd:
      return "span_end";
    case FlightEventKind::kLog:
      return "log";
    case FlightEventKind::kFault:
      return "fault";
    case FlightEventKind::kServeOutcome:
      return "serve_outcome";
    case FlightEventKind::kMark:
      return "mark";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* recorder = new FlightRecorder();  // never freed
  return *recorder;
}

void FlightRecorder::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(g_setup_mu);
  if (slots_ == nullptr) {
    capacity_ = std::min<size_t>(std::max<size_t>(capacity, 16), 1u << 20);
    slots_ = std::make_unique<Slot[]>(capacity_);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

Status FlightRecorder::InstallCrashDump(const std::string& path,
                                        size_t capacity) {
  Enable(capacity);
  std::lock_guard<std::mutex> lock(g_setup_mu);
  if (fd_ < 0) {
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IoError("flight recorder: cannot open " + path + ": " +
                             std::strerror(errno));
    }
    fd_ = fd;
    path_ = path;
    for (int sig : kCrashSignals) std::signal(sig, &CrashHandler);
    SetLogObserver(&WarnLogObserver);
  }
  return Status::OK();
}

void FlightRecorder::InstallFromEnv() {
  const char* path = std::getenv("AMS_FLIGHT_RECORDER");
  if (path == nullptr || path[0] == '\0') return;
  const int capacity =
      env::EnvInt("AMS_FLIGHT_RECORDER_EVENTS", 1024, 16, 1 << 20);
  const Status status =
      InstallCrashDump(path, static_cast<size_t>(capacity));
  if (!status.ok()) {
    AMS_LOG(Warning) << "flight recorder disabled: " << status.ToString();
  }
}

void FlightRecorder::Record(FlightEventKind kind, const char* text,
                            uint64_t a, uint64_t b) {
  if (!enabled()) return;
  const uint64_t claim = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim % capacity_];
  // Invalidate before touching the payload: a concurrent dump either sees
  // the previous complete record (seq already overwritten -> skip) or the
  // new one, never a blend it believes.
  slot.seq.store(0, std::memory_order_release);
  slot.ts_us =
      internal::MicrosSinceOrigin(std::chrono::steady_clock::now());
  slot.tid = TraceBuffer::CurrentThreadId();
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  size_t n = 0;
  if (text != nullptr) {
    for (; n < kTextBytes - 1 && text[n] != '\0'; ++n) {
      const unsigned char c = static_cast<unsigned char>(text[n]);
      slot.text[n] = c < 0x20 ? '_' : text[n];
    }
  }
  slot.text[n] = '\0';
  slot.seq.store(claim + 1, std::memory_order_release);
}

void FlightRecorder::DumpToFd(int fd, const char* reason) const {
  char buf[256];
  size_t pos = 0;
  const uint64_t total = next_.load(std::memory_order_relaxed);
  const uint64_t begin = total > capacity_ ? total - capacity_ : 0;
  AppendStr(buf, sizeof(buf), &pos, "ams-flight-recorder-v1 reason=");
  AppendStr(buf, sizeof(buf), &pos, reason);
  AppendStr(buf, sizeof(buf), &pos, " events=");
  AppendU64(buf, sizeof(buf), &pos, total - begin);
  AppendStr(buf, sizeof(buf), &pos, " total=");
  AppendU64(buf, sizeof(buf), &pos, total);
  AppendStr(buf, sizeof(buf), &pos, "\n");
  WriteAll(fd, buf, pos);
  if (slots_ == nullptr) return;
  for (uint64_t i = begin; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != i + 1) continue;  // mid-rewrite or never completed: skip
    pos = 0;
    AppendStr(buf, sizeof(buf), &pos, "E ");
    AppendU64(buf, sizeof(buf), &pos, seq);
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendU64(buf, sizeof(buf), &pos, slot.ts_us);
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendU64(buf, sizeof(buf), &pos, slot.tid);
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendStr(buf, sizeof(buf), &pos, FlightEventKindName(slot.kind));
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendU64(buf, sizeof(buf), &pos, slot.a);
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendU64(buf, sizeof(buf), &pos, slot.b);
    AppendStr(buf, sizeof(buf), &pos, " ");
    AppendStr(buf, sizeof(buf), &pos, slot.text);
    if (pos == sizeof(buf)) pos = sizeof(buf) - 1;  // room for the newline
    buf[pos++] = '\n';
    WriteAll(fd, buf, pos);
  }
}

void FlightRecorder::DumpToFile(const char* reason) const {
  if (fd_ < 0) return;
  // Rewind + truncate so the newest dump owns the file; both calls are
  // async-signal-safe.
  if (::lseek(fd_, 0, SEEK_SET) < 0) return;
  while (::ftruncate(fd_, 0) < 0 && errno == EINTR) {
  }
  DumpToFd(fd_, reason);
}

std::vector<FlightRecorder::Event> FlightRecorder::SnapshotEvents() const {
  std::vector<Event> events;
  if (slots_ == nullptr) return events;
  const uint64_t total = next_.load(std::memory_order_relaxed);
  const uint64_t begin = total > capacity_ ? total - capacity_ : 0;
  events.reserve(total - begin);
  for (uint64_t i = begin; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    Event event;
    event.seq = i + 1;
    event.ts_us = slot.ts_us;
    event.tid = slot.tid;
    event.kind = slot.kind;
    event.a = slot.a;
    event.b = slot.b;
    event.text = slot.text;
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace ams::obs
