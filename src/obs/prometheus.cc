#include "obs/prometheus.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/report.h"

namespace ams::obs {

namespace {

bool NameByte(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Exposition value: counters/sums/bounds. Unlike JSON, non-finite values
/// have literal spellings here.
std::string PromNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return JsonNumber(value);
}

/// `{k="v",...}` rendered from sanitized keys and escaped values; empty
/// labels render as an empty string (no braces).
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    std::string key = PrometheusName(labels[i].first);
    // ':' is reserved for metric names; label keys may not use it.
    std::replace(key.begin(), key.end(), ':', '_');
    out += key;
    out += "=\"";
    out += PrometheusLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

/// Emits one `# TYPE` header the first time a family appears. Families are
/// pre-sorted, so tracking the previous name suffices to keep each family's
/// series contiguous under its header.
struct TypeHeader {
  std::string last_family;
  void MaybeEmit(const std::string& family, const char* type,
                 std::ostream& out) {
    if (family == last_family) return;
    last_family = family;
    out << "# TYPE " << family << " " << type << "\n";
  }
};

/// Sort key grouping all series of one sanitized family together (the
/// snapshot is sorted by encoded name, where `name_x` can interleave with
/// `name{...}` because '_' < '{').
template <typename T>
void SortByFamily(std::vector<const T*>* values) {
  std::stable_sort(values->begin(), values->end(),
                   [](const T* a, const T* b) {
                     const std::string fa = PrometheusName(a->base);
                     const std::string fb = PrometheusName(b->base);
                     if (fa != fb) return fa < fb;
                     return a->name < b->name;
                   });
}

template <typename T>
std::vector<const T*> Pointers(const std::vector<T>& values) {
  std::vector<const T*> out;
  out.reserve(values.size());
  for (const T& value : values) out.push_back(&value);
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    out += NameByte(c, out.empty()) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WritePrometheusReport(const MetricsSnapshot& snapshot,
                           std::ostream& out) {
  TypeHeader header;

  auto counters = Pointers(snapshot.counters);
  SortByFamily(&counters);
  for (const auto* c : counters) {
    const std::string family = PrometheusName(c->base);
    header.MaybeEmit(family, "counter", out);
    out << family << RenderLabels(c->labels) << " " << c->value << "\n";
  }

  header.last_family.clear();
  auto gauges = Pointers(snapshot.gauges);
  SortByFamily(&gauges);
  for (const auto* g : gauges) {
    const std::string family = PrometheusName(g->base);
    header.MaybeEmit(family, "gauge", out);
    out << family << RenderLabels(g->labels) << " " << PromNumber(g->value)
        << "\n";
  }

  header.last_family.clear();
  auto histograms = Pointers(snapshot.histograms);
  SortByFamily(&histograms);
  for (const auto* h : histograms) {
    const std::string family = PrometheusName(h->base);
    header.MaybeEmit(family, "histogram", out);
    // Cumulative buckets; the registry's counts are per-bucket.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h->bucket_counts.size(); ++b) {
      cumulative += h->bucket_counts[b];
      Labels with_le = h->labels;
      with_le.emplace_back("le", b < h->bucket_bounds.size()
                                     ? PromNumber(h->bucket_bounds[b])
                                     : std::string("+Inf"));
      out << family << "_bucket" << RenderLabels(with_le) << " " << cumulative
          << "\n";
    }
    out << family << "_sum" << RenderLabels(h->labels) << " "
        << PromNumber(h->sum) << "\n";
    out << family << "_count" << RenderLabels(h->labels) << " " << h->count
        << "\n";
  }
}

}  // namespace ams::obs
