// Scoped trace spans: wall-time instrumentation of code regions.
//
//   void Fit(...) {
//     AMS_TRACE_SPAN("ams/train/fit");
//     for (...) {
//       AMS_TRACE_SPAN("ams/train/epoch");
//       ...
//     }
//   }
//
// Every span records its duration (milliseconds) into the histogram
// "<name>/ms" in the MetricsRegistry, so timing statistics are always
// available in reports. Additionally, when the in-memory trace buffer is
// enabled (TraceBuffer::SetEnabled, or AMS_TRACE_FILE via obs/report.h),
// each span appends a begin/duration record that TraceExporter::WriteJson
// serializes in Chrome trace-event format — load the file in
// chrome://tracing or https://ui.perfetto.dev to see the nested timeline.
//
// Spans nest naturally (the RAII object tracks a thread-local depth) and are
// cheap when the buffer is disabled: one steady_clock read on entry and one
// on exit plus a histogram observe.
#ifndef AMS_OBS_TRACE_H_
#define AMS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ams::obs {

/// One completed span. Times are microseconds relative to an arbitrary
/// process-wide origin (steady clock), as Chrome trace events expect.
struct SpanRecord {
  const char* name = nullptr;  // static string from AMS_TRACE_SPAN
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;  // small dense id, stable per thread
  uint32_t depth = 0;      // nesting depth at entry, 0 = outermost
};

/// Global bounded buffer of completed spans. Disabled by default; when
/// disabled, ScopedSpan skips it entirely (one relaxed atomic load).
class TraceBuffer {
 public:
  static TraceBuffer& Get();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops the oldest spans once the buffer holds `capacity` records.
  void SetCapacity(size_t capacity);

  /// O(1) at any fill level: once full, the buffer is a ring and the newest
  /// record overwrites the oldest slot in place.
  void Record(const SpanRecord& span);
  std::vector<SpanRecord> Drain();
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

  /// Dense id for the calling thread (0 for the first thread seen).
  static uint32_t CurrentThreadId();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  TraceBuffer() = default;

  /// Oldest-to-newest copy of the ring contents; mu_ must be held.
  std::vector<SpanRecord> UnrolledLocked() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 20;
  size_t dropped_ = 0;
  // spans_ grows until capacity_; from then on it is a ring and head_ marks
  // the oldest slot (head_ == 0 while still growing).
  size_t head_ = 0;
  std::vector<SpanRecord> spans_;
};

/// RAII span. Prefer the AMS_TRACE_SPAN macro; `name` must outlive the
/// process (string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  Histogram* histogram_;  // "<name>/ms", cached per call site is overkill —
                          // the registry lookup is one mutex + short scan.
};

/// Serializes spans as Chrome trace-event JSON ("traceEvents" array of
/// complete "X" events). The output loads in chrome://tracing / Perfetto.
class TraceExporter {
 public:
  /// Writes `spans` (e.g. TraceBuffer::Get().Snapshot()) to `out`.
  static void WriteJson(const std::vector<SpanRecord>& spans,
                        std::ostream& out);
  /// Convenience: snapshot of the global buffer.
  static void WriteJson(std::ostream& out);
};

namespace internal {
/// Current span nesting depth on this thread (for tests / exporters).
uint32_t CurrentSpanDepth();
}  // namespace internal

}  // namespace ams::obs

#define AMS_OBS_CONCAT_INNER(a, b) a##b
#define AMS_OBS_CONCAT(a, b) AMS_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal).
#define AMS_TRACE_SPAN(name) \
  ::ams::obs::ScopedSpan AMS_OBS_CONCAT(ams_trace_span_, __LINE__)(name)

#endif  // AMS_OBS_TRACE_H_
