// Scoped trace spans: wall-time instrumentation of code regions, with
// request-causal trace context.
//
//   void Fit(...) {
//     AMS_TRACE_SPAN("ams/train/fit");
//     for (...) {
//       AMS_TRACE_SPAN("ams/train/epoch");
//       ...
//     }
//   }
//
// Every span records its duration (milliseconds) into the histogram
// "<name>/ms" in the MetricsRegistry, so timing statistics are always
// available in reports. Additionally, when the in-memory trace buffer is
// enabled (TraceBuffer::SetEnabled, or AMS_TRACE_FILE via obs/report.h),
// each span appends a begin/duration record that TraceExporter::WriteJson
// serializes in Chrome trace-event format — load the file in
// chrome://tracing or https://ui.perfetto.dev to see the nested timeline.
//
// Trace context. Each thread keeps a TLS stack of active spans. A span
// opened while another is active becomes its child (same trace_id,
// parent_id = enclosing span_id); a span opened with the stack empty roots
// a new trace (trace_id = its own span_id). The stack crosses thread
// boundaries explicitly:
//
//   TraceContext ctx = CurrentTraceContext();      // producer thread
//   ...
//   TraceContextScope scope(ctx);                  // consumer thread:
//   AMS_TRACE_SPAN("serve/compute");               //   child of ctx
//
// or in one step: ScopedSpan span("name", ctx). src/par's ThreadPool
// applies this contract automatically — every enqueued task (Submit and
// ParallelFor helpers) inherits the submitting thread's context — and
// src/serve carries a TraceContext per request across the batcher hop.
// TraceExporter emits Chrome flow events ("s"/"f" pairs) for every
// parent->child edge that crosses threads, so one request renders as one
// connected trace across lanes.
//
// The span stack doubles as the sampling profiler's "backtrace": the
// per-thread frame names are published through relaxed atomics that
// obs/profiler.h's sampler thread reads (see internal::SampleThreadStacks).
//
// Spans nest naturally and are cheap when the buffer is disabled: two
// steady_clock reads, a histogram observe, a TLS stack push/pop, and two
// relaxed atomic stores for the profiler.
#ifndef AMS_OBS_TRACE_H_
#define AMS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ams::obs {

/// One completed span. Times are microseconds relative to an arbitrary
/// process-wide origin (steady clock), as Chrome trace events expect.
struct SpanRecord {
  const char* name = nullptr;  // static string from AMS_TRACE_SPAN
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;  // small dense id, stable per thread
  uint32_t depth = 0;      // nesting depth at entry, 0 = outermost
  uint64_t trace_id = 0;   // root span's span_id; all spans of one request
  uint64_t span_id = 0;    // unique per span, never 0 for recorded spans
  uint64_t parent_id = 0;  // 0 = trace root
  uint64_t arg = 0;        // optional payload (e.g. model version); 0 = none
};

/// Handoff token for continuing a trace on another thread: identifies the
/// span that should become the parent of whatever runs next. Default
/// (trace_id 0) means "no active trace" and makes TraceContextScope a
/// no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The innermost active context on this thread ({0,0} when no span or
/// borrowed scope is active). Capture it before crossing a thread boundary.
TraceContext CurrentTraceContext();

/// Installs `ctx` as this thread's current context for the scope's
/// lifetime, without opening a span: spans opened inside become children of
/// ctx.span_id. Invalid contexts install nothing (no-op).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  bool pushed_;
};

/// Global bounded buffer of completed spans. Disabled by default; when
/// disabled, ScopedSpan skips it entirely (one relaxed atomic load).
class TraceBuffer {
 public:
  static TraceBuffer& Get();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops the oldest spans once the buffer holds `capacity` records.
  void SetCapacity(size_t capacity);

  /// O(1) at any fill level: once full, the buffer is a ring and the newest
  /// record overwrites the oldest slot in place.
  void Record(const SpanRecord& span);
  std::vector<SpanRecord> Drain();
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

  /// Dense id for the calling thread (0 for the first thread seen).
  static uint32_t CurrentThreadId();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  TraceBuffer() = default;

  /// Oldest-to-newest copy of the ring contents; mu_ must be held.
  std::vector<SpanRecord> UnrolledLocked() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 20;
  size_t dropped_ = 0;
  // spans_ grows until capacity_; from then on it is a ring and head_ marks
  // the oldest slot (head_ == 0 while still growing).
  size_t head_ = 0;
  std::vector<SpanRecord> spans_;
};

/// RAII span. Prefer the AMS_TRACE_SPAN macro; `name` must outlive the
/// process (string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  /// Explicit cross-thread handoff: the span joins `parent`'s trace as a
  /// child of parent.span_id, ignoring whatever is on this thread's stack.
  /// An invalid parent behaves exactly like the plain constructor.
  ScopedSpan(const char* name, TraceContext parent);
  ~ScopedSpan();

  /// This span's own context — what CurrentTraceContext() returns while the
  /// span is innermost. Hand it to another thread to parent work there.
  TraceContext context() const { return {trace_id_, span_id_}; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Enter(const TraceContext* explicit_parent);

  const char* name_;
  std::chrono::steady_clock::time_point start_;
  Histogram* histogram_;  // "<name>/ms", cached per call site is overkill —
                          // the registry lookup is one mutex + short scan.
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

/// Records an already-completed interval as a span with an explicit parent,
/// on the calling thread's lane. Used where one piece of work (the serve
/// batcher's shared compute) must be attributed to several request traces:
/// the caller replays the same interval once per request. Only writes when
/// the trace buffer is enabled; does NOT observe a "<name>/ms" histogram
/// (callers own their phase histograms). Returns the new span's context.
TraceContext RecordSpanWithParent(const char* name, TraceContext parent,
                                  std::chrono::steady_clock::time_point start,
                                  std::chrono::steady_clock::time_point end,
                                  uint64_t arg = 0);

/// Serializes spans as Chrome trace-event JSON ("traceEvents" array of
/// complete "X" events). Every recorded parent->child edge whose endpoints
/// sit on different threads additionally emits a flow-event pair
/// (ph "s" at the parent, ph "f" at the child, id = child span_id), so
/// cross-thread traces render connected in chrome://tracing / Perfetto.
class TraceExporter {
 public:
  /// Writes `spans` (e.g. TraceBuffer::Get().Snapshot()) to `out`.
  static void WriteJson(const std::vector<SpanRecord>& spans,
                        std::ostream& out);
  /// Convenience: snapshot of the global buffer.
  static void WriteJson(std::ostream& out);
};

namespace internal {
/// Current span nesting depth on this thread (for tests / exporters).
uint32_t CurrentSpanDepth();

/// Microseconds between the process-wide trace origin and `t` (clamped at
/// 0). The origin is pinned on first use; span records and manual
/// RecordSpanWithParent intervals share it.
uint64_t MicrosSinceOrigin(std::chrono::steady_clock::time_point t);

/// One thread's span stack as seen by the sampling profiler: outermost
/// frame first. Frame names are the static span-name strings.
struct ThreadStackSample {
  uint32_t thread_id = 0;
  std::vector<const char*> frames;
};

/// Snapshot of every registered thread's current span stack. A thread
/// registers the first time it opens a span and unregisters at thread
/// exit. Reads race benignly with concurrent push/pop (frame slots and the
/// depth are atomics; a sample can be stale by one frame, never torn into
/// invalid pointers).
std::vector<ThreadStackSample> SampleThreadStacks();
}  // namespace internal

}  // namespace ams::obs

#define AMS_OBS_CONCAT_INNER(a, b) a##b
#define AMS_OBS_CONCAT(a, b) AMS_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal).
#define AMS_TRACE_SPAN(name) \
  ::ams::obs::ScopedSpan AMS_OBS_CONCAT(ams_trace_span_, __LINE__)(name)

/// Times the enclosing scope as a child of `ctx` (cross-thread handoff).
#define AMS_TRACE_SPAN_CTX(name, ctx) \
  ::ams::obs::ScopedSpan AMS_OBS_CONCAT(ams_trace_span_, __LINE__)(name, ctx)

#endif  // AMS_OBS_TRACE_H_
