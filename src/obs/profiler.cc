#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ams::obs {

namespace {

/// Folded-stack frames are ';'-separated and the count is space-separated,
/// so those bytes (and newlines) inside a span name would corrupt the
/// output line structure. Span names are string literals in practice, but
/// nothing enforces that — sanitize defensively.
std::string SanitizeFrame(const char* name) {
  std::string frame = name != nullptr ? name : "?";
  for (char& c : frame) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return frame;
}

}  // namespace

WallProfiler::WallProfiler(Options options) : options_(std::move(options)) {
  thread_ = std::thread([this] { Loop(); });
}

WallProfiler::~WallProfiler() { Stop(); }

void WallProfiler::Loop() {
  const double hz = std::clamp(options_.hz, 1.0, 10000.0);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      1.0 / hz));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void WallProfiler::SampleOnce() {
  const std::vector<internal::ThreadStackSample> stacks =
      internal::SampleThreadStacks();
  static Counter& sample_counter =
      MetricsRegistry::Get().GetCounter("obs/profile_samples");
  static Gauge& threads_gauge =
      MetricsRegistry::Get().GetGauge("obs/profile_threads");
  sample_counter.Add(stacks.size());
  threads_gauge.Set(static_cast<double>(stacks.size()));

  std::lock_guard<std::mutex> lock(mu_);
  samples_ += stacks.size();
  for (const internal::ThreadStackSample& stack : stacks) {
    if (stack.frames.empty()) {
      ++counts_["(idle)"];
      continue;
    }
    std::string folded;
    for (size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) folded += ';';
      folded += SanitizeFrame(stack.frames[i]);
    }
    ++counts_[folded];
  }
}

void WallProfiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One last sample so short-lived processes still get a data point even
  // when they exit inside the first tick.
  SampleOnce();
  if (!options_.file_path.empty()) {
    std::ofstream out(options_.file_path, std::ios::trunc);
    if (out) {
      WriteFolded(out);
    } else {
      std::cerr << "telemetry: cannot open AMS_PROFILE_FILE "
                << options_.file_path << "\n";
    }
  } else if (options_.out != nullptr) {
    WriteFolded(*options_.out);
  }
}

uint64_t WallProfiler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::vector<std::pair<std::string, uint64_t>> WallProfiler::FoldedCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counts_.begin(), counts_.end()};
}

void WallProfiler::WriteFolded(std::ostream& out) const {
  for (const auto& [stack, count] : FoldedCounts()) {
    out << stack << " " << count << "\n";
  }
  out.flush();
}

WallProfiler::Options WallProfiler::OptionsFromEnv() {
  Options options;
  if (const char* path = std::getenv("AMS_PROFILE_FILE")) {
    options.file_path = path;
  }
  if (const char* hz = std::getenv("AMS_PROFILE_HZ")) {
    const double parsed = std::atof(hz);
    if (parsed > 0.0) options.hz = parsed;
  }
  return options;
}

namespace {

std::mutex g_profiler_mu;
WallProfiler* g_profiler = nullptr;  // leaked; stopped at exit
bool g_profiler_started = false;

}  // namespace

WallProfiler* WallProfiler::StartFromEnv() {
  std::lock_guard<std::mutex> lock(g_profiler_mu);
  if (g_profiler_started) return g_profiler;
  g_profiler_started = true;
  const Options options = OptionsFromEnv();
  if (options.file_path.empty()) return nullptr;
  g_profiler = new WallProfiler(options);
  return g_profiler;
}

void WallProfiler::ShutdownGlobal() {
  WallProfiler* profiler;
  {
    std::lock_guard<std::mutex> lock(g_profiler_mu);
    profiler = g_profiler;
  }
  if (profiler != nullptr) profiler->Stop();
}

}  // namespace ams::obs
