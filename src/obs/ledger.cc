#include "obs/ledger.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/health.h"
#include "obs/report.h"

namespace ams::obs {

namespace {

std::chrono::steady_clock::time_point& ProcessStart() {
  static std::chrono::steady_clock::time_point start;
  return start;
}

std::once_flag g_start_once;

std::mutex& ComponentsMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::string>& ComponentsLocked() {
  static std::map<std::string, std::string>* components =
      new std::map<std::string, std::string>();
  return *components;
}

}  // namespace

void MarkProcessStart() {
  std::call_once(g_start_once,
                 [] { ProcessStart() = std::chrono::steady_clock::now(); });
}

const std::vector<std::string>& RunLedgerEnvKeys() {
  static const std::vector<std::string>* keys = new std::vector<std::string>{
      "AMS_THREADS",        "AMS_FAULTS",
      "AMS_GUARD_POLICY",   "AMS_CHECKPOINT_DIR",
      "AMS_TELEMETRY",      "AMS_TELEMETRY_INTERVAL_MS",
      "AMS_TELEMETRY_FILE", "AMS_TELEMETRY_MAX_SERIES",
      "AMS_TRACE_FILE",     "AMS_LOG",
      "AMS_RUN_LEDGER",     "AMS_SLO",
      "AMS_PROFILE_FILE",   "AMS_PROFILE_HZ",
  };
  return *keys;
}

void SetLedgerComponent(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(ComponentsMutex());
  ComponentsLocked()[key] = value;
}

std::vector<std::pair<std::string, std::string>> LedgerComponents() {
  std::lock_guard<std::mutex> lock(ComponentsMutex());
  const auto& components = ComponentsLocked();
  return {components.begin(), components.end()};
}

void ClearLedgerComponents() {
  std::lock_guard<std::mutex> lock(ComponentsMutex());
  ComponentsLocked().clear();
}

std::string ConfigFingerprint(const std::string& binary_name) {
  // FNV-1a 64-bit over "binary\0key=value\0..." in the fixed key order,
  // followed by the registered components in sorted key order.
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 0x100000001b3ULL;
    }
    hash ^= 0xff;  // separator distinct from any byte value
    hash *= 0x100000001b3ULL;
  };
  mix(binary_name);
  for (const std::string& key : RunLedgerEnvKeys()) {
    const char* value = std::getenv(key.c_str());
    mix(key + "=" + (value != nullptr ? value : "<unset>"));
  }
  for (const auto& [key, value] : LedgerComponents()) {
    mix(key + "=" + value);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string CurrentBinaryName() {
  std::string name;
  std::ifstream comm("/proc/self/comm");
  if (comm) std::getline(comm, name);
  if (name.empty()) name = "ams_process";
  for (char& c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    if (!keep) c = '_';
  }
  return name;
}

void WriteRunLedgerJson(const std::string& binary_name, int pid,
                        double wall_time_ms, const MetricsSnapshot& snapshot,
                        std::ostream& out) {
  out << "{\"schema\":\"ams-run-ledger-v1\",\"schema_version\":"
      << kRunLedgerSchemaVersion << ",\"binary\":" << JsonEscape(binary_name)
      << ",\"pid\":" << pid
      << ",\"config_fingerprint\":" << JsonEscape(ConfigFingerprint(binary_name))
      << ",\"wall_time_ms\":" << JsonNumber(wall_time_ms) << ",\"env\":{";
  bool first = true;
  for (const std::string& key : RunLedgerEnvKeys()) {
    if (!first) out << ",";
    first = false;
    const char* value = std::getenv(key.c_str());
    out << JsonEscape(key) << ":"
        << (value != nullptr ? JsonEscape(value) : std::string("null"));
  }
  out << "},\"components\":{";
  first = true;
  for (const auto& [key, value] : LedgerComponents()) {
    if (!first) out << ",";
    first = false;
    out << JsonEscape(key) << ":" << JsonEscape(value);
  }
  out << "},\"health\":";
  if (HealthMonitor* health = HealthMonitor::Global()) {
    // Re-evaluate against this very snapshot so the ledger's health block
    // matches the metrics block even when no periodic reporter ever ticked.
    const HealthState state = health->Evaluate(snapshot);
    out << "{\"state\":\"" << HealthStateName(state) << "\",\"targets\":[";
    bool first_target = true;
    for (const SloResult& result : health->last_results()) {
      if (!first_target) out << ",";
      first_target = false;
      out << "{\"slo\":" << JsonEscape(result.target.spec)
          << ",\"observed\":" << JsonNumber(result.observed)
          << ",\"violated\":" << (result.violated ? "true" : "false")
          << ",\"missing\":" << (result.missing ? "true" : "false") << "}";
    }
    out << "]}";
  } else {
    out << "null";
  }
  out << ",\"metrics\":";
  std::ostringstream metrics;
  WriteJsonReport(snapshot, metrics);
  std::string metrics_json = metrics.str();
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  out << metrics_json << "}\n";
}

Status WriteRunLedger(const std::string& dir, const std::string& binary_name,
                      double wall_time_ms,
                      const MetricsSnapshot& snapshot) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const int pid = static_cast<int>(::getpid());
  const std::string path =
      dir + "/run_" + binary_name + "_" + std::to_string(pid) + ".json";
  // Temp + rename so a crash mid-write never leaves a half manifest behind
  // (obs cannot depend on robust/atomic_io — robust already links obs).
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open run ledger " + tmp_path);
    }
    WriteRunLedgerJson(binary_name, pid, wall_time_ms, snapshot, out);
    out.flush();
    if (!out) {
      return Status::IoError("short write to run ledger " + tmp_path);
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::IoError("cannot rename run ledger into place: " +
                           ec.message());
  }
  return Status::OK();
}

Status WriteRunLedgerFromEnv() {
  const char* dir = std::getenv("AMS_RUN_LEDGER");
  if (dir == nullptr || dir[0] == '\0') return Status::OK();
  MarkProcessStart();  // degenerate wall time if the reporter never ran
  const double wall_time_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count();
  return WriteRunLedger(dir, CurrentBinaryName(), wall_time_ms,
                        MetricsRegistry::Get().Snapshot());
}

}  // namespace ams::obs
