#include "obs/metrics.h"

#include <algorithm>

#include "util/status.h"

namespace ams::obs {

Histogram::Histogram(std::string name, std::vector<double> bucket_bounds)
    : name_(std::move(name)),
      bounds_([&] {
        if (bucket_bounds.empty()) bucket_bounds = ExponentialBounds();
        std::sort(bucket_bounds.begin(), bucket_bounds.end());
        return bucket_bounds;
      }()),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double base, double growth,
                                                 int count) {
  AMS_DCHECK(base > 0.0 && growth > 1.0 && count > 0,
             "invalid histogram bounds spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = base;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= growth;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& counter : counters_) {
    if (counter.name() == name) return counter;
  }
  return counters_.emplace_back(name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& gauge : gauges_) {
    if (gauge.name() == name) return gauge;
  }
  return gauges_.emplace_back(name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Histogram& histogram : histograms_) {
    if (histogram.name() == name) return histogram;
  }
  return histograms_.emplace_back(name, std::move(bucket_bounds));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const Counter& counter : counters_) {
    snapshot.counters.push_back({counter.name(), counter.value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const Gauge& gauge : gauges_) {
    snapshot.gauges.push_back({gauge.name(), gauge.value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const Histogram& histogram : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = histogram.name();
    value.count = histogram.count();
    value.sum = histogram.sum();
    value.bucket_bounds = histogram.bucket_bounds();
    value.bucket_counts = histogram.bucket_counts();
    snapshot.histograms.push_back(std::move(value));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& counter : counters_) counter.Reset();
  for (Gauge& gauge : gauges_) gauge.Reset();
  for (Histogram& histogram : histograms_) histogram.Reset();
}

}  // namespace ams::obs
