#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace ams::obs {

std::string EncodeLabeledName(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    out += sorted[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

/// Histogram input guard drops (NaN) and clamps (negative) land here; the
/// counter lives in the registry so reports surface silent data loss.
Counter& DroppedObservationsCounter() {
  static Counter& counter =
      MetricsRegistry::Get().GetCounter("obs/dropped_observations");
  return counter;
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bucket_bounds)
    : name_(std::move(name)),
      bounds_([&] {
        if (bucket_bounds.empty()) bucket_bounds = ExponentialBounds();
        std::sort(bucket_bounds.begin(), bucket_bounds.end());
        return bucket_bounds;
      }()),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) {  // single branch covers both NaN and negative
    DroppedObservationsCounter().Increment();
    if (std::isnan(value)) {
      // NaN cannot be ordered into a bucket; dropping it keeps count/sum and
      // bucket totals consistent (a NaN sum would poison every later mean).
      return;
    }
    // Negative durations (clock adjustments, guarded math) clamp to zero so
    // the observation still counts without inventing a negative bucket.
    value = 0.0;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double base, double growth,
                                                 int count) {
  AMS_DCHECK(base > 0.0 && growth > 1.0 && count > 0,
             "invalid histogram bounds spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = base;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= growth;
  }
  return bounds;
}

double MetricsSnapshot::HistogramValue::Percentile(double q) const {
  if (count == 0 || bucket_counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in (0, count]; rank r is satisfied once the cumulative
  // bucket count reaches r.
  const double rank = std::max(q * static_cast<double>(count), 1e-12);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bucket_bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        return bucket_bounds.empty() ? 0.0 : bucket_bounds.back();
      }
      const double upper = bucket_bounds[i];
      const double lower =
          i == 0 ? std::min(0.0, upper) : bucket_bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bucket_bounds.empty() ? 0.0 : bucket_bounds.back();
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  Counter& counter = counters_.emplace_back(name);
  counter_index_.emplace(name, &counter);
  return counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  Gauge& gauge = gauges_.emplace_back(name);
  gauge_index_.emplace(name, &gauge);
  return gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  Histogram& histogram =
      histograms_.emplace_back(name, std::move(bucket_bounds));
  histogram_index_.emplace(name, &histogram);
  return histogram;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  const std::string encoded = EncodeLabeledName(name, labels);
  RecordDecomposition(encoded, name, labels);
  return GetCounter(encoded);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  const std::string encoded = EncodeLabeledName(name, labels);
  RecordDecomposition(encoded, name, labels);
  return GetGauge(encoded);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> bucket_bounds) {
  const std::string encoded = EncodeLabeledName(name, labels);
  RecordDecomposition(encoded, name, labels);
  return GetHistogram(encoded, std::move(bucket_bounds));
}

void MetricsRegistry::RecordDecomposition(const std::string& encoded,
                                          const std::string& base,
                                          const Labels& labels) {
  if (labels.empty()) return;
  Labels sorted = labels;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::lock_guard<std::mutex> lock(mu_);
  decomp_.emplace(encoded, std::make_pair(base, std::move(sorted)));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto decompose = [&](const std::string& encoded, std::string* base,
                             Labels* labels) {
    const auto it = decomp_.find(encoded);
    if (it == decomp_.end()) {
      *base = encoded;
      return;
    }
    *base = it->second.first;
    *labels = it->second.second;
  };
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const Counter& counter : counters_) {
    MetricsSnapshot::CounterValue value{counter.name(), counter.value(), {}, {}};
    decompose(value.name, &value.base, &value.labels);
    snapshot.counters.push_back(std::move(value));
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const Gauge& gauge : gauges_) {
    MetricsSnapshot::GaugeValue value{gauge.name(), gauge.value(), {}, {}};
    decompose(value.name, &value.base, &value.labels);
    snapshot.gauges.push_back(std::move(value));
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const Histogram& histogram : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = histogram.name();
    decompose(value.name, &value.base, &value.labels);
    value.count = histogram.count();
    value.sum = histogram.sum();
    value.bucket_bounds = histogram.bucket_bounds();
    value.bucket_counts = histogram.bucket_counts();
    snapshot.histograms.push_back(std::move(value));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& counter : counters_) counter.Reset();
  for (Gauge& gauge : gauges_) gauge.Reset();
  for (Histogram& histogram : histograms_) histogram.Reset();
}

}  // namespace ams::obs
