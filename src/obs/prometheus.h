// Prometheus text exposition (version 0.0.4) rendering of a
// MetricsSnapshot — what the admin plane serves at /metrics so any
// standard scraper can pull the registry from a live process.
//
// Mapping rules:
//   * Metric names are sanitized to the exposition charset
//     [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte becomes '_' and a leading
//     digit gains a '_' prefix ("serve/latency_ms" -> "serve_latency_ms").
//     Label keys sanitize the same way minus ':'.
//   * Label values pass through verbatim with the three exposition escapes
//     (backslash, double quote, newline); arbitrary hostile values can
//     never break line framing (tests/obs_test.cc hostile corpus).
//   * Counters/gauges emit one "# TYPE" header per sanitized family
//     followed by its series. Histograms emit the standard
//     <name>_bucket{le="..."} cumulative series (always ending at
//     le="+Inf"), <name>_sum, and <name>_count.
//   * Non-finite gauge values render as Prometheus literals NaN / +Inf /
//     -Inf (unlike JSON, the exposition format has spellings for them).
//
// Rendering takes the snapshot by value-copy semantics only (const ref, no
// registry access), so it is safe to call from any thread including the
// admin server's handler threads.
#ifndef AMS_OBS_PROMETHEUS_H_
#define AMS_OBS_PROMETHEUS_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace ams::obs {

/// `name` squeezed into the exposition metric-name charset (see above).
std::string PrometheusName(const std::string& name);

/// `value` with the exposition label-value escapes applied
/// (\ -> \\, " -> \", newline -> \n), unquoted.
std::string PrometheusLabelValue(const std::string& value);

/// Renders the whole snapshot in exposition text format.
void WritePrometheusReport(const MetricsSnapshot& snapshot, std::ostream& out);

}  // namespace ams::obs

#endif  // AMS_OBS_PROMETHEUS_H_
