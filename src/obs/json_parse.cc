#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace ams::obs::json {

const Value* Value::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value root;
    AMS_RETURN_NOT_OK(ParseValue(&root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(Value* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ParseObject(out);
        break;
      case '[':
        status = ParseArray(out);
        break;
      case '"':
        out->kind = Value::Kind::kString;
        status = ParseString(&out->string_value);
        break;
      case 't':
      case 'f':
        status = ParseKeyword(out);
        break;
      case 'n':
        status = ParseKeyword(out);
        break;
      default:
        status = ParseNumber(out);
        break;
    }
    --depth_;
    return status;
  }

  Status ParseKeyword(Value* out) {
    auto match = [&](const char* word) {
      const size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = Value::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = Value::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = Value::Kind::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Error("malformed number '" + token + "'");
    }
    out->kind = Value::Kind::kNumber;
    out->number = parsed;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    AMS_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          AMS_ASSIGN_OR_RETURN(const unsigned code, ParseHex4());
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate escapes are not supported");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(Value* out) {
    AMS_RETURN_NOT_OK(Expect('['));
    out->kind = Value::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Value element;
      AMS_RETURN_NOT_OK(ParseValue(&element));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      AMS_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(Value* out) {
    AMS_RETURN_NOT_OK(Expect('{'));
    out->kind = Value::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      AMS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      AMS_RETURN_NOT_OK(Expect(':'));
      Value value;
      AMS_RETURN_NOT_OK(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      AMS_RETURN_NOT_OK(Expect(','));
    }
  }

  static constexpr int kMaxDepth = 256;
  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace ams::obs::json
