// Live introspection plane: a dependency-free, minimal HTTP/1.0 loopback
// server exposing the running process's telemetry as pull endpoints, so an
// operator (or a per-shard scraper, or the champion/challenger promoter)
// can ask a live server "what is your shed rate right now" instead of
// waiting for exit reports or tailing JSONL files.
//
//   GET /            endpoint index (text)
//   GET /metrics     Prometheus text exposition of the MetricsRegistry
//                    (obs/prometheus.h; labels + escaping per exposition
//                    rules)
//   GET /metrics.json  the existing JSON report (obs/report.h)
//   GET /healthz     SLO monitor state: 200 "ok" / 503 listing the
//                    violating targets (evaluates the AMS_SLO monitor
//                    against a fresh snapshot on every scrape — a scrape is
//                    a health tick, hysteresis streaks advance with it)
//   GET /tracez?n=N  last N completed spans from the trace ring as JSON
//                    (trace/span/parent ids; the ring is enabled at a
//                    reduced capacity when the admin plane starts, unless
//                    AMS_TRACE_FILE already enabled it)
//   GET /profilez?seconds=N  on-demand sampling profile: starts a
//                    WallProfiler (AMS_PROFILE_HZ rate), samples for N
//                    seconds (clamped to [1, 10]), responds with the
//                    folded-stack text
//   GET /varz        resolved AMS_* configuration + run-ledger config
//                    fingerprint + registered components, as JSON
//   GET /flightz     live dump of the flight-recorder ring (obs/flight.h)
//
// Transport: HTTP/1.0, GET only, Connection: close on every response, bound
// to 127.0.0.1 (AMS_ADMIN_PORT; 0 = kernel-assigned, read port()). The
// request parser is an untrusted-input surface in the spirit of
// serve/framing.cc: the request line + headers are read into a bounded
// buffer (kMaxRequestBytes) with a receive timeout, and anything
// malformed — truncations, oversized headers, random bytes, non-GET
// methods — is answered with a clean 4xx and a close, never a crash
// (tests/admin_fuzz_test.cc). Handlers run on detached per-connection
// threads bounded by max_inflight; excess connections get an immediate 503.
//
// The serve layer starts/stops one of these inside NetServer (the admin
// plane outlives the 4-phase drain so operators can watch a shutdown), and
// installs the torn_scrape@admin fault hook so half-written scrape
// responses are an exercised failure mode.
#ifndef AMS_OBS_ADMIN_H_
#define AMS_OBS_ADMIN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ams::obs {

struct AdminServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 = kernel-assigned. Negative =
  /// disabled (FromEnv returns -1 when AMS_ADMIN_PORT is unset).
  int port = 0;
  /// Concurrent handler threads (AMS_ADMIN_MAX_INFLIGHT); connections
  /// beyond it are answered 503 inline on the accept thread.
  int max_inflight = 8;
  /// Per-connection receive/send socket timeout (AMS_ADMIN_TIMEOUT_MS):
  /// a stalled scraper can hold a handler for at most this long per
  /// syscall.
  int timeout_ms = 2000;
  int backlog = 16;

  /// Reads AMS_ADMIN_PORT / AMS_ADMIN_MAX_INFLIGHT / AMS_ADMIN_TIMEOUT_MS
  /// through env::EnvInt (warn-once on unparseable values). port stays -1
  /// (disabled) when AMS_ADMIN_PORT is unset.
  static AdminServerOptions FromEnv();

  bool enabled() const { return port >= 0; }
};

class AdminServer {
 public:
  /// Request line + headers may not exceed this many bytes (431 beyond).
  static constexpr size_t kMaxRequestBytes = 8192;

  explicit AdminServer(AdminServerOptions options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 127.0.0.1:port, starts the accept thread. Enables the trace
  /// ring (capacity kAdminTraceCapacity) if nothing enabled it before.
  Status Start();

  /// Stops accepting, hangs up open connections, waits for every handler
  /// to finish. Idempotent.
  void Stop();

  /// Bound port (valid after Start), 0 before.
  int port() const { return port_.load(std::memory_order_acquire); }

  const AdminServerOptions& options() const { return options_; }

  /// Process-wide fault hook consulted once per response write; returning
  /// true makes the server send only a prefix of the response and drop the
  /// connection (a torn scrape). Installed by the serve layer as
  /// robust::FaultInjector's torn_scrape@admin query (obs cannot link
  /// robust — the dependency points the other way). nullptr = off.
  static void SetWriteFaultHook(bool (*hook)());

  /// Span-ring capacity Start() applies when the trace buffer was not
  /// already enabled (AMS_TRACE_FILE uses a much larger default).
  static constexpr size_t kAdminTraceCapacity = 8192;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  /// Routes one parsed request; fills body/content type, returns the HTTP
  /// status code.
  int Route(const std::string& path, const std::string& query,
            std::string* body, std::string* content_type);

  void SendHttpResponse(int fd, int code, const std::string& content_type,
                        const std::string& body);

  const AdminServerOptions options_;
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;  // guards active_, conn_fds_
  std::condition_variable idle_cv_;
  int active_ = 0;
  std::vector<int> conn_fds_;  // open handler fds, for Stop() hangup

  class Metrics;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace ams::obs

#endif  // AMS_OBS_ADMIN_H_
