// Minimal JSON parser for the observability tooling: validates and loads the
// telemetry reports, JSONL delta snapshots, run ledgers, and Google-benchmark
// result files that the repo's own serializers and benches emit.
//
// Scope: full JSON grammar (null/bool/number/string/array/object) with
// string escape decoding (\uXXXX for the Basic Multilingual Plane; surrogate
// pairs are rejected — nothing in this repo emits them). Objects preserve
// insertion order and allow duplicate keys (Find returns the first). Numbers
// are doubles. This is a reader for trusted local files, not a hardened
// network-facing parser.
#ifndef AMS_OBS_JSON_PARSE_H_
#define AMS_OBS_JSON_PARSE_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ams::obs::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
Result<Value> Parse(const std::string& text);

}  // namespace ams::obs::json

#endif  // AMS_OBS_JSON_PARSE_H_
