// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with a lock-free fast path, optionally broken down by labels.
//
// Instruments are registered lazily and live for the life of the process, so
// call sites cache the returned reference once and then update it with plain
// std::atomic operations:
//
//   static obs::Counter& splits =
//       obs::MetricsRegistry::Get().GetCounter("gbdt/splits_evaluated");
//   splits.Add(n);
//
// Labeled instruments attach key/value pairs to a base name. Each distinct
// label set is interned once: the registry canonicalizes the labels into an
// encoded identity (`name{k1="v1",k2="v2"}`, keys sorted) and indexes it in a
// hash map, so a labeled lookup is one mutex + one hash probe and the
// returned instrument's update path is the same plain atomic as the
// unlabeled case. Hot loops should still cache the reference per label value
// (see gbdt.cc's per-depth counter array):
//
//   obs::Counter& ams_fits = obs::MetricsRegistry::Get().GetCounter(
//       "exp/models_fit", {{"model", "AMS"}});
//
// The registry lock is only taken on registration/lookup and when taking a
// snapshot; increments never contend. `MetricsRegistry::Snapshot()` returns a
// plain-struct copy suitable for serialization (see obs/report.h) and can
// interpolate p50/p95/p99 from histogram bucket counts.
#ifndef AMS_OBS_METRICS_H_
#define AMS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ams::obs {

/// Label set for one instrument: key/value pairs, order-insensitive
/// (canonicalized by key at interning time).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical encoded identity of a labeled instrument:
/// `name{k1="v1",k2="v2"}` with keys sorted (stable for equal keys). With no
/// labels this is just `name`. Label values are embedded raw; JSON reports
/// escape them at serialization time (see obs/report.h).
std::string EncodeLabeledName(const std::string& name, const Labels& labels);

/// Monotonically increasing integer (events, items processed).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins floating point value (loss, learning rate, norm).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over doubles. Bucket i counts observations with
/// value <= bounds[i]; one implicit overflow bucket catches the rest. The
/// running sum uses a compare-exchange loop (no atomic<double>::fetch_add
/// before C++20 on all targets), which is still wait-free in practice for
/// our contention levels.
///
/// Observe() guards its input: NaN observations are dropped and negative
/// ones clamped to zero (both counted in "obs/dropped_observations"), so
/// clock adjustments or guarded math can never corrupt bucket counts.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bucket_bounds);

  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::vector<double>& bucket_bounds() const { return bounds_; }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket counts, length bounds.size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;

  void Reset();

  /// Exponential bounds {base, base*growth, ...} with `count` entries;
  /// the default suits millisecond-scale timings (0.01 ms .. ~5 s).
  static std::vector<double> ExponentialBounds(double base = 0.01,
                                               double growth = 2.0,
                                               int count = 20);

 private:
  const std::string name_;
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Plain-data view of the registry at one instant.
///
/// Every value carries both the canonical encoded `name` (what the JSON
/// report keys on) and its decomposition into `base` + `labels` as supplied
/// at interning time, so exporters with their own label syntax (Prometheus
/// exposition — obs/prometheus.h) never have to re-parse the encoded form,
/// which is ambiguous for hostile label values. Instruments registered
/// through the unlabeled accessors have base == name and empty labels.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
    std::string base;
    Labels labels;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
    std::string base;
    Labels labels;
  };
  struct HistogramValue {
    std::string name;
    std::string base;
    Labels labels;
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bucket_bounds;
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1
    double mean() const { return count > 0 ? sum / count : 0.0; }
    /// Interpolated quantile (q in [0,1]) from the bucket counts: linear
    /// within the containing bucket, assuming the first bucket starts at 0
    /// (or at its bound when that is negative). Observations that landed in
    /// the overflow bucket report the largest finite bound — the estimate
    /// cannot extrapolate past it. Returns 0 for an empty histogram.
    double Percentile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-wide instrument owner. Thread-safe; instruments returned by the
/// Get*() accessors remain valid until process exit (Reset() zeroes values
/// but never invalidates references).
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Requesting an existing name with a different instrument kind is a
  /// programming error and aborts in debug builds; in release the existing
  /// instrument of the requested kind is shadowed by a fresh one.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bucket_bounds` is only consulted on first registration.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bucket_bounds = {});

  /// Labeled variants: `GetCounter("exp/models_fit", {{"model", "AMS"}})`.
  /// The (name, labels) pair is interned into one canonical instrument —
  /// label order does not matter, and every call with an equal label set
  /// returns the same reference. An empty label set is identical to the
  /// unlabeled accessor.
  Counter& GetCounter(const std::string& name, const Labels& labels);
  Gauge& GetGauge(const std::string& name, const Labels& labels);
  Histogram& GetHistogram(const std::string& name, const Labels& labels,
                          std::vector<double> bucket_bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (references stay valid). Intended
  /// for tests and for benchmarks that reuse the process.
  void ResetAll();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // Deques: stable addresses across growth, so returned references outlive
  // later registrations. The index maps the canonical (encoded) name to the
  // interned instrument so lookups stay O(1) as labeled cardinality grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
  // Encoded name -> (base, canonical labels), recorded by the labeled
  // accessors so Snapshot() can hand exporters the decomposed identity.
  std::unordered_map<std::string, std::pair<std::string, Labels>> decomp_;

  void RecordDecomposition(const std::string& encoded, const std::string& base,
                           const Labels& labels);
};

}  // namespace ams::obs

#endif  // AMS_OBS_METRICS_H_
