#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/env_util.h"
#include "util/logging.h"

namespace ams::obs {

namespace {

std::atomic<bool (*)()> g_write_fault_hook{nullptr};

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

const char* StatusLine(int code) {
  switch (code) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    case 431:
      return "431 Request Header Fields Too Large";
    case 503:
      return "503 Service Unavailable";
  }
  return "500 Internal Server Error";
}

/// Value of `key` in an HTTP query string ("a=1&b=2"), empty when absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// Strict non-negative integer parse for query parameters; returns
/// `fallback` on empty/garbage/overflow. Stricter than env::EnvInt on
/// purpose — query strings are remote input.
int ParseQueryInt(const std::string& value, int fallback) {
  if (value.empty() || value.size() > 9) return fallback;
  int out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return fallback;
    out = out * 10 + (c - '0');
  }
  return out;
}

std::string IndexBody() {
  return
      "ams admin plane\n"
      "  /metrics        Prometheus text exposition\n"
      "  /metrics.json   JSON metrics report\n"
      "  /healthz        SLO health (200 ok / 503 degraded|failing)\n"
      "  /tracez?n=N     last N completed spans (JSON)\n"
      "  /profilez?seconds=N  on-demand folded-stack profile\n"
      "  /varz           resolved AMS_* config + fingerprint (JSON)\n"
      "  /flightz        flight-recorder ring dump\n";
}

std::string HealthzBody(HealthState* state_out) {
  HealthMonitor* monitor = HealthMonitor::Global();
  if (monitor == nullptr) {
    *state_out = HealthState::kOk;
    return "ok (no AMS_SLO configured)\n";
  }
  const HealthState state =
      monitor->Evaluate(MetricsRegistry::Get().Snapshot());
  *state_out = state;
  std::ostringstream body;
  body << HealthStateName(state) << "\n";
  for (const SloResult& result : monitor->last_results()) {
    if (!result.violated) continue;
    body << "violated: " << result.target.spec
         << " observed=" << JsonNumber(result.observed)
         << " streak=" << result.streak << "\n";
  }
  return body.str();
}

std::string TracezBody(int limit) {
  std::vector<SpanRecord> spans = TraceBuffer::Get().Snapshot();
  const size_t n = std::min<size_t>(spans.size(), static_cast<size_t>(limit));
  std::ostringstream body;
  body << "{\"spans\":[";
  // Newest last; emit the trailing `n` records in recorded order.
  for (size_t i = spans.size() - n; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i != spans.size() - n) body << ",";
    body << "{\"name\":" << JsonEscape(span.name != nullptr ? span.name : "")
         << ",\"trace_id\":" << span.trace_id
         << ",\"span_id\":" << span.span_id
         << ",\"parent_id\":" << span.parent_id
         << ",\"thread\":" << span.thread_id << ",\"depth\":" << span.depth
         << ",\"start_us\":" << span.start_us
         << ",\"duration_us\":" << span.duration_us << "}";
  }
  body << "],\"count\":" << n << ",\"buffered\":" << spans.size() << "}\n";
  return body.str();
}

std::string ProfilezBody(int seconds, const std::atomic<bool>& stopping) {
  WallProfiler::Options options = WallProfiler::OptionsFromEnv();
  options.file_path.clear();  // response-only; never clobber AMS_PROFILE_FILE
  std::ostringstream folded;
  options.out = &folded;
  {
    WallProfiler profiler(options);
    // Sleep in short slices so Stop() of the admin plane does not have to
    // wait out a 10-second profile.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    while (std::chrono::steady_clock::now() < deadline &&
           !stopping.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    profiler.Stop();
  }
  std::string body = folded.str();
  if (body.empty()) body = "(no samples)\n";
  return body;
}

std::string VarzBody() {
  const std::string binary = CurrentBinaryName();
  std::ostringstream body;
  body << "{\"binary\":" << JsonEscape(binary) << ",\"pid\":" << ::getpid()
       << ",\"config_fingerprint\":" << JsonEscape(ConfigFingerprint(binary))
       << ",\"env\":{";
  bool first = true;
  for (const std::string& key : RunLedgerEnvKeys()) {
    if (!first) body << ",";
    first = false;
    const char* value = std::getenv(key.c_str());
    body << JsonEscape(key) << ":"
         << (value != nullptr ? JsonEscape(value) : "null");
  }
  body << "},\"components\":{";
  first = true;
  for (const auto& [key, value] : LedgerComponents()) {
    if (!first) body << ",";
    first = false;
    body << JsonEscape(key) << ":" << JsonEscape(value);
  }
  body << "}}\n";
  return body.str();
}

std::string FlightzBody() {
  FlightRecorder& recorder = FlightRecorder::Get();
  std::ostringstream body;
  body << "ams-flight-recorder-v1 reason=live events=";
  const std::vector<FlightRecorder::Event> events = recorder.SnapshotEvents();
  body << events.size() << " total=" << recorder.total_recorded() << "\n";
  for (const FlightRecorder::Event& event : events) {
    body << "E " << event.seq << " " << event.ts_us << " " << event.tid << " "
         << FlightEventKindName(event.kind) << " " << event.a << " "
         << event.b << " " << event.text << "\n";
  }
  return body.str();
}

}  // namespace

AdminServerOptions AdminServerOptions::FromEnv() {
  AdminServerOptions options;
  options.port = env::EnvInt("AMS_ADMIN_PORT", -1, 0, 65535);
  options.max_inflight = env::EnvInt("AMS_ADMIN_MAX_INFLIGHT", 8, 1, 256);
  options.timeout_ms = env::EnvInt("AMS_ADMIN_TIMEOUT_MS", 2000, 10, 60000);
  return options;
}

/// Cached instrument pointers (same idiom as NetServer::Metrics): scrape
/// accounting must not pay a registry lookup per request.
class AdminServer::Metrics {
 public:
  Metrics()
      : requests_(&MetricsRegistry::Get().GetCounter("obs/admin_requests")),
        http_errors_(
            &MetricsRegistry::Get().GetCounter("obs/admin_http_errors")),
        rejected_(&MetricsRegistry::Get().GetCounter("obs/admin_rejected")),
        torn_(&MetricsRegistry::Get().GetCounter("obs/admin_torn_scrapes")) {}

  void OnResponse(int code) {
    requests_->Increment();
    if (code >= 400) http_errors_->Increment();
  }
  void OnRejected() { rejected_->Increment(); }
  void OnTorn() { torn_->Increment(); }

 private:
  Counter* requests_;
  Counter* http_errors_;
  Counter* rejected_;
  Counter* torn_;
};

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)), metrics_(std::make_unique<Metrics>()) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::SetWriteFaultHook(bool (*hook)()) {
  g_write_fault_hook.store(hook, std::memory_order_release);
}

Status AdminServer::Start() {
  if (started_) return Status::InvalidArgument("admin server already started");
  if (!options_.enabled()) {
    return Status::InvalidArgument("admin server disabled (port < 0)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("admin socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::string("admin bind 127.0.0.1:") +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(fd);
    return Status::IoError(message);
  }
  if (::listen(fd, options_.backlog) < 0) {
    const std::string message =
        std::string("admin listen: ") + std::strerror(errno);
    ::close(fd);
    return Status::IoError(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const std::string message =
        std::string("admin getsockname: ") + std::strerror(errno);
    ::close(fd);
    return Status::IoError(message);
  }
  // /tracez needs a populated ring; respect an AMS_TRACE_FILE-sized buffer
  // if the exit reporter enabled one already.
  TraceBuffer& traces = TraceBuffer::Get();
  if (!traces.enabled()) {
    traces.SetCapacity(kAdminTraceCapacity);
    traces.SetEnabled(true);
  }
  listen_fd_ = fd;
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  port_.store(static_cast<int>(ntohs(bound.sin_port)),
              std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  AMS_LOG(Info) << "admin plane listening on 127.0.0.1:" << port();
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks accept(); close alone does not on all kernels.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Hang up every in-flight connection so slow scrapers cannot extend
    // shutdown past one response write.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  started_ = false;
  listen_fd_ = -1;
  port_.store(0, std::memory_order_release);
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == ECONNABORTED) continue;
      break;  // listen socket is gone; Stop() owns the lifecycle
    }
    SetSocketTimeouts(fd, options_.timeout_ms);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_ < options_.max_inflight) {
        ++active_;
        conn_fds_.push_back(fd);
        admitted = true;
      }
    }
    if (!admitted) {
      // Inline 503: the admin plane sheds rather than queues, mirroring the
      // serving front's admission policy. Drain briefly before close so the
      // RST from unread request bytes cannot discard the 503 out of the
      // peer's buffer; the timeout is cut short first — this runs on the
      // accept thread, which a slow peer must not be able to stall.
      metrics_->OnRejected();
      SendHttpResponse(fd, 503, "text/plain", "admin plane overloaded\n");
      ::shutdown(fd, SHUT_WR);
      SetSocketTimeouts(fd, 50);
      char drain[1024];
      size_t drained = 0;
      while (drained < kMaxRequestBytes) {
        const ssize_t n = ::recv(fd, drain, sizeof(drain), 0);
        if (n <= 0) break;
        drained += static_cast<size_t>(n);
      }
      ::close(fd);
      continue;
    }
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void AdminServer::HandleConnection(int fd) {
  std::string request;
  request.reserve(512);
  int error_code = 0;
  char buf[1024];
  // Read until the header terminator; a peer that shuts down its write side
  // early (EOF) sent a truncated request -> 400, an oversized header block
  // -> 431, a read timeout or transport error -> no response (the peer is
  // not listening).
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) {
      error_code = 431;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      request.append(buf, static_cast<size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n == 0) {
      error_code = 400;  // EOF before the blank line
      break;
    } else {
      error_code = -1;  // timeout / reset: nothing to answer
      break;
    }
  }
  if (error_code == 0) {
    // Parse "GET <path>[?query] HTTP/1.x" from the first line only.
    const size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
      error_code = 400;
    } else {
      const std::string method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.", 0) != 0 || version.size() != 8 ||
          version[7] < '0' || version[7] > '9') {
        error_code = 400;
      } else if (method != "GET") {
        error_code = 405;
      } else if (target.empty() || target[0] != '/') {
        error_code = 400;
      } else {
        std::string query;
        const size_t qmark = target.find('?');
        if (qmark != std::string::npos) {
          query = target.substr(qmark + 1);
          target.resize(qmark);
        }
        std::string body;
        std::string content_type = "text/plain";
        const int code = Route(target, query, &body, &content_type);
        metrics_->OnResponse(code);
        SendHttpResponse(fd, code, content_type, body);
      }
    }
  }
  if (error_code > 0) {
    metrics_->OnResponse(error_code);
    SendHttpResponse(fd, error_code, "text/plain",
                     std::string(StatusLine(error_code)) + "\n");
  }
  if (error_code >= 0) {
    // Lingering close: when we answered (possibly mid-request, e.g. a 431
    // with the peer still sending), drain what the peer has in flight
    // before closing — close() with unread bytes RSTs the connection and
    // can discard the response out of the peer's receive buffer. Bounded:
    // the per-recv timeout caps a silent peer, the byte cap a flooding one.
    ::shutdown(fd, SHUT_WR);
    size_t drained = 0;
    while (drained < kMaxRequestBytes * 8) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        drained += static_cast<size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        break;
      }
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_[i] = conn_fds_.back();
        conn_fds_.pop_back();
        break;
      }
    }
  }
  idle_cv_.notify_all();
}

int AdminServer::Route(const std::string& path, const std::string& query,
                       std::string* body, std::string* content_type) {
  if (path == "/") {
    *body = IndexBody();
    return 200;
  }
  if (path == "/metrics") {
    std::ostringstream out;
    WritePrometheusReport(MetricsRegistry::Get().Snapshot(), out);
    *body = out.str();
    *content_type = "text/plain; version=0.0.4";
    return 200;
  }
  if (path == "/metrics.json") {
    std::ostringstream out;
    WriteJsonReport(MetricsRegistry::Get().Snapshot(), out);
    out << "\n";
    *body = out.str();
    *content_type = "application/json";
    return 200;
  }
  if (path == "/healthz") {
    HealthState state = HealthState::kOk;
    *body = HealthzBody(&state);
    return state == HealthState::kOk ? 200 : 503;
  }
  if (path == "/tracez") {
    const int limit = std::min(
        ParseQueryInt(QueryParam(query, "n"), 256), 100000);
    *body = TracezBody(limit);
    *content_type = "application/json";
    return 200;
  }
  if (path == "/profilez") {
    const int seconds = std::min(
        std::max(ParseQueryInt(QueryParam(query, "seconds"), 1), 1), 10);
    *body = ProfilezBody(seconds, stopping_);
    return 200;
  }
  if (path == "/varz") {
    *body = VarzBody();
    *content_type = "application/json";
    return 200;
  }
  if (path == "/flightz") {
    if (!FlightRecorder::Get().enabled()) {
      *body = "flight recorder disabled (set AMS_FLIGHT_RECORDER)\n";
      return 404;
    }
    *body = FlightzBody();
    return 200;
  }
  *body = "not found\n";
  return 404;
}

void AdminServer::SendHttpResponse(int fd, int code,
                                   const std::string& content_type,
                                   const std::string& body) {
  std::string response = "HTTP/1.0 ";
  response += StatusLine(code);
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  bool (*hook)() = g_write_fault_hook.load(std::memory_order_acquire);
  if (hook != nullptr && hook()) {
    // Injected torn scrape: half the bytes, then a hangup. Scrapers must
    // treat short reads as failed scrapes, not empty metrics.
    metrics_->OnTorn();
    FlightRecorder::Get().Record(FlightEventKind::kFault,
                                 "torn_scrape@admin");
    SendAll(fd, response.data(), response.size() / 2);
    ::shutdown(fd, SHUT_RDWR);
    return;
  }
  SendAll(fd, response.data(), response.size());
}

}  // namespace ams::obs
