// PeriodicReporter: a background thread that emits JSONL delta snapshots of
// the metrics registry at a fixed interval, for long-running processes where
// one exit report is not enough.
//
// Environment wiring (via obs::InstallExitReporter or StartFromEnv):
//   AMS_TELEMETRY_INTERVAL_MS=<n>  enable, one snapshot line every n ms
//   AMS_TELEMETRY_FILE=path        write lines to `path` (truncated at
//                                  start) instead of stderr
//
// Each line is one self-contained JSON object:
//
//   {"schema":"ams-telemetry-delta-v1","seq":3,"uptime_ms":150.2,
//    "interval_ms":50.1,"final":false,
//    "counters":{"exp/models_fit{model=\"AMS\"}":{"total":4,"delta":1},...},
//    "gauges":{"par/pool_utilization":0.81,...},
//    "histograms":{"exp/fold/ms":{"count":6,"delta":2,"sum":312.5,
//                  "p50":48.1,"p95":60.2,"p99":61.0},...}}
//
// Counters and histograms carry both the running total and the delta since
// the previous line; gauges are last-write-wins values. Every registered
// instrument appears on every line (registration order is irrelevant), so
// any single line is a complete picture of the process.
//
// Two gauges are derived from deltas each tick and also written back into
// the registry (so the exit report sees their final values):
//   par/pool_utilization  delta(par/worker_busy_us) spread over the tick's
//                         wall time and the worker count (par/pool_size - 1;
//                         the pool's calling thread is not counted because
//                         worker_busy_us only measures queued tasks).
//   robust/fault_rate     fault events (robust/faults_injected, task_throws,
//                         crc_failures, checkpoint_corrupt, nan_detected,
//                         retries_exhausted) per second over the tick.
//
// Stop() (and the destructor) joins the thread and emits one final delta
// line flagged "final":true, so short-lived processes still get at least one
// snapshot; it is idempotent and safe to call from the exit reporter.
#ifndef AMS_OBS_PERIODIC_H_
#define AMS_OBS_PERIODIC_H_

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace ams::obs {

class PeriodicReporter {
 public:
  struct Options {
    int interval_ms = 1000;
    std::string file_path;   // empty: write to *out (or stderr)
    std::ostream* out = nullptr;  // test hook; ignored when file_path set
  };

  /// Starts the reporter thread immediately.
  explicit PeriodicReporter(Options options);
  ~PeriodicReporter();

  /// Joins the thread and emits the final delta line. Idempotent.
  void Stop();

  /// Lines emitted so far (including the final one after Stop).
  int lines_emitted() const;

  /// Options from AMS_TELEMETRY_INTERVAL_MS / AMS_TELEMETRY_FILE;
  /// interval_ms <= 0 when the interval variable is unset or invalid.
  static Options OptionsFromEnv();

  /// Starts the process-global reporter from the environment (once);
  /// returns nullptr when AMS_TELEMETRY_INTERVAL_MS is not set. The global
  /// instance is stopped by ShutdownGlobal(), which InstallExitReporter's
  /// atexit hook calls before flushing the exit report.
  static PeriodicReporter* StartFromEnv();
  static void ShutdownGlobal();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

 private:
  void Loop();
  /// Snapshots the registry, computes deltas and derived gauges, and writes
  /// one JSONL line. Only called from the reporter thread, or from Stop()
  /// after the thread has joined — never concurrently.
  void EmitLine(bool final_line);
  std::ostream& Sink();

  const Options options_;
  std::ofstream file_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_;
  MetricsSnapshot previous_;
  int seq_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ams::obs

#endif  // AMS_OBS_PERIODIC_H_
