// PeriodicReporter: a background thread that emits JSONL delta snapshots of
// the metrics registry at a fixed interval, for long-running processes where
// one exit report is not enough.
//
// Environment wiring (via obs::InstallExitReporter or StartFromEnv):
//   AMS_TELEMETRY_INTERVAL_MS=<n>  enable, one snapshot line every n ms
//   AMS_TELEMETRY_FILE=path        write lines to `path` (truncated at
//                                  start) instead of stderr
//   AMS_TELEMETRY_MAX_SERIES=<n>   labeled-series cap per line (default 512)
//
// Each line is one self-contained JSON object:
//
//   {"schema":"ams-telemetry-delta-v2","seq":3,"uptime_ms":150.2,
//    "interval_ms":50.1,"final":false,"full":false,"health":"ok",
//    "counters":{"exp/models_fit{model=\"AMS\"}":{"total":4,"delta":1},...},
//    "gauges":{"par/pool_utilization":0.81,...},
//    "histograms":{"exp/fold/ms":{"count":6,"delta":2,"sum":312.5,
//                  "p50":48.1,"p95":60.2,"p99":61.0},...}}
//
// Counters and histograms carry both the running total and the delta since
// the line they last appeared on; gauges are last-write-wins values.
//
// Emit-on-change: interior lines ("full":false) omit series that have not
// changed since they were last emitted — a counter/histogram with zero
// delta, a gauge with a bit-identical value. The first line and the final
// line are full snapshots ("full":true): every registered instrument
// appears, so any consumer that keeps the latest full line plus subsequent
// deltas always has a complete picture.
//
// Cardinality cap: at most `max_labeled_series` labeled instruments
// (name{k="v"}) are emitted per line (sorted name order, unlabeled series
// always emitted); series dropped past the cap are counted in the
// obs/dropped_series counter. This bounds line size when label cardinality
// runs away (e.g. per-entity labels).
//
// Derived gauges written back into the registry each tick (so the exit
// report sees final values):
//   par/pool_utilization{pool=N}  delta(par/worker_busy_us{pool=N}) spread
//                         over the tick's wall time and that pool's worker
//                         count (par/pool_size{pool=N} - 1; the pool's
//                         calling thread is not counted because
//                         worker_busy_us only measures queued tasks).
//   par/pool_utilization  the same, aggregated over every pool with
//                         workers (total busy delta / total worker-time).
//   robust/fault_rate     fault events (robust/faults_injected, task_throws,
//                         crc_failures, checkpoint_corrupt, nan_detected,
//                         retries_exhausted) per second over the tick.
//
// SLO health: when HealthMonitor::Global() is configured (AMS_SLO), every
// tick evaluates it against the snapshot and each line carries
// "health":"ok|degraded|failing" (plus the obs/health_state gauge the
// evaluation publishes — see obs/health.h).
//
// Stop() (and the destructor) joins the thread and emits one final line
// flagged "final":true, so short-lived processes still get at least one
// snapshot; it is idempotent and safe to call from the exit reporter.
#ifndef AMS_OBS_PERIODIC_H_
#define AMS_OBS_PERIODIC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace ams::obs {

class PeriodicReporter {
 public:
  struct Options {
    int interval_ms = 1000;
    std::string file_path;   // empty: write to *out (or stderr)
    std::ostream* out = nullptr;  // test hook; ignored when file_path set
    int max_labeled_series = 512;  // per line; overflow -> obs/dropped_series
  };

  /// Starts the reporter thread immediately.
  explicit PeriodicReporter(Options options);
  ~PeriodicReporter();

  /// Joins the thread and emits the final delta line. Idempotent.
  void Stop();

  /// Lines emitted so far (including the final one after Stop).
  int lines_emitted() const;

  /// Options from AMS_TELEMETRY_INTERVAL_MS / AMS_TELEMETRY_FILE /
  /// AMS_TELEMETRY_MAX_SERIES; interval_ms <= 0 when the interval variable
  /// is unset or invalid.
  static Options OptionsFromEnv();

  /// Starts the process-global reporter from the environment (once);
  /// returns nullptr when AMS_TELEMETRY_INTERVAL_MS is not set. The global
  /// instance is stopped by ShutdownGlobal(), which InstallExitReporter's
  /// atexit hook calls before flushing the exit report.
  static PeriodicReporter* StartFromEnv();
  static void ShutdownGlobal();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

 private:
  void Loop();
  /// Snapshots the registry, computes deltas and derived gauges, and writes
  /// one JSONL line. Only called from the reporter thread, or from Stop()
  /// after the thread has joined — never concurrently.
  void EmitLine(bool final_line);
  std::ostream& Sink();

  const Options options_;
  std::ofstream file_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_;
  MetricsSnapshot previous_tick_;  // last tick's snapshot (derived gauges)
  // Values as of the line each series last appeared on (emit-on-change).
  std::map<std::string, uint64_t> emitted_counters_;
  std::map<std::string, double> emitted_gauges_;
  std::map<std::string, uint64_t> emitted_histogram_counts_;
  int seq_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ams::obs

#endif  // AMS_OBS_PERIODIC_H_
