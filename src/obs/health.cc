#include "obs/health.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

namespace ams::obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailing:
      return "failing";
  }
  return "ok";
}

namespace {

bool IsKnownAggregate(const std::string& agg) {
  return agg == "value" || agg == "p50" || agg == "p95" || agg == "p99" ||
         agg == "mean" || agg == "count";
}

/// Looks `target` up in `snapshot`. Histogram aggregates only match
/// histograms; "value" prefers a gauge, then a counter, then a histogram's
/// count (so "serve/requests:>100"-style targets work on any kind).
bool LookupMetric(const MetricsSnapshot& snapshot, const SloTarget& target,
                  double* observed) {
  if (target.aggregate != "value") {
    for (const auto& h : snapshot.histograms) {
      if (h.name != target.metric) continue;
      if (target.aggregate == "p50") *observed = h.Percentile(0.50);
      if (target.aggregate == "p95") *observed = h.Percentile(0.95);
      if (target.aggregate == "p99") *observed = h.Percentile(0.99);
      if (target.aggregate == "mean") *observed = h.mean();
      if (target.aggregate == "count") {
        *observed = static_cast<double>(h.count);
      }
      return true;
    }
    return false;
  }
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == target.metric) {
      *observed = gauge.value;
      return true;
    }
  }
  for (const auto& counter : snapshot.counters) {
    if (counter.name == target.metric) {
      *observed = static_cast<double>(counter.value);
      return true;
    }
  }
  for (const auto& h : snapshot.histograms) {
    if (h.name == target.metric) {
      *observed = static_cast<double>(h.count);
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<SloTarget>> HealthMonitor::ParseSpec(
    const std::string& spec) {
  std::vector<SloTarget> targets;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t sep = spec.find(';', pos);
    const std::string item = spec.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos);
    pos = sep == std::string::npos ? spec.size() + 1 : sep + 1;
    if (item.empty()) continue;

    const size_t cmp_pos = item.find_first_of("<>");
    if (cmp_pos == std::string::npos || cmp_pos == 0) {
      return Status::InvalidArgument("AMS_SLO target \"" + item +
                                     "\": expected <metric>[:agg]<cmp><value>");
    }
    SloTarget target;
    target.spec = item;
    target.less_than = item[cmp_pos] == '<';
    size_t value_pos = cmp_pos + 1;
    if (value_pos < item.size() && item[value_pos] == '=') {
      target.or_equal = true;
      ++value_pos;
    }
    const std::string value_text = item.substr(value_pos);
    char* end = nullptr;
    target.threshold = std::strtod(value_text.c_str(), &end);
    if (value_text.empty() || end == value_text.c_str() || *end != '\0') {
      return Status::InvalidArgument("AMS_SLO target \"" + item +
                                     "\": threshold \"" + value_text +
                                     "\" is not a number");
    }

    std::string head = item.substr(0, cmp_pos);
    // Metric names contain '/' but never ':'; the last ':' (if any)
    // separates the optional aggregate. A trailing bare ':' ("m:<0.1")
    // means the instrument's value.
    const size_t colon = head.rfind(':');
    if (colon != std::string::npos) {
      target.aggregate = head.substr(colon + 1);
      head = head.substr(0, colon);
      if (target.aggregate.empty()) target.aggregate = "value";
    } else {
      target.aggregate = "value";
    }
    if (!IsKnownAggregate(target.aggregate)) {
      return Status::InvalidArgument(
          "AMS_SLO target \"" + item + "\": unknown aggregate \"" +
          target.aggregate + "\" (want p50|p95|p99|mean|count|value)");
    }
    if (head.empty()) {
      return Status::InvalidArgument("AMS_SLO target \"" + item +
                                     "\": empty metric name");
    }
    target.metric = head;
    targets.push_back(std::move(target));
  }
  return targets;
}

HealthMonitor::HealthMonitor(std::vector<SloTarget> targets, int fail_after)
    : targets_(std::move(targets)),
      fail_after_(std::max(1, fail_after)),
      streaks_(targets_.size(), 0) {}

HealthState HealthMonitor::Evaluate(const MetricsSnapshot& snapshot) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  std::lock_guard<std::mutex> lock(mu_);
  last_.clear();
  last_.reserve(targets_.size());
  bool any_violated = false;
  bool any_failing = false;
  for (size_t i = 0; i < targets_.size(); ++i) {
    const SloTarget& target = targets_[i];
    SloResult result;
    result.target = target;
    result.missing = !LookupMetric(snapshot, target, &result.observed);
    if (!result.missing) {
      const double v = result.observed;
      const double t = target.threshold;
      const bool healthy = target.less_than
                               ? (target.or_equal ? v <= t : v < t)
                               : (target.or_equal ? v >= t : v > t);
      result.violated = !healthy;
    }
    streaks_[i] = result.violated ? streaks_[i] + 1 : 0;
    result.streak = streaks_[i];
    any_violated |= result.violated;
    any_failing |= streaks_[i] >= fail_after_;
    registry.GetGauge("obs/slo_violation", {{"slo", target.spec}})
        .Set(result.violated ? 1.0 : 0.0);
    last_.push_back(std::move(result));
  }
  state_ = any_failing   ? HealthState::kFailing
           : any_violated ? HealthState::kDegraded
                          : HealthState::kOk;
  registry.GetCounter("obs/slo_evaluations").Increment();
  registry.GetGauge("obs/health_state")
      .Set(static_cast<double>(static_cast<int>(state_)));
  return state_;
}

HealthState HealthMonitor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::vector<SloResult> HealthMonitor::last_results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

namespace {

std::mutex g_health_mu;
HealthMonitor* g_health = nullptr;  // leaked; swapped by ConfigureGlobal
bool g_health_env_read = false;

}  // namespace

Status HealthMonitor::ConfigureGlobal(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_health_mu);
  g_health_env_read = true;  // explicit configuration overrides the env
  if (spec.empty()) {
    g_health = nullptr;  // old monitor leaks: the reporter thread may still
                         // hold a pointer, and one monitor is tiny
    return Status::OK();
  }
  Result<std::vector<SloTarget>> targets = ParseSpec(spec);
  if (!targets.ok()) return targets.status();
  g_health = new HealthMonitor(targets.MoveValue());
  return Status::OK();
}

HealthMonitor* HealthMonitor::Global() {
  std::lock_guard<std::mutex> lock(g_health_mu);
  if (!g_health_env_read) {
    g_health_env_read = true;
    const char* spec = std::getenv("AMS_SLO");
    if (spec != nullptr && spec[0] != '\0') {
      Result<std::vector<SloTarget>> targets = ParseSpec(spec);
      if (targets.ok()) {
        g_health = new HealthMonitor(targets.MoveValue());
      } else {
        std::cerr << "telemetry: ignoring AMS_SLO: "
                  << targets.status().ToString() << "\n";
      }
    }
  }
  return g_health;
}

}  // namespace ams::obs
