// Flight recorder: a fixed-size lock-free ring of recent process events —
// span begin/end, log lines >= warn, fault injections, per-request serve
// outcomes — dumped at crash time so a SIGSEGV/SIGABRT/fatal-Status death
// leaves behind the last thing the process was doing, not just a corpse.
//
// Enable with AMS_FLIGHT_RECORDER=<path> (capacity via
// AMS_FLIGHT_RECORDER_EVENTS, default 1024). Installation pre-opens the
// dump fd, arms SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers, and hooks
// the log observer; from then on Record() is a wait-free slot claim
// (fetch_add + plain stores + one release store) from any thread, and the
// signal handler's dump path is async-signal-safe by construction:
//
//   * the fd was opened at install time — no open() at crash time,
//   * formatting uses stack buffers and hand-rolled integer/hex rendering —
//     no malloc, no stdio, no locale,
//   * output leaves via write() (EINTR-retried) only,
//   * ring slots are read through relaxed/acquire atomic seq words — a slot
//     being concurrently written by a still-running thread is skipped, not
//     torn.
//
// After the dump the handler restores the default disposition and
// re-raises, so exit codes / core dumps behave exactly as without the
// recorder. Normal exits write the same dump via the exit reporter, and the
// admin plane serves the live ring at /flightz (obs/admin.h).
//
// Dump format (one line per record, text fields sanitized to one line):
//
//   ams-flight-recorder-v1 reason=signal:SIGABRT events=37 total=412
//   E <seq> <ts_us> <tid> <kind> <a> <b> <text...>
//
// kind in {span_begin, span_end, log, fault, serve_outcome, mark}. The
// a/b payload is kind-specific (documented at the Record call sites).
#ifndef AMS_OBS_FLIGHT_H_
#define AMS_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ams::obs {

enum class FlightEventKind : uint8_t {
  kSpanBegin = 1,
  kSpanEnd = 2,
  kLog = 3,
  kFault = 4,
  kServeOutcome = 5,
  kMark = 6,
};

/// Stable dump-format name ("span_begin", ...).
const char* FlightEventKindName(FlightEventKind kind);

class FlightRecorder {
 public:
  /// Per-event text payload bound (NUL included); longer texts truncate.
  static constexpr size_t kTextBytes = 104;

  /// One recorded event, unpacked for tests and the /flightz endpoint.
  struct Event {
    uint64_t seq = 0;  // global record ordinal (1-based)
    uint64_t ts_us = 0;  // trace-origin-relative (obs/trace.h)
    uint32_t tid = 0;    // TraceBuffer dense thread id
    FlightEventKind kind = FlightEventKind::kMark;
    uint64_t a = 0;
    uint64_t b = 0;
    std::string text;
  };

  static FlightRecorder& Get();

  /// True once Enable/InstallCrashDump ran; Record() is a single relaxed
  /// load when false.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arms the ring with `capacity` slots (clamped to [16, 1<<20]) without
  /// any file or signal wiring — tests and /flightz-only use. The capacity
  /// is fixed by whichever of Enable/InstallCrashDump runs first.
  void Enable(size_t capacity);

  /// Stops recording (the ring and its contents stay readable).
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Full installation: pre-opens `path` (created/truncated), arms the
  /// crash-signal handlers and the >=warn log observer, enables the ring.
  Status InstallCrashDump(const std::string& path, size_t capacity);

  /// InstallCrashDump from AMS_FLIGHT_RECORDER / AMS_FLIGHT_RECORDER_EVENTS;
  /// silently does nothing when the variable is unset. Failures warn.
  void InstallFromEnv();

  /// Records one event. Wait-free; safe from any thread; no-op when
  /// disabled. `text` may be nullptr (empty); control bytes are replaced
  /// with '_' at copy time so every dump line stays one line.
  void Record(FlightEventKind kind, const char* text, uint64_t a = 0,
              uint64_t b = 0);

  /// Async-signal-safe dump of the ring (oldest to newest) to `fd`.
  /// `reason` must be a NUL-terminated literal. Slots mid-write are
  /// skipped. Safe to call from a signal handler.
  void DumpToFd(int fd, const char* reason) const;

  /// DumpToFd to the pre-opened InstallCrashDump file, rewound and
  /// truncated first so repeated dumps (exit after a survived signal, or
  /// the exit reporter after a clean run) never interleave. No-op without
  /// InstallCrashDump. Async-signal-safe.
  void DumpToFile(const char* reason) const;

  /// Ordered (oldest -> newest) copy of the completed slots. Not
  /// signal-safe (allocates); this is the /flightz and test reader.
  std::vector<Event> SnapshotEvents() const;

  /// Records dropped because the ring was not yet enabled are not counted;
  /// this is the count of ring overwrites (total records - capacity floor).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;

  struct Slot {
    /// 0 = never written / being rewritten; claim ordinal + 1 once the
    /// payload below is complete.
    std::atomic<uint64_t> seq{0};
    uint64_t ts_us = 0;
    uint32_t tid = 0;
    FlightEventKind kind = FlightEventKind::kMark;
    uint64_t a = 0;
    uint64_t b = 0;
    char text[kTextBytes] = {0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};
  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  int fd_ = -1;  // pre-opened dump file; -1 until InstallCrashDump
  std::string path_;
};

}  // namespace ams::obs

#endif  // AMS_OBS_FLIGHT_H_
