// Run ledger: one JSON manifest per instrumented process run, so perf and
// behaviour changes can be compared against a *recorded* baseline instead of
// anecdote (tools/bench_diff consumes these files and BENCH_*.json alike).
//
// Enable with AMS_RUN_LEDGER=<dir>: at process exit (via
// obs::InstallExitReporter) a manifest is written to
// <dir>/run_<binary>_<pid>.json containing:
//
//   {"schema":"ams-run-ledger-v1","schema_version":1,
//    "binary":"quickstart","pid":12345,
//    "config_fingerprint":"9f3a...",       // FNV-1a over binary + env below
//    "wall_time_ms":1234.5,                // since InstallExitReporter
//    "env":{"AMS_THREADS":"8","AMS_FAULTS":null,...},
//    "health":{"state":"ok","targets":[{"slo":"serve/latency_ms:p99<50",
//              "observed":12.3,"violated":false,"missing":false}]},
//              // null when AMS_SLO is unset (see obs/health.h)
//    "metrics":{...final obs::WriteJsonReport snapshot...}}
//
// The env block captures every AMS_* variable that changes behaviour
// (threads, faults, guard policy, checkpoints, telemetry); unset variables
// serialize as null so two ledgers always have comparable keys. Non-finite
// gauge values in the metrics block serialize as null (valid JSON) exactly
// like the exit report.
#ifndef AMS_OBS_LEDGER_H_
#define AMS_OBS_LEDGER_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace ams::obs {

/// Bumped whenever the manifest layout changes incompatibly.
inline constexpr int kRunLedgerSchemaVersion = 1;

/// The AMS_* environment variables captured into the manifest (and hashed
/// into the fingerprint), null when unset.
const std::vector<std::string>& RunLedgerEnvKeys();

/// Registers a named component identity — e.g. the serving layer calls
/// SetLedgerComponent("serve_model_fingerprint", <fp>) after every model
/// (re)load — folded into ConfigFingerprint and emitted as the manifest's
/// "components" object, so two ledgers only fingerprint-match when they also
/// served the same model. Last write per key wins; thread-safe.
void SetLedgerComponent(const std::string& key, const std::string& value);

/// Sorted snapshot of the registered components (tests / manifest writer).
std::vector<std::pair<std::string, std::string>> LedgerComponents();

/// Clears all registered components (tests only).
void ClearLedgerComponents();

/// FNV-1a hex digest over the binary name and the captured environment:
/// two runs with equal fingerprints ran the same configuration.
std::string ConfigFingerprint(const std::string& binary_name);

/// Serializes the manifest (no trailing newline handling needed; one JSON
/// object). Exposed for tests; production use goes through
/// WriteRunLedgerFromEnv.
void WriteRunLedgerJson(const std::string& binary_name, int pid,
                        double wall_time_ms, const MetricsSnapshot& snapshot,
                        std::ostream& out);

/// Writes <dir>/run_<binary>_<pid>.json atomically (temp file + rename).
Status WriteRunLedger(const std::string& dir, const std::string& binary_name,
                      double wall_time_ms, const MetricsSnapshot& snapshot);

/// No-op unless AMS_RUN_LEDGER is set; then snapshots the registry and
/// writes the manifest for this process. `wall_time_ms` is measured from
/// MarkProcessStart() (InstallExitReporter calls it).
Status WriteRunLedgerFromEnv();

/// Records the process start instant for wall_time_ms. Idempotent; the
/// first call wins.
void MarkProcessStart();

/// Best-effort short binary name (/proc/self/comm on Linux), "ams_process"
/// when unavailable; sanitized for use in file names.
std::string CurrentBinaryName();

}  // namespace ams::obs

#endif  // AMS_OBS_LEDGER_H_
