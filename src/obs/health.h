// SLO health monitor: declarative targets over registry metrics, evaluated
// on every PeriodicReporter tick, producing one machine-readable process
// health state — the hook a load shedder or champion/challenger promoter
// consumes instead of re-deriving "is this process healthy" from raw
// series.
//
// Targets come from one environment variable:
//
//   AMS_SLO="serve/latency_ms:p99<50;robust/fault_rate:<0.01"
//
// Grammar, ';'-separated targets:  <metric>[:<agg>]<cmp><threshold>
//   metric  registry instrument name (counter, gauge, or histogram)
//   agg     histogram aggregate p50 | p95 | p99 | mean | count; omitted
//           (or the bare ':' form above) means the instrument's value —
//           gauge value or counter total
//   cmp     < <= > >=
// Malformed targets are rejected at parse time (the whole spec is refused,
// with a stderr diagnostic, rather than silently monitoring half of it).
//
// State machine per evaluation (one Evaluate() call = one reporter tick):
//   ok        no target is currently violated
//   degraded  >= 1 target violated, none persistently
//   failing   >= 1 target violated for `fail_after` consecutive
//             evaluations (default 3 — hysteresis so one slow tick cannot
//             flip a process into failing)
// A target whose metric is not registered (yet) is "missing", never
// violated: SLOs can be declared before the serving path starts.
//
// The state is exported three ways:
//   * gauges: obs/health_state (0 ok / 1 degraded / 2 failing) and one
//     obs/slo_violation{slo="<target>"} per target (1 = currently violated)
//   * JSONL:  every periodic delta line carries "health":"ok|degraded|
//     failing" when AMS_SLO is set (see obs/periodic.h)
//   * ledger: the run manifest gains a "health" object with the final state
//     and per-target observations (see obs/ledger.h)
#ifndef AMS_OBS_HEALTH_H_
#define AMS_OBS_HEALTH_H_

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace ams::obs {

enum class HealthState { kOk = 0, kDegraded = 1, kFailing = 2 };

/// "ok" | "degraded" | "failing".
const char* HealthStateName(HealthState state);

/// One parsed SLO target.
struct SloTarget {
  std::string metric;     // instrument name
  std::string aggregate;  // "value" | "p50" | "p95" | "p99" | "mean" | "count"
  bool less_than = true;  // direction of the healthy region
  bool or_equal = false;
  double threshold = 0.0;
  std::string spec;       // original "metric:agg<thr" text (labels, ledger)
};

/// One target's outcome from the latest evaluation.
struct SloResult {
  SloTarget target;
  double observed = 0.0;
  bool missing = false;   // metric not registered; never a violation
  bool violated = false;
  int streak = 0;         // consecutive evaluations violated
};

class HealthMonitor {
 public:
  /// Parses an AMS_SLO spec string. Empty spec -> empty target list (ok).
  static Result<std::vector<SloTarget>> ParseSpec(const std::string& spec);

  explicit HealthMonitor(std::vector<SloTarget> targets, int fail_after = 3);

  /// Evaluates every target against `snapshot`, updates violation streaks,
  /// publishes the obs/health_state and obs/slo_violation{...} gauges, and
  /// returns the new state. Thread-safe (reporter tick vs. exit path).
  HealthState Evaluate(const MetricsSnapshot& snapshot);

  HealthState state() const;
  std::vector<SloResult> last_results() const;
  const std::vector<SloTarget>& targets() const { return targets_; }

  /// (Re)builds the process-global monitor from `spec`; empty spec clears
  /// it (Global() returns nullptr again). Returns the parse error on a
  /// malformed spec, leaving the previous global untouched. Tests use this
  /// directly; production wiring goes through Global()'s lazy AMS_SLO read.
  static Status ConfigureGlobal(const std::string& spec);

  /// The process-global monitor, lazily built from AMS_SLO on first call;
  /// nullptr when AMS_SLO is unset/empty or failed to parse (the parse
  /// error is reported to stderr once).
  static HealthMonitor* Global();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

 private:
  const std::vector<SloTarget> targets_;
  const int fail_after_;

  mutable std::mutex mu_;
  std::vector<int> streaks_;        // per target, guarded by mu_
  std::vector<SloResult> last_;     // guarded by mu_
  HealthState state_ = HealthState::kOk;  // guarded by mu_
};

}  // namespace ams::obs

#endif  // AMS_OBS_HEALTH_H_
