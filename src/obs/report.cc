#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>

#include "obs/flight.h"
#include "obs/ledger.h"
#include "obs/periodic.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ams::obs {

std::string JsonNumber(double value) {
  if (!(value == value)) return "null";
  if (value == std::numeric_limits<double>::infinity()) return "null";
  if (value == -std::numeric_limits<double>::infinity()) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest form that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) {
      return candidate;
    }
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

/// Human-friendly quantity for the text table: full precision is noise
/// there, four significant decimals are plenty.
std::string TextNumber(double value) { return FormatDouble(value, 4); }

}  // namespace

TelemetryMode TelemetryModeFromEnv() {
  const char* env = std::getenv("AMS_TELEMETRY");
  if (env == nullptr) return TelemetryMode::kOff;
  const std::string mode(env);
  if (mode == "text") return TelemetryMode::kText;
  if (mode == "json") return TelemetryMode::kJson;
  return TelemetryMode::kOff;
}

void WriteJsonReport(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonEscape(snapshot.counters[i].name) << ":"
        << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonEscape(snapshot.gauges[i].name) << ":"
        << JsonNumber(snapshot.gauges[i].value);
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << JsonEscape(h.name) << ":{\"count\":" << h.count
        << ",\"sum\":" << JsonNumber(h.sum)
        << ",\"mean\":" << JsonNumber(h.mean())
        << ",\"p50\":" << JsonNumber(h.Percentile(0.50))
        << ",\"p95\":" << JsonNumber(h.Percentile(0.95))
        << ",\"p99\":" << JsonNumber(h.Percentile(0.99)) << ",\"buckets\":[";
    bool first = true;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (h.bucket_counts[b] == 0) continue;  // sparse: drop empty buckets
      if (!first) out << ",";
      first = false;
      out << "{\"le\":"
          << (b < h.bucket_bounds.size() ? JsonNumber(h.bucket_bounds[b])
                                         : std::string("null"))
          << ",\"count\":" << h.bucket_counts[b] << "}";
    }
    out << "]}";
  }
  out << "}}\n";
}

void WriteTextReport(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "--- telemetry report ---\n";
  if (!snapshot.counters.empty()) {
    std::vector<std::vector<std::string>> rows = {{"counter", "value"}};
    for (const auto& counter : snapshot.counters) {
      rows.push_back({counter.name, std::to_string(counter.value)});
    }
    out << RenderTable(rows);
  }
  if (!snapshot.gauges.empty()) {
    std::vector<std::vector<std::string>> rows = {{"gauge", "value"}};
    for (const auto& gauge : snapshot.gauges) {
      rows.push_back({gauge.name, TextNumber(gauge.value)});
    }
    out << RenderTable(rows);
  }
  if (!snapshot.histograms.empty()) {
    std::vector<std::vector<std::string>> rows = {
        {"histogram", "count", "mean", "p50", "p95", "p99", "sum"}};
    for (const auto& h : snapshot.histograms) {
      rows.push_back({h.name, std::to_string(h.count), TextNumber(h.mean()),
                      TextNumber(h.Percentile(0.50)),
                      TextNumber(h.Percentile(0.95)),
                      TextNumber(h.Percentile(0.99)), TextNumber(h.sum)});
    }
    out << RenderTable(rows);
  }
  out << "------------------------\n";
}

void FlushReport(TelemetryMode mode, std::ostream& out) {
  if (mode == TelemetryMode::kOff) return;
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  if (snapshot.empty()) return;
  if (mode == TelemetryMode::kJson) {
    WriteJsonReport(snapshot, out);
  } else {
    WriteTextReport(snapshot, out);
  }
  out.flush();
}

namespace {

void ExitReporter() {
  // Stop the profiler first (writes AMS_PROFILE_FILE; finalizes
  // obs/profile_samples), then the periodic reporter: it joins its thread,
  // emits the final delta line, and folds the last worker_busy_us / fault
  // deltas into the derived gauges so the exit report below sees their
  // final values.
  WallProfiler::ShutdownGlobal();
  PeriodicReporter::ShutdownGlobal();
  FlushReport(TelemetryModeFromEnv(), std::cerr);
  const char* trace_path = std::getenv("AMS_TRACE_FILE");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    std::ofstream out(trace_path);
    if (out) {
      TraceExporter::WriteJson(out);
    } else {
      std::cerr << "telemetry: cannot open AMS_TRACE_FILE " << trace_path
                << "\n";
    }
  }
  const Status ledger_status = WriteRunLedgerFromEnv();
  if (!ledger_status.ok()) {
    std::cerr << "telemetry: run ledger failed: " << ledger_status.ToString()
              << "\n";
  }
  // Clean-exit dump: the flight-recorder file always holds the run's last
  // events, crash or not (no-op when AMS_FLIGHT_RECORDER is unset).
  FlightRecorder::Get().DumpToFile("exit");
}

}  // namespace

void InstallExitReporter() {
  static std::once_flag once;
  std::call_once(once, [] {
    MarkProcessStart();
    const char* trace_path = std::getenv("AMS_TRACE_FILE");
    if (trace_path != nullptr && trace_path[0] != '\0') {
      TraceBuffer::Get().SetEnabled(true);
    }
    PeriodicReporter::StartFromEnv();
    WallProfiler::StartFromEnv();
    FlightRecorder::Get().InstallFromEnv();
    std::atexit(ExitReporter);
  });
}

}  // namespace ams::obs
