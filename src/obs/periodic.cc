#include "obs/periodic.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "obs/health.h"
#include "obs/report.h"

namespace ams::obs {

namespace {

/// Exact counter names summed into the robust/fault_rate gauge. Labeled
/// breakdowns (e.g. robust/faults_injected{kind="nan_grad"}) are excluded by
/// exact-name matching so events are never double-counted.
constexpr const char* kFaultEventCounters[] = {
    "robust/faults_injected",    "robust/task_throws",
    "robust/crc_failures",       "robust/checkpoint_corrupt",
    "robust/nan_detected",       "robust/retries_exhausted",
};

uint64_t FindCounter(const MetricsSnapshot& snapshot,
                     const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

double FindGauge(const MetricsSnapshot& snapshot, const std::string& name,
                 double fallback) {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return fallback;
}

bool IsLabeledName(const std::string& name) {
  return name.find('{') != std::string::npos;
}

}  // namespace

PeriodicReporter::PeriodicReporter(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      last_emit_(start_) {
  if (!options_.file_path.empty()) {
    file_.open(options_.file_path, std::ios::trunc);
    if (!file_) {
      std::cerr << "telemetry: cannot open AMS_TELEMETRY_FILE "
                << options_.file_path << "; falling back to stderr\n";
    }
  }
  thread_ = std::thread([this] { Loop(); });
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

std::ostream& PeriodicReporter::Sink() {
  if (file_.is_open() && file_) return file_;
  if (options_.out != nullptr) return *options_.out;
  return std::cerr;
}

void PeriodicReporter::Loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.interval_ms));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;  // final line is emitted by Stop() after the join
    }
    lock.unlock();
    EmitLine(/*final_line=*/false);
    lock.lock();
  }
}

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitLine(/*final_line=*/true);
  Sink().flush();
}

int PeriodicReporter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void PeriodicReporter::EmitLine(bool final_line) {
  const auto now = std::chrono::steady_clock::now();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(now - start_).count();
  const double interval_ms =
      std::chrono::duration<double, std::milli>(now - last_emit_).count();
  last_emit_ = now;

  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  MetricsRegistry& registry = MetricsRegistry::Get();
  auto upsert = [&](const std::string& name, double value) {
    registry.GetGauge(name).Set(value);
    for (auto& gauge : snapshot.gauges) {
      if (gauge.name == name) {
        gauge.value = value;
        return;
      }
    }
    snapshot.gauges.push_back({name, value});
  };

  // --- Derived gauges from counter deltas over this tick. ---
  const double elapsed_us = std::max(interval_ms, 1e-3) * 1000.0;
  // One utilization gauge per pool: pair each par/worker_busy_us{pool="N"}
  // counter with its par/pool_size{pool="N"} gauge, plus one unlabeled
  // aggregate (total busy delta over total worker wall time across pools).
  const std::string busy_prefix = "par/worker_busy_us{";
  double busy_delta_total = 0.0;
  double worker_time_total = 0.0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind(busy_prefix, 0) != 0) continue;
    const std::string label_part = counter.name.substr(busy_prefix.size() - 1);
    const uint64_t before = FindCounter(previous_tick_, counter.name);
    const double busy_delta =
        static_cast<double>(counter.value - std::min(counter.value, before));
    const int workers = std::max(
        0,
        static_cast<int>(FindGauge(snapshot, "par/pool_size" + label_part,
                                   1.0)) -
            1);
    const double utilization =
        workers > 0
            ? std::clamp(busy_delta / (elapsed_us * workers), 0.0, 1.0)
            : 0.0;
    // Labels are already canonically encoded in the counter name; reuse
    // them verbatim on the derived gauge so the series line up.
    upsert("par/pool_utilization" + label_part, utilization);
    busy_delta_total += busy_delta;
    worker_time_total += elapsed_us * workers;
  }
  const double utilization =
      worker_time_total > 0.0
          ? std::clamp(busy_delta_total / worker_time_total, 0.0, 1.0)
          : 0.0;

  uint64_t fault_delta = 0;
  for (const char* name : kFaultEventCounters) {
    const uint64_t now_value = FindCounter(snapshot, name);
    const uint64_t before = FindCounter(previous_tick_, name);
    fault_delta += now_value - std::min(now_value, before);
  }
  const double fault_rate =
      static_cast<double>(fault_delta) / (elapsed_us / 1e6);

  upsert("par/pool_utilization", utilization);
  upsert("robust/fault_rate", fault_rate);

  // --- SLO health evaluation (publishes obs/health_state & co). ---
  const char* health_name = nullptr;
  if (HealthMonitor* health = HealthMonitor::Global()) {
    const HealthState state = health->Evaluate(snapshot);
    health_name = HealthStateName(state);
    upsert("obs/health_state", static_cast<double>(static_cast<int>(state)));
    for (const SloResult& result : health->last_results()) {
      upsert(EncodeLabeledName("obs/slo_violation",
                               {{"slo", result.target.spec}}),
             result.violated ? 1.0 : 0.0);
    }
  }
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  // --- One self-contained JSONL line. ---
  // Interior lines omit unchanged series; the first and final lines are
  // full snapshots. Labeled series beyond the cap are dropped (counted in
  // obs/dropped_series — an unlabeled counter, so the drop is itself always
  // visible on the next line it changes).
  int seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++seq_;
  }
  const bool full = final_line || seq == 1;
  static Counter& dropped_series =
      MetricsRegistry::Get().GetCounter("obs/dropped_series");
  const int max_labeled = std::max(0, options_.max_labeled_series);
  int labeled_emitted = 0;
  uint64_t dropped_this_line = 0;
  auto admit = [&](const std::string& name, bool changed) {
    if (!full && !changed) return false;
    if (IsLabeledName(name)) {
      if (labeled_emitted >= max_labeled) {
        ++dropped_this_line;
        return false;
      }
      ++labeled_emitted;
    }
    return true;
  };

  std::ostream& out = Sink();
  out << "{\"schema\":\"ams-telemetry-delta-v2\",\"seq\":" << seq
      << ",\"uptime_ms\":" << JsonNumber(uptime_ms)
      << ",\"interval_ms\":" << JsonNumber(interval_ms)
      << ",\"final\":" << (final_line ? "true" : "false")
      << ",\"full\":" << (full ? "true" : "false");
  if (health_name != nullptr) {
    out << ",\"health\":\"" << health_name << "\"";
  }

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    const auto it = emitted_counters_.find(counter.name);
    const uint64_t before = it != emitted_counters_.end() ? it->second : 0;
    const uint64_t delta = counter.value - std::min(counter.value, before);
    const bool changed = it == emitted_counters_.end() || delta > 0;
    if (!admit(counter.name, changed)) continue;
    if (!first) out << ",";
    first = false;
    out << JsonEscape(counter.name) << ":{\"total\":" << counter.value
        << ",\"delta\":" << delta << "}";
    emitted_counters_[counter.name] = counter.value;
  }

  out << "},\"gauges\":{";
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    const auto it = emitted_gauges_.find(gauge.name);
    const bool changed =
        it == emitted_gauges_.end() || it->second != gauge.value;
    if (!admit(gauge.name, changed)) continue;
    if (!first) out << ",";
    first = false;
    out << JsonEscape(gauge.name) << ":" << JsonNumber(gauge.value);
    emitted_gauges_[gauge.name] = gauge.value;
  }

  out << "},\"histograms\":{";
  first = true;
  for (const auto& histogram : snapshot.histograms) {
    const auto it = emitted_histogram_counts_.find(histogram.name);
    const uint64_t before =
        it != emitted_histogram_counts_.end() ? it->second : 0;
    const uint64_t delta =
        histogram.count - std::min(histogram.count, before);
    const bool changed = it == emitted_histogram_counts_.end() || delta > 0;
    if (!admit(histogram.name, changed)) continue;
    if (!first) out << ",";
    first = false;
    out << JsonEscape(histogram.name) << ":{\"count\":" << histogram.count
        << ",\"delta\":" << delta
        << ",\"sum\":" << JsonNumber(histogram.sum)
        << ",\"p50\":" << JsonNumber(histogram.Percentile(0.50))
        << ",\"p95\":" << JsonNumber(histogram.Percentile(0.95))
        << ",\"p99\":" << JsonNumber(histogram.Percentile(0.99)) << "}";
    emitted_histogram_counts_[histogram.name] = histogram.count;
  }
  out << "}}\n";
  out.flush();
  if (dropped_this_line > 0) dropped_series.Add(dropped_this_line);

  previous_tick_ = std::move(snapshot);
}

PeriodicReporter::Options PeriodicReporter::OptionsFromEnv() {
  Options options;
  options.interval_ms = 0;
  if (const char* env = std::getenv("AMS_TELEMETRY_INTERVAL_MS")) {
    options.interval_ms = std::atoi(env);
  }
  if (const char* path = std::getenv("AMS_TELEMETRY_FILE")) {
    options.file_path = path;
  }
  if (const char* cap = std::getenv("AMS_TELEMETRY_MAX_SERIES")) {
    const int parsed = std::atoi(cap);
    if (parsed > 0) options.max_labeled_series = parsed;
  }
  return options;
}

namespace {

std::mutex g_global_mu;
PeriodicReporter* g_global_reporter = nullptr;  // leaked; stopped at exit
bool g_global_started = false;

}  // namespace

PeriodicReporter* PeriodicReporter::StartFromEnv() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_started) return g_global_reporter;
  g_global_started = true;
  const Options options = OptionsFromEnv();
  if (options.interval_ms <= 0) return nullptr;
  g_global_reporter = new PeriodicReporter(options);
  return g_global_reporter;
}

void PeriodicReporter::ShutdownGlobal() {
  PeriodicReporter* reporter;
  {
    std::lock_guard<std::mutex> lock(g_global_mu);
    reporter = g_global_reporter;
  }
  if (reporter != nullptr) reporter->Stop();
}

}  // namespace ams::obs
