#include "obs/periodic.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "obs/report.h"

namespace ams::obs {

namespace {

/// Exact counter names summed into the robust/fault_rate gauge. Labeled
/// breakdowns (e.g. robust/faults_injected{kind="nan_grad"}) are excluded by
/// exact-name matching so events are never double-counted.
constexpr const char* kFaultEventCounters[] = {
    "robust/faults_injected",    "robust/task_throws",
    "robust/crc_failures",       "robust/checkpoint_corrupt",
    "robust/nan_detected",       "robust/retries_exhausted",
};

uint64_t FindCounter(const MetricsSnapshot& snapshot,
                     const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

double FindGauge(const MetricsSnapshot& snapshot, const std::string& name,
                 double fallback) {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return fallback;
}

}  // namespace

PeriodicReporter::PeriodicReporter(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      last_emit_(start_) {
  if (!options_.file_path.empty()) {
    file_.open(options_.file_path, std::ios::trunc);
    if (!file_) {
      std::cerr << "telemetry: cannot open AMS_TELEMETRY_FILE "
                << options_.file_path << "; falling back to stderr\n";
    }
  }
  thread_ = std::thread([this] { Loop(); });
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

std::ostream& PeriodicReporter::Sink() {
  if (file_.is_open() && file_) return file_;
  if (options_.out != nullptr) return *options_.out;
  return std::cerr;
}

void PeriodicReporter::Loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.interval_ms));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;  // final line is emitted by Stop() after the join
    }
    lock.unlock();
    EmitLine(/*final_line=*/false);
    lock.lock();
  }
}

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitLine(/*final_line=*/true);
  Sink().flush();
}

int PeriodicReporter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void PeriodicReporter::EmitLine(bool final_line) {
  const auto now = std::chrono::steady_clock::now();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(now - start_).count();
  const double interval_ms =
      std::chrono::duration<double, std::milli>(now - last_emit_).count();
  last_emit_ = now;

  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();

  // --- Derived gauges from counter deltas over this tick. ---
  const double elapsed_us = std::max(interval_ms, 1e-3) * 1000.0;
  const uint64_t busy_now = FindCounter(snapshot, "par/worker_busy_us");
  const uint64_t busy_before = FindCounter(previous_, "par/worker_busy_us");
  const double busy_delta =
      static_cast<double>(busy_now - std::min(busy_now, busy_before));
  const int workers = std::max(
      0, static_cast<int>(FindGauge(snapshot, "par/pool_size", 1.0)) - 1);
  const double utilization =
      workers > 0
          ? std::clamp(busy_delta / (elapsed_us * workers), 0.0, 1.0)
          : 0.0;

  uint64_t fault_delta = 0;
  for (const char* name : kFaultEventCounters) {
    const uint64_t now_value = FindCounter(snapshot, name);
    const uint64_t before = FindCounter(previous_, name);
    fault_delta += now_value - std::min(now_value, before);
  }
  const double fault_rate =
      static_cast<double>(fault_delta) / (elapsed_us / 1e6);

  // Publish into the registry (visible to the exit report) and upsert into
  // the local snapshot so this very line carries them too.
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("par/pool_utilization").Set(utilization);
  registry.GetGauge("robust/fault_rate").Set(fault_rate);
  auto upsert = [&](const std::string& name, double value) {
    for (auto& gauge : snapshot.gauges) {
      if (gauge.name == name) {
        gauge.value = value;
        return;
      }
    }
    snapshot.gauges.push_back({name, value});
  };
  upsert("par/pool_utilization", utilization);
  upsert("robust/fault_rate", fault_rate);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  // --- One self-contained JSONL line. ---
  std::ostream& out = Sink();
  int seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++seq_;
  }
  out << "{\"schema\":\"ams-telemetry-delta-v1\",\"seq\":" << seq
      << ",\"uptime_ms\":" << JsonNumber(uptime_ms)
      << ",\"interval_ms\":" << JsonNumber(interval_ms)
      << ",\"final\":" << (final_line ? "true" : "false");

  out << ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& counter = snapshot.counters[i];
    const uint64_t before = FindCounter(previous_, counter.name);
    if (i > 0) out << ",";
    out << JsonEscape(counter.name) << ":{\"total\":" << counter.value
        << ",\"delta\":" << (counter.value - std::min(counter.value, before))
        << "}";
  }

  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonEscape(snapshot.gauges[i].name) << ":"
        << JsonNumber(snapshot.gauges[i].value);
  }

  out << "},\"histograms\":{";
  bool first = true;
  for (const auto& histogram : snapshot.histograms) {
    uint64_t count_before = 0;
    for (const auto& prev : previous_.histograms) {
      if (prev.name == histogram.name) {
        count_before = prev.count;
        break;
      }
    }
    if (!first) out << ",";
    first = false;
    out << JsonEscape(histogram.name) << ":{\"count\":" << histogram.count
        << ",\"delta\":"
        << (histogram.count - std::min(histogram.count, count_before))
        << ",\"sum\":" << JsonNumber(histogram.sum)
        << ",\"p50\":" << JsonNumber(histogram.Percentile(0.50))
        << ",\"p95\":" << JsonNumber(histogram.Percentile(0.95))
        << ",\"p99\":" << JsonNumber(histogram.Percentile(0.99)) << "}";
  }
  out << "}}\n";
  out.flush();

  previous_ = std::move(snapshot);
}

PeriodicReporter::Options PeriodicReporter::OptionsFromEnv() {
  Options options;
  options.interval_ms = 0;
  if (const char* env = std::getenv("AMS_TELEMETRY_INTERVAL_MS")) {
    options.interval_ms = std::atoi(env);
  }
  if (const char* path = std::getenv("AMS_TELEMETRY_FILE")) {
    options.file_path = path;
  }
  return options;
}

namespace {

std::mutex g_global_mu;
PeriodicReporter* g_global_reporter = nullptr;  // leaked; stopped at exit
bool g_global_started = false;

}  // namespace

PeriodicReporter* PeriodicReporter::StartFromEnv() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_started) return g_global_reporter;
  g_global_started = true;
  const Options options = OptionsFromEnv();
  if (options.interval_ms <= 0) return nullptr;
  g_global_reporter = new PeriodicReporter(options);
  return g_global_reporter;
}

void PeriodicReporter::ShutdownGlobal() {
  PeriodicReporter* reporter;
  {
    std::lock_guard<std::mutex> lock(g_global_mu);
    reporter = g_global_reporter;
  }
  if (reporter != nullptr) reporter->Stop();
}

}  // namespace ams::obs
