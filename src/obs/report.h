// Telemetry reporting: serialize a MetricsSnapshot as JSON or as an
// aligned-column text table, and optionally flush one report at process
// exit.
//
// Behavior is controlled by environment variables:
//   AMS_TELEMETRY=text   human-readable table on stderr at exit
//   AMS_TELEMETRY=json   one JSON object on stderr at exit
//   AMS_TELEMETRY=off    (or unset) no output — zero telemetry bytes
//   AMS_TRACE_FILE=path  enable the span buffer and write Chrome trace-event
//                        JSON to `path` at exit (independent of the above)
//
// Binaries opt in with one call at the top of main():
//
//   int main(...) {
//     ams::obs::InstallExitReporter();
//     ...
//   }
//
// Reports go to stderr so instrumented CLIs keep their stdout byte-identical
// to the uninstrumented build.
#ifndef AMS_OBS_REPORT_H_
#define AMS_OBS_REPORT_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace ams::obs {

enum class TelemetryMode { kOff, kText, kJson };

/// Parses AMS_TELEMETRY ("off" | "text" | "json", case-sensitive; unset or
/// unrecognized values mean kOff).
TelemetryMode TelemetryModeFromEnv();

/// Serializes `snapshot` as a single JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
///    buckets:[{le,count},...]}}}
void WriteJsonReport(const MetricsSnapshot& snapshot, std::ostream& out);

/// Serializes `snapshot` as aligned-column text tables (one section per
/// instrument kind; empty sections are omitted).
void WriteTextReport(const MetricsSnapshot& snapshot, std::ostream& out);

/// Takes a registry snapshot and writes it to `out` in `mode`; no-op when
/// mode is kOff or the snapshot is empty.
void FlushReport(TelemetryMode mode, std::ostream& out);

/// Registers an atexit hook that (a) flushes a report to stderr per
/// AMS_TELEMETRY and (b) writes Chrome trace JSON to AMS_TRACE_FILE if that
/// variable is set (enabling the span buffer immediately). Idempotent.
void InstallExitReporter();

}  // namespace ams::obs

#endif  // AMS_OBS_REPORT_H_
