// Telemetry reporting: serialize a MetricsSnapshot as JSON or as an
// aligned-column text table, and optionally flush one report at process
// exit.
//
// Behavior is controlled by environment variables:
//   AMS_TELEMETRY=text   human-readable table on stderr at exit
//   AMS_TELEMETRY=json   one JSON object on stderr at exit
//   AMS_TELEMETRY=off    (or unset) no output — zero telemetry bytes
//   AMS_TELEMETRY_INTERVAL_MS=n  periodic JSONL delta snapshots every n ms
//                        while the process runs (see obs/periodic.h)
//   AMS_TELEMETRY_FILE=path  periodic snapshots go to `path`, not stderr
//   AMS_TRACE_FILE=path  enable the span buffer and write Chrome trace-event
//                        JSON to `path` at exit (independent of the above)
//   AMS_RUN_LEDGER=dir   write a per-run manifest (config fingerprint, env,
//                        wall time, final metrics, SLO health) to `dir` at
//                        exit (see obs/ledger.h)
//   AMS_PROFILE_FILE=path  run the sampling wall-clock profiler and write
//                        folded stacks to `path` at exit (AMS_PROFILE_HZ
//                        sets the rate; see obs/profiler.h)
//   AMS_SLO="m:p99<50;..."  evaluate SLO targets on every periodic tick and
//                        export a process health state (see obs/health.h)
//   AMS_FLIGHT_RECORDER=path  arm the crash-time flight recorder: a ring of
//                        recent events dumped to `path` on fatal signals and
//                        at exit (AMS_FLIGHT_RECORDER_EVENTS sets the ring
//                        size, default 1024; see obs/flight.h)
//
// Binaries opt in with one call at the top of main():
//
//   int main(...) {
//     ams::obs::InstallExitReporter();
//     ...
//   }
//
// Reports go to stderr so instrumented CLIs keep their stdout byte-identical
// to the uninstrumented build.
#ifndef AMS_OBS_REPORT_H_
#define AMS_OBS_REPORT_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace ams::obs {

enum class TelemetryMode { kOff, kText, kJson };

/// Parses AMS_TELEMETRY ("off" | "text" | "json", case-sensitive; unset or
/// unrecognized values mean kOff).
TelemetryMode TelemetryModeFromEnv();

/// Shortest round-trippable JSON number for `value`; NaN and +/-Inf
/// serialize as `null` (bare `nan`/`inf` would be invalid JSON — guarded
/// la::stats math can legitimately set such gauges).
std::string JsonNumber(double value);

/// `s` as a quoted JSON string: quotes, backslashes, and all control
/// characters escaped (\n, \t, ... and \u00XX for the rest), so hostile
/// instrument or span names can never break report well-formedness.
std::string JsonEscape(const std::string& s);

/// Serializes `snapshot` as a single JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
///    p50,p95,p99,buckets:[{le,count},...]}}}
void WriteJsonReport(const MetricsSnapshot& snapshot, std::ostream& out);

/// Serializes `snapshot` as aligned-column text tables (one section per
/// instrument kind; empty sections are omitted). Histogram rows include
/// interpolated p50/p95/p99.
void WriteTextReport(const MetricsSnapshot& snapshot, std::ostream& out);

/// Takes a registry snapshot and writes it to `out` in `mode`; no-op when
/// mode is kOff or the snapshot is empty.
void FlushReport(TelemetryMode mode, std::ostream& out);

/// Registers an atexit hook that (a) stops the periodic reporter (final
/// delta snapshot), (b) flushes a report to stderr per AMS_TELEMETRY,
/// (c) writes Chrome trace JSON to AMS_TRACE_FILE if that variable is set
/// (enabling the span buffer immediately), and (d) writes the run ledger if
/// AMS_RUN_LEDGER is set. Starts the periodic reporter immediately when
/// AMS_TELEMETRY_INTERVAL_MS is set. Idempotent.
void InstallExitReporter();

}  // namespace ams::obs

#endif  // AMS_OBS_REPORT_H_
