#include "par/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ams::par {

namespace {

/// Shared state of one ParallelFor call. Heap-allocated and owned jointly by
/// the caller and the helper tasks (shared_ptr): helpers that only get
/// scheduled after every chunk is done still touch it safely, and the caller
/// never has to wait for a queued-but-unstarted helper — that wait is exactly
/// the nested-pool deadlock this design exists to avoid.
struct ForState {
  std::function<void(int64_t, int64_t)> body;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t total_chunks = 0;
  std::atomic<int64_t> next_{0};
  std::atomic<int64_t> chunks_done_{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first (by claim order) exception; under mu

  /// Claims and runs chunks until the range is exhausted. Safe to call from
  /// any number of threads concurrently; each chunk runs exactly once.
  void RunChunks() {
    for (;;) {
      const int64_t chunk_begin =
          next_.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) return;
      const int64_t chunk_end = std::min(chunk_begin + grain, end);
      try {
        body(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      const int64_t done =
          chunks_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == total_chunks) {
        // Wake the caller; take the lock so the notify cannot slip between
        // the caller's predicate check and its wait.
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

namespace {

/// Monotone id per constructed pool — the label that keeps each pool's
/// busy/size/utilization series distinct (SetDefaultParallelism replaces
/// the default pool, so one process can legitimately construct several).
int NextPoolId() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(std::max(1, parallelism)), pool_id_(NextPoolId()) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  const obs::Labels pool_label = {{"pool", std::to_string(pool_id_)}};
  tasks_run_ = &registry.GetCounter("par/tasks_run");
  parallel_fors_ = &registry.GetCounter("par/parallel_for_ranges");
  // Per-pool series: the periodic reporter pairs each
  // par/worker_busy_us{pool=N} delta with its par/pool_size{pool=N} to
  // derive par/pool_utilization{pool=N} (plus an aggregate across pools),
  // so concurrently-live pools no longer clobber one shared gauge.
  worker_busy_us_ = &registry.GetCounter("par/worker_busy_us", pool_label);
  queue_depth_ = &registry.GetGauge("par/queue_depth", pool_label);
  registry.GetGauge("par/pool_size", pool_label)
      .Set(static_cast<double>(parallelism_));
  workers_.reserve(parallelism_ - 1);
  for (int i = 0; i < parallelism_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With no workers (parallelism 1) tasks can still be queued via Submit;
  // honor the drain guarantee by running them here.
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  // Capture the submitter's trace context here (still on the submitting
  // thread) and install it around the task body on whichever worker runs
  // it: spans opened inside a pool task parent under the span that
  // submitted the work, exactly as if it had run inline.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.valid()) {
    task = [ctx, inner = std::move(task)] {
      obs::TraceContextScope scope(ctx);
      inner();
    };
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  queue_depth_->Set(static_cast<double>(depth));
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    tasks_run_->Increment();
    worker_busy_us_->Add(static_cast<uint64_t>(elapsed.count()));
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  AMS_DCHECK(grain > 0, "ParallelFor grain must be positive");
  if (begin >= end) return;
  const int64_t span = end - begin;
  const int64_t total_chunks = (span + grain - 1) / grain;
  if (parallelism_ == 1 || total_chunks == 1) {
    // Reference execution: same chunk boundaries, caller's thread only.
    for (int64_t b = begin; b < end; b += grain) {
      body(b, std::min(b + grain, end));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->body = body;
  state->end = end;
  state->grain = grain;
  state->total_chunks = total_chunks;
  state->next_.store(begin, std::memory_order_relaxed);

  parallel_fors_->Increment();
  const int64_t helpers =
      std::min<int64_t>(parallelism_ - 1, total_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    Enqueue([state] { state->RunChunks(); });
  }
  state->RunChunks();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] {
      return state->chunks_done_.load(std::memory_order_acquire) ==
             state->total_chunks;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

int ParallelismFromEnv() {
  if (const char* env = std::getenv("AMS_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

std::mutex g_default_pool_mu;
std::unique_ptr<ThreadPool> g_default_pool;  // guarded by g_default_pool_mu

}  // namespace

ThreadPool& DefaultPool() {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(ParallelismFromEnv());
  }
  return *g_default_pool;
}

void SetDefaultParallelism(int parallelism) {
  std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(
      parallelism > 0 ? parallelism : ParallelismFromEnv());
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  g_default_pool.swap(pool);
  // `pool` (the old one) joins its workers on destruction here, outside any
  // caller-visible state but still under the swap lock so a concurrent
  // DefaultPool() cannot observe a half-torn-down pool.
}

}  // namespace ams::par
