// Shared fixed-size thread pool: the one place the process decides how many
// threads do CPU work.
//
// Design constraints, in order:
//   1. Determinism. Callers split work into index ranges whose boundaries
//      never depend on the thread count; any rounding/reduction order is the
//      caller's, so results are bit-identical for AMS_THREADS=1 and =N.
//   2. No nested-wait deadlocks. ParallelFor never blocks on a task that is
//      still sitting in the queue: chunks are claimed from a shared atomic
//      cursor and the *calling* thread claims chunks too, so every chunk is
//      executed by a thread that is actually running. A pool task may itself
//      call ParallelFor (experiment -> HPO trial -> GEMM all share one pool).
//   3. Bounded concurrency. One global DefaultPool(), sized once from
//      AMS_THREADS (falling back to hardware_concurrency), replaces ad-hoc
//      thread spawning so the hot loops never oversubscribe the machine.
//
// Instrumented with ams_obs: process-wide "par/tasks_run" /
// "par/parallel_for_ranges" counters, plus per-pool labeled series keyed by
// a monotone pool id — par/worker_busy_us{pool=N}, par/queue_depth{pool=N},
// par/pool_size{pool=N}. The periodic reporter (obs/periodic.h) folds each
// pool's worker_busy_us delta into a live par/pool_utilization{pool=N}
// gauge and an unlabeled aggregate across pools.
//
// Trace context: Enqueue captures the submitting thread's
// obs::CurrentTraceContext() and installs it around the task on the worker
// (Submit and ParallelFor helpers alike), so spans opened inside pool tasks
// stay parented under the span that submitted the work.
#ifndef AMS_PAR_THREAD_POOL_H_
#define AMS_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ams::obs {
class Counter;
class Gauge;
}  // namespace ams::obs

namespace ams::par {

/// Fixed-size task-queue thread pool.
///
/// `parallelism` counts the calling thread: a pool with parallelism P runs
/// P-1 worker threads, because ParallelFor callers execute chunks themselves
/// while waiting. parallelism 1 means no workers at all — every ParallelFor
/// runs inline on the caller, which is the reference execution the
/// determinism guarantee is stated against.
class ThreadPool {
 public:
  explicit ThreadPool(int parallelism);
  /// Joins workers after draining the queue: every task submitted before
  /// destruction runs to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int parallelism() const { return parallelism_; }
  /// Monotone construction id — the {"pool", id} label on this pool's
  /// worker_busy_us / queue_depth / pool_size / pool_utilization series.
  int pool_id() const { return pool_id_; }

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) in chunks of at
  /// most `grain` indices. Chunk boundaries depend only on (begin, end,
  /// grain), never on the thread count. The calling thread participates, so
  /// this is safe to call from inside a pool task. Blocks until every chunk
  /// has finished; the first exception thrown by `body` (by claim order) is
  /// rethrown on the caller after all chunks complete.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// Enqueues `fn` and returns a future for its result. Exceptions are
  /// captured into the future. Do NOT block on the returned future from
  /// inside another pool task (that can deadlock a full pool) — inside tasks,
  /// use ParallelFor, which cannot.
  ///
  /// Shutdown interaction: the destructor drains the queue, so a task
  /// submitted before destruction still runs — on a worker, or inline on
  /// the destroying thread once the workers have joined. Either way a
  /// throwing task never escapes into the pool machinery: packaged_task
  /// stores the exception, and future::get() rethrows it even after the
  /// pool itself is gone. Callers that want retries instead of a stored
  /// exception should wrap the body with robust::RunWithRetry (which also
  /// counts "robust/task_throws").
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  const int parallelism_;
  const int pool_id_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  obs::Counter* tasks_run_;        // tasks dequeued and executed by workers
  obs::Counter* parallel_fors_;    // ParallelFor calls that used the pool
  obs::Counter* worker_busy_us_;   // {pool=N}: wall time inside worker tasks
  obs::Gauge* queue_depth_;        // {pool=N}: queued (not yet running)
};

/// Parallelism from the environment: AMS_THREADS if set to a positive
/// integer, otherwise std::thread::hardware_concurrency() (minimum 1).
int ParallelismFromEnv();

/// The process-wide pool, created on first use with ParallelismFromEnv().
/// All library hot loops (GEMM, GBDT split search, HPO trials, the
/// experiment's model loop) share it, so total concurrency is bounded once.
ThreadPool& DefaultPool();

/// Replaces the default pool with one of the given parallelism (<= 0 means
/// re-read the environment). Joins the old pool first. For tests and
/// benchmarks only; must not race with in-flight DefaultPool() users.
void SetDefaultParallelism(int parallelism);

/// Convenience: DefaultPool().ParallelFor(0, n, grain, body).
inline void ParallelFor(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& body) {
  DefaultPool().ParallelFor(0, n, grain, body);
}

}  // namespace ams::par

#endif  // AMS_PAR_THREAD_POOL_H_
