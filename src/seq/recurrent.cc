#include "seq/recurrent.h"

#include "nn/init.h"

namespace ams::seq {

using la::Matrix;
using tensor::Tensor;

namespace {

Tensor GateLinear(const Tensor& x, const Tensor& h, const Tensor& w_x,
                  const Tensor& w_h, const Tensor& b) {
  Tensor pre = tensor::Add(tensor::MatMul(x, tensor::Transpose(w_x)),
                           tensor::MatMul(h, tensor::Transpose(w_h)));
  return tensor::Add(pre, b);
}

}  // namespace

LstmCell::LstmCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  for (int g = 0; g < 4; ++g) {
    w_x_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, input_size, input_size + hidden_size, hidden_size, rng));
    w_h_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, hidden_size, input_size + hidden_size, hidden_size,
        rng));
    // Forget gate (index 1) biased open.
    const double bias_init = g == 1 ? 1.0 : 0.0;
    b_[g] = Tensor::Parameter(Matrix(1, hidden_size, bias_init));
  }
}

LstmCell::State LstmCell::InitialState(int batch_size) const {
  return {Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_)),
          Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_))};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  AMS_DCHECK(x.cols() == input_size_, "LSTM input width mismatch");
  const Tensor i =
      tensor::Sigmoid(GateLinear(x, state.h, w_x_[0], w_h_[0], b_[0]));
  const Tensor f =
      tensor::Sigmoid(GateLinear(x, state.h, w_x_[1], w_h_[1], b_[1]));
  const Tensor g =
      tensor::Tanh(GateLinear(x, state.h, w_x_[2], w_h_[2], b_[2]));
  const Tensor o =
      tensor::Sigmoid(GateLinear(x, state.h, w_x_[3], w_h_[3], b_[3]));
  State next;
  next.c = tensor::Add(tensor::Mul(f, state.c), tensor::Mul(i, g));
  next.h = tensor::Mul(o, tensor::Tanh(next.c));
  return next;
}

std::vector<Tensor> LstmCell::Parameters() const {
  std::vector<Tensor> params;
  for (int g = 0; g < 4; ++g) {
    params.push_back(w_x_[g]);
    params.push_back(w_h_[g]);
    params.push_back(b_[g]);
  }
  return params;
}

GruCell::GruCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  for (int g = 0; g < 3; ++g) {
    w_x_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, input_size, input_size + hidden_size, hidden_size, rng));
    w_h_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, hidden_size, input_size + hidden_size, hidden_size,
        rng));
    b_[g] = Tensor::Parameter(Matrix::Zeros(1, hidden_size));
  }
}

Tensor GruCell::InitialState(int batch_size) const {
  return Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_));
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  AMS_DCHECK(x.cols() == input_size_, "GRU input width mismatch");
  const Tensor z = tensor::Sigmoid(GateLinear(x, h, w_x_[0], w_h_[0], b_[0]));
  const Tensor r = tensor::Sigmoid(GateLinear(x, h, w_x_[1], w_h_[1], b_[1]));
  // Candidate uses the reset-gated hidden state.
  const Tensor gated_h = tensor::Mul(r, h);
  const Tensor n =
      tensor::Tanh(GateLinear(x, gated_h, w_x_[2], w_h_[2], b_[2]));
  // h' = (1 - z) * n + z * h.
  const Tensor one_minus_z = tensor::AddScalar(tensor::Scale(z, -1.0), 1.0);
  return tensor::Add(tensor::Mul(one_minus_z, n), tensor::Mul(z, h));
}

std::vector<Tensor> GruCell::Parameters() const {
  std::vector<Tensor> params;
  for (int g = 0; g < 3; ++g) {
    params.push_back(w_x_[g]);
    params.push_back(w_h_[g]);
    params.push_back(b_[g]);
  }
  return params;
}

Tensor EncodeSequence(const LstmCell& cell,
                      const std::vector<Tensor>& steps) {
  AMS_DCHECK(!steps.empty(), "empty sequence");
  LstmCell::State state = cell.InitialState(steps[0].rows());
  for (const Tensor& x : steps) state = cell.Step(x, state);
  return state.h;
}

Tensor EncodeSequence(const GruCell& cell, const std::vector<Tensor>& steps) {
  AMS_DCHECK(!steps.empty(), "empty sequence");
  Tensor h = cell.InitialState(steps[0].rows());
  for (const Tensor& x : steps) h = cell.Step(x, h);
  return h;
}

}  // namespace ams::seq
