#include "seq/recurrent.h"

#include "nn/init.h"
#include "tensor/fusion.h"

namespace ams::seq {

using la::Matrix;
using tensor::Tensor;

namespace {

/// x W_x^T + h W_h^T + b followed by the gate nonlinearity, fused: the two
/// adds and the activation record one tape node instead of three.
enum class GateAct { kSigmoid, kTanh };

Tensor Gate(const Tensor& x, const Tensor& h, const Tensor& w_x,
            const Tensor& w_h, const Tensor& b, GateAct act) {
  Tensor xm = tensor::MatMul(x, tensor::Transpose(w_x));
  Tensor hm = tensor::MatMul(h, tensor::Transpose(w_h));
  tensor::ElementwiseChain chain;
  chain.Add(hm).Add(b);
  if (act == GateAct::kSigmoid) {
    chain.Sigmoid();
  } else {
    chain.Tanh();
  }
  return chain.Apply(xm);
}

}  // namespace

LstmCell::LstmCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  for (int g = 0; g < 4; ++g) {
    w_x_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, input_size, input_size + hidden_size, hidden_size, rng));
    w_h_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, hidden_size, input_size + hidden_size, hidden_size,
        rng));
    // Forget gate (index 1) biased open.
    const double bias_init = g == 1 ? 1.0 : 0.0;
    b_[g] = Tensor::Parameter(Matrix(1, hidden_size, bias_init));
  }
}

LstmCell::State LstmCell::InitialState(int batch_size) const {
  return {Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_)),
          Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_))};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  AMS_DCHECK(x.cols() == input_size_, "LSTM input width mismatch");
  const Tensor i = Gate(x, state.h, w_x_[0], w_h_[0], b_[0], GateAct::kSigmoid);
  const Tensor f = Gate(x, state.h, w_x_[1], w_h_[1], b_[1], GateAct::kSigmoid);
  const Tensor g = Gate(x, state.h, w_x_[2], w_h_[2], b_[2], GateAct::kTanh);
  const Tensor o = Gate(x, state.h, w_x_[3], w_h_[3], b_[3], GateAct::kSigmoid);
  State next;
  // c' = f * c + i * g, h' = o * tanh(c'): one fused node each.
  next.c = tensor::ElementwiseChain().Mul(state.c).AddProduct(i, g).Apply(f);
  next.h = tensor::ElementwiseChain().Tanh().Mul(o).Apply(next.c);
  return next;
}

std::vector<Tensor> LstmCell::Parameters() const {
  std::vector<Tensor> params;
  for (int g = 0; g < 4; ++g) {
    params.push_back(w_x_[g]);
    params.push_back(w_h_[g]);
    params.push_back(b_[g]);
  }
  return params;
}

GruCell::GruCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  for (int g = 0; g < 3; ++g) {
    w_x_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, input_size, input_size + hidden_size, hidden_size, rng));
    w_h_[g] = Tensor::Parameter(nn::XavierUniform(
        hidden_size, hidden_size, input_size + hidden_size, hidden_size,
        rng));
    b_[g] = Tensor::Parameter(Matrix::Zeros(1, hidden_size));
  }
}

Tensor GruCell::InitialState(int batch_size) const {
  return Tensor::Constant(Matrix::Zeros(batch_size, hidden_size_));
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  AMS_DCHECK(x.cols() == input_size_, "GRU input width mismatch");
  const Tensor z = Gate(x, h, w_x_[0], w_h_[0], b_[0], GateAct::kSigmoid);
  const Tensor r = Gate(x, h, w_x_[1], w_h_[1], b_[1], GateAct::kSigmoid);
  // Candidate uses the reset-gated hidden state.
  const Tensor gated_h = tensor::Mul(r, h);
  const Tensor n = Gate(x, gated_h, w_x_[2], w_h_[2], b_[2], GateAct::kTanh);
  // h' = (1 - z) * n + z * h, recorded as one fused node on z.
  return tensor::ElementwiseChain()
      .Scale(-1.0)
      .AddScalar(1.0)
      .Mul(n)
      .AddProduct(z, h)
      .Apply(z);
}

std::vector<Tensor> GruCell::Parameters() const {
  std::vector<Tensor> params;
  for (int g = 0; g < 3; ++g) {
    params.push_back(w_x_[g]);
    params.push_back(w_h_[g]);
    params.push_back(b_[g]);
  }
  return params;
}

Tensor EncodeSequence(const LstmCell& cell,
                      const std::vector<Tensor>& steps) {
  AMS_DCHECK(!steps.empty(), "empty sequence");
  LstmCell::State state = cell.InitialState(steps[0].rows());
  for (const Tensor& x : steps) state = cell.Step(x, state);
  return state.h;
}

Tensor EncodeSequence(const GruCell& cell, const std::vector<Tensor>& steps) {
  AMS_DCHECK(!steps.empty(), "empty sequence");
  Tensor h = cell.InitialState(steps[0].rows());
  for (const Tensor& x : steps) h = cell.Step(x, h);
  return h;
}

}  // namespace ams::seq
