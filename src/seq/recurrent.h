// Recurrent cells (LSTM, GRU) built on the autograd engine; used by the
// neural sequence baselines of Tables I-V.
//
// Sequences are time-major: a std::vector of (batch x features) tensors.
#ifndef AMS_SEQ_RECURRENT_H_
#define AMS_SEQ_RECURRENT_H_

#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::seq {

/// Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997) with the
/// standard input/forget/cell/output gating; forget-gate bias initialized
/// to 1 to ease gradient flow on short financial sequences.
class LstmCell {
 public:
  LstmCell(int input_size, int hidden_size, Rng* rng);

  struct State {
    tensor::Tensor h;  // batch x hidden
    tensor::Tensor c;  // batch x hidden
  };

  /// Zero state for a batch of the given size.
  State InitialState(int batch_size) const;

  /// One step: consumes x_t (batch x input) and the previous state.
  State Step(const tensor::Tensor& x, const State& state) const;

  std::vector<tensor::Tensor> Parameters() const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  // Gate order: input, forget, cell(candidate), output.
  tensor::Tensor w_x_[4];  // hidden x input
  tensor::Tensor w_h_[4];  // hidden x hidden
  tensor::Tensor b_[4];    // 1 x hidden
};

/// Gated Recurrent Unit (Cho et al., 2014): update/reset gates + candidate.
class GruCell {
 public:
  GruCell(int input_size, int hidden_size, Rng* rng);

  tensor::Tensor InitialState(int batch_size) const;

  /// One step: h_t from x_t (batch x input) and h_{t-1} (batch x hidden).
  tensor::Tensor Step(const tensor::Tensor& x, const tensor::Tensor& h) const;

  std::vector<tensor::Tensor> Parameters() const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  // Gate order: update (z), reset (r), candidate (n).
  tensor::Tensor w_x_[3];
  tensor::Tensor w_h_[3];
  tensor::Tensor b_[3];
};

/// Runs an LSTM over a time-major sequence, returning the final hidden state.
tensor::Tensor EncodeSequence(const LstmCell& cell,
                              const std::vector<tensor::Tensor>& steps);

/// Runs a GRU over a time-major sequence, returning the final hidden state.
tensor::Tensor EncodeSequence(const GruCell& cell,
                              const std::vector<tensor::Tensor>& steps);

}  // namespace ams::seq

#endif  // AMS_SEQ_RECURRENT_H_
