// Company correlation graph (paper §III-C, Fig. 4).
//
// Nodes are companies; an edge connects a company to each of the top-k
// companies with the largest Pearson correlation of historical revenue.
// The graph is rebuilt from *training-window* revenue only at every
// cross-validation step to avoid leakage.
#ifndef AMS_GRAPH_COMPANY_GRAPH_H_
#define AMS_GRAPH_COMPANY_GRAPH_H_

#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace ams::graph {

struct CorrelationGraphOptions {
  /// Number of highest-correlation neighbours linked per company (the paper's
  /// hyperparameter k, Fig. 4 uses k = 5).
  int top_k = 5;
  /// If true the directed top-k edges are symmetrized (i-j whenever either
  /// endpoint selected the other).
  bool symmetric = true;
  /// Minimum number of overlapping history points to trust a correlation.
  int min_overlap = 3;
};

/// An undirected company graph with cached correlations and the dense
/// attention mask the GAT consumes.
class CompanyGraph {
 public:
  /// Builds the graph from per-company revenue histories. Histories may have
  /// different lengths; correlation is computed over the common suffix.
  /// Requires at least 2 companies and top_k >= 1.
  static Result<CompanyGraph> BuildFromRevenue(
      const std::vector<std::vector<double>>& revenue_histories,
      const CorrelationGraphOptions& options);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

  /// Sorted neighbour list of node i (excluding i itself).
  const std::vector<int>& Neighbors(int i) const;

  bool HasEdge(int i, int j) const;

  int Degree(int i) const { return static_cast<int>(Neighbors(i).size()); }

  /// Pearson correlation used when ranking the pair (0 if never computed).
  double Correlation(int i, int j) const;

  /// Dense n x n mask with 1 at (i, j) when j is i's neighbour or j == i
  /// (self-loops, as GAT attends over N_i plus the node itself).
  la::Matrix AttentionMask() const;

  /// Total number of undirected edges.
  int NumEdges() const;

 private:
  CompanyGraph() = default;
  std::vector<std::vector<int>> adjacency_;
  la::Matrix correlations_;
};

}  // namespace ams::graph

#endif  // AMS_GRAPH_COMPANY_GRAPH_H_
