#include "graph/company_graph.h"

#include <algorithm>
#include <numeric>

#include "la/stats.h"

namespace ams::graph {

Result<CompanyGraph> CompanyGraph::BuildFromRevenue(
    const std::vector<std::vector<double>>& revenue_histories,
    const CorrelationGraphOptions& options) {
  const int n = static_cast<int>(revenue_histories.size());
  if (n < 2) {
    return Status::InvalidArgument("correlation graph needs >= 2 companies");
  }
  if (options.top_k < 1) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (options.min_overlap < 2) {
    return Status::InvalidArgument("min_overlap must be >= 2");
  }

  CompanyGraph graph;
  graph.correlations_ = la::Matrix::Zeros(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto& a = revenue_histories[i];
      const auto& b = revenue_histories[j];
      const int overlap =
          static_cast<int>(std::min(a.size(), b.size()));
      if (overlap < options.min_overlap) continue;
      // Align on the common suffix (most recent quarters).
      std::vector<double> sa(a.end() - overlap, a.end());
      std::vector<double> sb(b.end() - overlap, b.end());
      const double corr = la::PearsonCorrelation(sa, sb);
      graph.correlations_(i, j) = corr;
      graph.correlations_(j, i) = corr;
    }
  }

  // Directed top-k selection per node, then (optionally) symmetrize.
  std::vector<std::vector<bool>> edge(n, std::vector<bool>(n, false));
  const int k = std::min(options.top_k, n - 1);
  for (int i = 0; i < n; ++i) {
    std::vector<int> candidates;
    candidates.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) candidates.push_back(j);
    }
    std::partial_sort(candidates.begin(), candidates.begin() + k,
                      candidates.end(), [&](int x, int y) {
                        const double cx = graph.correlations_(i, x);
                        const double cy = graph.correlations_(i, y);
                        if (cx != cy) return cx > cy;
                        return x < y;  // deterministic tie-break
                      });
    for (int t = 0; t < k; ++t) {
      const int j = candidates[t];
      edge[i][j] = true;
      if (options.symmetric) edge[j][i] = true;
    }
  }

  graph.adjacency_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (edge[i][j]) graph.adjacency_[i].push_back(j);
    }
  }
  return graph;
}

const std::vector<int>& CompanyGraph::Neighbors(int i) const {
  AMS_DCHECK(i >= 0 && i < num_nodes(), "node index out of range");
  return adjacency_[i];
}

bool CompanyGraph::HasEdge(int i, int j) const {
  const auto& nbrs = Neighbors(i);
  return std::binary_search(nbrs.begin(), nbrs.end(), j);
}

double CompanyGraph::Correlation(int i, int j) const {
  AMS_DCHECK(i >= 0 && i < num_nodes() && j >= 0 && j < num_nodes(),
             "node index out of range");
  return correlations_(i, j);
}

la::Matrix CompanyGraph::AttentionMask() const {
  const int n = num_nodes();
  la::Matrix mask(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    mask(i, i) = 1.0;
    for (int j : adjacency_[i]) mask(i, j) = 1.0;
  }
  return mask;
}

int CompanyGraph::NumEdges() const {
  int total = 0;
  for (const auto& nbrs : adjacency_) total += static_cast<int>(nbrs.size());
  return total / 2;
}

}  // namespace ams::graph
