#include "models/neural.h"

#include <cmath>
#include <functional>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"

namespace ams::models {

using la::Matrix;
using tensor::Tensor;

namespace {

/// Full-batch Adam loop with early stopping on a validation loss; restores
/// the best parameters before returning. `dropout_rng` is the training-time
/// noise stream, rewound by the rollback guard policy (may be null).
Status TrainLoop(std::vector<Tensor> params,
                 const std::function<Tensor()>& train_loss,
                 const std::function<double()>& valid_loss,
                 const NeuralTrainOptions& options, Rng* dropout_rng) {
  optim::Adam optimizer(params, options.learning_rate, 0.9, 0.999, 1e-8,
                        options.weight_decay);
  robust::TrainGuard guard(options.guard, &optimizer, dropout_rng);
  // Include the initial state as an early-stopping candidate.
  double best = valid_loss();
  std::vector<Matrix> best_params;
  best_params.reserve(params.size());
  for (const Tensor& p : params) best_params.push_back(p.value());
  int since_best = 0;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& epoch_counter = registry.GetCounter("nn/train/epochs");
  obs::Gauge& loss_gauge = registry.GetGauge("nn/train/loss");
  for (int epoch = 0; epoch < options.max_epochs;) {
    AMS_TRACE_SPAN("nn/train/epoch");
    guard.BeginEpoch(epoch);
    optimizer.ZeroGrad();
    Tensor loss = train_loss();
    const bool loss_finite = loss.value().AllFinite();
    if (loss_finite) tensor::Backward(loss);
    switch (guard.GuardStep(epoch, loss_finite)) {
      case robust::TrainGuard::Action::kAbort:
        return guard.AbortStatus();
      case robust::TrainGuard::Action::kRetryEpoch:
        continue;
      case robust::TrainGuard::Action::kSkipStep:
        break;
      case robust::TrainGuard::Action::kProceed:
        if (options.grad_clip > 0.0) optimizer.ClipGradNorm(options.grad_clip);
        optimizer.Step();
        break;
    }
    epoch_counter.Increment();
    loss_gauge.Set(loss.value()(0, 0));

    const double v = valid_loss();
    if (v < best - 1e-9) {
      best = v;
      for (size_t i = 0; i < params.size(); ++i) {
        best_params[i] = params[i].value();
      }
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
    ++epoch;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = best_params[i];
  }
  return Status::OK();
}

double EvalMse(const std::vector<double>& pred, const std::vector<double>& y) {
  double sse = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - y[i];
    sse += d * d;
  }
  return pred.empty() ? 0.0 : sse / pred.size();
}

}  // namespace

Status MlpRegressor::Fit(const FitContext& context) {
  const data::Dataset& train = *context.train;
  const data::Dataset& valid = *context.valid;
  Rng rng(options_.seed);
  Rng init_rng = rng.Fork();
  Rng dropout_rng = rng.Fork();
  mlp_ = std::make_unique<nn::Mlp>(train.num_features(), hidden_, 1,
                                   nn::Activation::kRelu, &init_rng,
                                   options_.dropout);
  const Tensor x = Tensor::Constant(train.x);
  const Tensor y = Tensor::Constant(train.TargetMatrix());

  auto train_loss = [&]() {
    Tensor pred = mlp_->Forward(x, /*training=*/true, &dropout_rng);
    return tensor::MseLoss(pred, y);
  };
  auto valid_loss = [&]() {
    auto pred = PredictNorm(valid);
    return pred.ok() ? EvalMse(pred.ValueOrDie(), valid.y)
                     : std::numeric_limits<double>::infinity();
  };
  return TrainLoop(mlp_->Parameters(), train_loss, valid_loss, options_,
                   &dropout_rng);
}

Result<std::vector<double>> MlpRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  if (mlp_ == nullptr) return Status::FailedPrecondition("not fitted");
  if (dataset.num_features() != mlp_->in_features()) {
    return Status::InvalidArgument("feature width mismatch");
  }
  Tensor pred = mlp_->Forward(Tensor::Constant(dataset.x));
  std::vector<double> out(dataset.num_samples());
  for (int r = 0; r < dataset.num_samples(); ++r) {
    out[r] = pred.value()(r, 0);
  }
  return out;
}

Tensor RecurrentRegressor::Forward(const std::vector<Tensor>& steps,
                                   const Tensor& static_features,
                                   bool training, Rng* dropout_rng) const {
  Tensor encoded = kind_ == CellKind::kLstm
                       ? seq::EncodeSequence(*lstm_, steps)
                       : seq::EncodeSequence(*gru_, steps);
  if (options_.dropout > 0.0) {
    encoded = tensor::Dropout(encoded, options_.dropout, training,
                              dropout_rng);
  }
  Tensor joined = tensor::ConcatCols({encoded, static_features});
  return head_->Forward(joined);
}

std::vector<Tensor> RecurrentRegressor::Parameters() const {
  std::vector<Tensor> params = kind_ == CellKind::kLstm
                                   ? lstm_->Parameters()
                                   : gru_->Parameters();
  for (const Tensor& p : head_->Parameters()) params.push_back(p);
  return params;
}

Status RecurrentRegressor::Fit(const FitContext& context) {
  const data::Dataset& train = *context.train;
  const data::Dataset& valid = *context.valid;
  Rng rng(options_.seed);
  Rng init_rng = rng.Fork();
  Rng dropout_rng = rng.Fork();

  std::vector<Matrix> step_values;
  Matrix static_values;
  train.SequenceView(&step_values, &static_values);
  const int step_width = train.lag_block_width;
  if (kind_ == CellKind::kLstm) {
    lstm_ = std::make_unique<seq::LstmCell>(step_width, hidden_size_,
                                            &init_rng);
  } else {
    gru_ = std::make_unique<seq::GruCell>(step_width, hidden_size_,
                                          &init_rng);
  }
  head_ = std::make_unique<nn::Dense>(hidden_size_ + static_values.cols(), 1,
                                      nn::Activation::kNone, &init_rng);

  std::vector<Tensor> steps;
  for (const Matrix& step : step_values) {
    steps.push_back(Tensor::Constant(step));
  }
  const Tensor statics = Tensor::Constant(static_values);
  const Tensor y = Tensor::Constant(train.TargetMatrix());

  auto train_loss = [&]() {
    Tensor pred = Forward(steps, statics, /*training=*/true, &dropout_rng);
    return tensor::MseLoss(pred, y);
  };
  auto valid_loss = [&]() {
    auto pred = PredictNorm(valid);
    return pred.ok() ? EvalMse(pred.ValueOrDie(), valid.y)
                     : std::numeric_limits<double>::infinity();
  };
  return TrainLoop(Parameters(), train_loss, valid_loss, options_,
                   &dropout_rng);
}

Result<std::vector<double>> RecurrentRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  if (head_ == nullptr) return Status::FailedPrecondition("not fitted");
  std::vector<Matrix> step_values;
  Matrix static_values;
  dataset.SequenceView(&step_values, &static_values);
  std::vector<Tensor> steps;
  for (const Matrix& step : step_values) {
    steps.push_back(Tensor::Constant(step));
  }
  Tensor pred = Forward(steps, Tensor::Constant(static_values),
                        /*training=*/false, nullptr);
  std::vector<double> out(dataset.num_samples());
  for (int r = 0; r < dataset.num_samples(); ++r) {
    out[r] = pred.value()(r, 0);
  }
  return out;
}

}  // namespace ams::models
