#include "models/zoo.h"

#include "models/ams_regressor.h"
#include "models/baselines.h"
#include "models/neural.h"

namespace ams::models {

namespace {

NeuralTrainOptions SampleNeuralOptions(Rng* rng) {
  NeuralTrainOptions options;
  options.learning_rate = rng->LogUniform(5e-4, 5e-3);
  options.weight_decay = rng->LogUniform(1e-5, 1e-3);
  options.dropout = rng->Uniform(0.0, 0.3);
  options.max_epochs = 200;
  options.patience = 30;
  options.seed = rng->NextU64();
  return options;
}

std::vector<int> SampleHiddenLayers(Rng* rng) {
  const int num_layers = 1 + static_cast<int>(rng->UniformInt(2));
  static const int kWidths[] = {16, 32, 64, 96};
  std::vector<int> hidden;
  for (int i = 0; i < num_layers; ++i) {
    hidden.push_back(kWidths[rng->UniformInt(4)]);
  }
  return hidden;
}

}  // namespace

ModelSpec MakeAmsSpec() {
  ModelSpec spec;
  spec.name = "AMS";
  spec.default_trials = 6;
  spec.factory = [](Rng* rng) -> std::unique_ptr<Regressor> {
    core::AmsConfig config;
    static const int kDims[] = {16, 32, 48};
    config.node_transform_layers = {
        static_cast<int>(kDims[rng->UniformInt(3)] + 16),
        kDims[rng->UniformInt(3)]};
    config.gat.hidden_per_head = {kDims[rng->UniformInt(3)] / 2};
    config.gat.num_heads = rng->Bernoulli(0.5) ? 4 : 2;
    config.gat.out_features = kDims[rng->UniformInt(3)];
    config.gat.attention_dropout = rng->Uniform(0.0, 0.2);
    config.generator_hidden = {kDims[rng->UniformInt(3)]};
    config.gamma = rng->Uniform(0.05, 0.45);
    config.lambda_slg = rng->LogUniform(0.5, 5.0);
    config.lambda_l2 = rng->LogUniform(1e-5, 1e-3);
    // Anchor family: ~1/3 of trials keep the paper's pure-L2 anchor, the
    // rest explore the elastic-net generalization.
    if (rng->Bernoulli(0.35)) {
      config.anchored_l1_ratio = 0.0;
      config.anchored_alpha = rng->LogUniform(1e-3, 3.0);
    } else {
      config.anchored_l1_ratio = rng->Uniform(0.3, 1.0);
      config.anchored_alpha = rng->LogUniform(1e-5, 3e-2);
    }
    config.learning_rate = rng->LogUniform(7e-4, 2.5e-3);
    config.dropout = rng->Uniform(0.0, 0.2);
    config.max_epochs = 350;
    config.patience = 100;
    const int top_k_choices[] = {3, 5, 8};
    const int top_k = top_k_choices[rng->UniformInt(3)];
    return std::make_unique<AmsRegressor>(std::move(config), top_k);
  };
  return spec;
}

std::vector<ModelSpec> BuildModelZoo(int num_alt_channels) {
  std::vector<ModelSpec> zoo;
  zoo.push_back(MakeAmsSpec());

  zoo.push_back({"XGBoost",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   gbdt::GbdtOptions options;
                   options.num_rounds =
                       50 + static_cast<int>(rng->UniformInt(250));
                   options.learning_rate = rng->LogUniform(0.02, 0.3);
                   options.max_depth =
                       2 + static_cast<int>(rng->UniformInt(4));
                   options.min_child_weight = rng->Uniform(1.0, 5.0);
                   options.reg_lambda = rng->LogUniform(0.1, 10.0);
                   options.subsample = rng->Uniform(0.6, 1.0);
                   options.colsample = rng->Uniform(0.5, 1.0);
                   options.early_stopping_rounds = 20;
                   options.seed = rng->NextU64();
                   return std::make_unique<XgboostRegressor>(options);
                 },
                 6});

  zoo.push_back({"MLP",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   return std::make_unique<MlpRegressor>(
                       SampleHiddenLayers(rng), SampleNeuralOptions(rng));
                 },
                 5});

  zoo.push_back({"Lasso",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   linear::LinearOptions options;
                   options.alpha = rng->LogUniform(1e-5, 3e-2);
                   options.l1_ratio = 1.0;
                   return std::make_unique<LinearRegressor>("Lasso", options);
                 },
                 6});

  zoo.push_back({"Ridge",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   linear::LinearOptions options;
                   options.alpha = rng->LogUniform(1e-4, 10.0);
                   options.l1_ratio = 0.0;
                   return std::make_unique<LinearRegressor>("Ridge", options);
                 },
                 6});

  zoo.push_back({"Elasticnet",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   linear::LinearOptions options;
                   options.alpha = rng->LogUniform(1e-5, 3e-2);
                   options.l1_ratio = rng->Uniform(0.1, 0.9);
                   return std::make_unique<LinearRegressor>("Elasticnet",
                                                            options);
                 },
                 6});

  zoo.push_back({"Lstm",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   const int hidden =
                       8 << rng->UniformInt(3);  // 8, 16, or 32
                   return std::make_unique<RecurrentRegressor>(
                       RecurrentRegressor::CellKind::kLstm, hidden,
                       SampleNeuralOptions(rng));
                 },
                 4});

  zoo.push_back({"GRU",
                 [](Rng* rng) -> std::unique_ptr<Regressor> {
                   const int hidden = 8 << rng->UniformInt(3);
                   return std::make_unique<RecurrentRegressor>(
                       RecurrentRegressor::CellKind::kGru, hidden,
                       SampleNeuralOptions(rng));
                 },
                 4});

  zoo.push_back({"ARIMA",
                 [](Rng*) -> std::unique_ptr<Regressor> {
                   return std::make_unique<ArimaRegressor>();
                 },
                 1});

  for (int c = 0; c < num_alt_channels; ++c) {
    zoo.push_back({c == 0 ? "YoY" : "YoY(ch" + std::to_string(c) + ")",
                   [c](Rng*) -> std::unique_ptr<Regressor> {
                     return std::make_unique<RatioRegressor>(
                         RatioRegressor::Kind::kYoY, c);
                   },
                   1});
  }
  for (int c = 0; c < num_alt_channels; ++c) {
    zoo.push_back({c == 0 ? "QoQ" : "QoQ(ch" + std::to_string(c) + ")",
                   [c](Rng*) -> std::unique_ptr<Regressor> {
                     return std::make_unique<RatioRegressor>(
                         RatioRegressor::Kind::kQoQ, c);
                   },
                   1});
  }
  return zoo;
}

std::vector<std::string> LearnedModelNames() {
  return {"AMS", "XGBoost", "MLP", "Lasso", "Ridge", "Elasticnet", "Lstm",
          "GRU"};
}

}  // namespace ams::models
