// End-to-end experiment harness: generates (or accepts) a panel, walks the
// time-series cross-validation schedule, random-searches every model on each
// fold's validation quarter, and collects per-fold test metrics and
// predictions. Shared by all table/figure benches.
#ifndef AMS_MODELS_EXPERIMENT_H_
#define AMS_MODELS_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "data/cv.h"
#include "data/generator.h"
#include "metrics/metrics.h"
#include "models/zoo.h"

namespace ams::models {

struct ExperimentConfig {
  data::DatasetProfile profile = data::DatasetProfile::kTransactionAmount;
  uint64_t seed = 42;
  /// false reproduces the "-na" (no alternative data) runs of Table III.
  bool include_alt = true;
  /// Random-search budget override; <= 0 uses each spec's default.
  int hpo_trials = 0;
  /// Restrict to these model names (empty = full zoo).
  std::vector<std::string> model_filter;
  /// Log per-fold progress.
  bool verbose = false;
};

/// One model's results on one fold.
struct FoldOutcome {
  int test_quarter = 0;
  metrics::EvalResult eval;
  /// Absolute predicted unexpected revenue per test row.
  std::vector<double> predicted_ur;
  double hpo_valid_rmse = 0.0;
};

/// One model across all folds.
struct ModelOutcome {
  std::string name;
  std::vector<FoldOutcome> folds;

  /// Average of per-fold BA (%), matching the paper's "average of cross
  /// validation results".
  double MeanBa() const;
  /// Average of per-fold mean SR.
  double MeanSr() const;
  std::vector<double> FoldBas() const;
  std::vector<double> FoldSrs() const;
};

/// Everything a bench needs to print a table or drive the backtest.
struct ExperimentResult {
  data::Panel panel;
  std::vector<data::CvFold> cv_folds;
  /// Test-set sample metadata per fold (same order as each FoldOutcome's
  /// predicted_ur).
  std::vector<std::vector<data::SampleMeta>> fold_test_meta;
  std::vector<ModelOutcome> models;

  const ModelOutcome* Find(const std::string& name) const;
};

/// Runs the full protocol on a freshly generated panel.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// Runs the full protocol on a provided panel (used by Table III to keep
/// the with/without-alt runs on identical data).
Result<ExperimentResult> RunExperimentOnPanel(const data::Panel& panel,
                                              const ExperimentConfig& config);

/// Disk-cached variant used by the bench binaries: the full model zoo is
/// computed once per (profile, seed, hpo_trials, include_alt) and the
/// per-fold predictions are persisted under `cache_dir`, so e.g. the
/// Table II bench reuses the Table I experiment instead of re-training
/// every model. `config.model_filter` is applied to the *returned* result
/// only. Pass an empty cache_dir to disable caching.
Result<ExperimentResult> RunExperimentCached(
    const ExperimentConfig& config,
    const std::string& cache_dir = "/tmp/ams_experiment_cache");

}  // namespace ams::models

#endif  // AMS_MODELS_EXPERIMENT_H_
