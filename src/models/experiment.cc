#include "models/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "models/hpo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "robust/atomic_io.h"
#include "robust/retry.h"
#include "util/csv.h"
#include "util/logging.h"

namespace ams::models {

namespace {

double MeanOf(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return values.empty() ? 0.0 : sum / values.size();
}

}  // namespace

double ModelOutcome::MeanBa() const { return MeanOf(FoldBas()); }
double ModelOutcome::MeanSr() const { return MeanOf(FoldSrs()); }

std::vector<double> ModelOutcome::FoldBas() const {
  std::vector<double> out;
  out.reserve(folds.size());
  for (const FoldOutcome& fold : folds) out.push_back(fold.eval.ba);
  return out;
}

std::vector<double> ModelOutcome::FoldSrs() const {
  std::vector<double> out;
  out.reserve(folds.size());
  for (const FoldOutcome& fold : folds) out.push_back(fold.eval.sr);
  return out;
}

const ModelOutcome* ExperimentResult::Find(const std::string& name) const {
  for (const ModelOutcome& model : models) {
    if (model.name == name) return &model;
  }
  return nullptr;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  AMS_ASSIGN_OR_RETURN(
      data::Panel panel,
      data::GenerateMarket(
          data::GeneratorConfig::Defaults(config.profile, config.seed)));
  return RunExperimentOnPanel(panel, config);
}

Result<ExperimentResult> RunExperimentOnPanel(const data::Panel& panel,
                                              const ExperimentConfig& config) {
  ExperimentResult result;
  result.panel = panel;

  const data::CvOptions cv_options = data::DefaultCvOptions(panel.profile);
  AMS_ASSIGN_OR_RETURN(result.cv_folds, data::TimeSeriesCvFolds(
                                            panel.num_quarters, cv_options));

  data::FeatureOptions feature_options;
  feature_options.lag_k = cv_options.lag_k;
  feature_options.include_alt = config.include_alt;
  data::FeatureBuilder builder(&panel, feature_options);

  std::vector<ModelSpec> zoo = BuildModelZoo(panel.num_alt_channels);
  if (!config.model_filter.empty()) {
    std::vector<ModelSpec> filtered;
    for (ModelSpec& spec : zoo) {
      if (std::find(config.model_filter.begin(), config.model_filter.end(),
                    spec.name) != config.model_filter.end()) {
        filtered.push_back(std::move(spec));
      }
    }
    zoo = std::move(filtered);
    if (zoo.empty()) {
      return Status::InvalidArgument("model filter matched nothing");
    }
  }
  result.models.resize(zoo.size());
  for (size_t m = 0; m < zoo.size(); ++m) result.models[m].name = zoo[m].name;

  AMS_TRACE_SPAN("exp/run");
  Rng seed_rng(config.seed ^ 0xA5A5A5A5ULL);
  for (size_t f = 0; f < result.cv_folds.size(); ++f) {
    AMS_TRACE_SPAN("exp/fold");
    const data::CvFold& fold = result.cv_folds[f];
    AMS_ASSIGN_OR_RETURN(data::Dataset train,
                         builder.Build(fold.train_quarters));
    AMS_ASSIGN_OR_RETURN(data::Dataset valid,
                         builder.Build({fold.valid_quarter}));
    AMS_ASSIGN_OR_RETURN(data::Dataset test,
                         builder.Build({fold.test_quarter}));
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);
    standardizer.Apply(&test);
    result.fold_test_meta.push_back(test.meta);

    FitContext context;
    context.train = &train;
    context.valid = &valid;
    context.panel = &panel;
    context.last_train_quarter = fold.valid_quarter - 1;

    // Models are independent given the fold's (read-only) datasets; fit
    // them on the shared pool. Per-model seeds derive from the model index,
    // so concurrency never moves a model onto a different RNG stream, and
    // the pool bounds total concurrency once globally — the per-trial and
    // per-GEMM parallelism below shares the same workers instead of
    // oversubscribing the machine the way one unbounded thread per model
    // did.
    const uint64_t fold_seed = seed_rng.NextU64();
    std::vector<Status> statuses(zoo.size());
    std::vector<FoldOutcome> outcomes(zoo.size());
    auto run_model = [&](size_t m) {
      AMS_TRACE_SPAN("exp/model_fit");
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
      registry.GetCounter("exp/models_fit").Increment();
      registry.GetCounter("exp/models_fit", {{"model", zoo[m].name}})
          .Increment();
      HpoOptions hpo;
      hpo.trials = config.hpo_trials;
      hpo.seed = fold_seed ^ (0x9E3779B97F4A7C15ULL * (m + 1));
      auto best = RandomSearch(zoo[m], context, hpo);
      if (!best.ok()) {
        statuses[m] = best.status();
        return;
      }
      auto pred_norm = best.ValueOrDie().model->PredictNorm(test);
      if (!pred_norm.ok()) {
        statuses[m] = pred_norm.status();
        return;
      }
      auto eval = metrics::Evaluate(test, pred_norm.ValueOrDie());
      if (!eval.ok()) {
        statuses[m] = eval.status();
        return;
      }
      FoldOutcome outcome;
      outcome.test_quarter = fold.test_quarter;
      outcome.eval = eval.MoveValue();
      outcome.hpo_valid_rmse = best.ValueOrDie().valid_rmse;
      // Per-model fold breakdown (last-write-wins per fold).
      const obs::Labels model_label = {{"model", zoo[m].name}};
      registry.GetGauge("exp/fold_ba", model_label).Set(outcome.eval.ba);
      registry.GetGauge("exp/fold_sr", model_label).Set(outcome.eval.sr);
      registry.GetGauge("exp/hpo_valid_rmse", model_label)
          .Set(outcome.hpo_valid_rmse);
      const std::vector<double>& pred = pred_norm.ValueOrDie();
      outcome.predicted_ur.resize(pred.size());
      for (size_t i = 0; i < pred.size(); ++i) {
        outcome.predicted_ur[i] = pred[i] * test.meta[i].scale;
      }
      outcomes[m] = std::move(outcome);
    };
    // Each model fit is retry-wrapped: a task that throws (injected or
    // genuine) is re-run from scratch — the fit is deterministic given the
    // fold seed, so a recovered fit equals an undisturbed one.
    par::DefaultPool().ParallelFor(
        0, static_cast<int64_t>(zoo.size()), /*grain=*/1,
        [&](int64_t m0, int64_t m1) {
          for (int64_t m = m0; m < m1; ++m) {
            Status task_status = robust::RunWithRetry(
                [&, m]() { run_model(static_cast<size_t>(m)); });
            if (!task_status.ok()) statuses[m] = task_status;
          }
        });
    for (size_t m = 0; m < zoo.size(); ++m) {
      AMS_RETURN_NOT_OK(statuses[m]);
      result.models[m].folds.push_back(std::move(outcomes[m]));
      if (config.verbose) {
        AMS_LOG(Info) << "fold " << f + 1 << "/" << result.cv_folds.size()
                      << " " << zoo[m].name << ": BA="
                      << result.models[m].folds.back().eval.ba
                      << " SR=" << result.models[m].folds.back().eval.sr;
      }
    }
  }
  return result;
}

}  // namespace ams::models

namespace ams::models {
namespace {

std::string CacheKey(const ExperimentConfig& config) {
  return std::string("exp_") +
         (config.profile == data::DatasetProfile::kTransactionAmount ? "txn"
                                                                     : "map") +
         "_s" + std::to_string(config.seed) + "_t" +
         std::to_string(config.hpo_trials) + "_a" +
         (config.include_alt ? "1" : "0") + ".csv";
}

ExperimentResult FilterModels(ExperimentResult result,
                              const std::vector<std::string>& filter) {
  if (filter.empty()) return result;
  std::vector<ModelOutcome> kept;
  for (ModelOutcome& model : result.models) {
    if (std::find(filter.begin(), filter.end(), model.name) !=
        filter.end()) {
      kept.push_back(std::move(model));
    }
  }
  result.models = std::move(kept);
  return result;
}

}  // namespace

Result<ExperimentResult> RunExperimentCached(const ExperimentConfig& config,
                                             const std::string& cache_dir) {
  ExperimentConfig full_config = config;
  full_config.model_filter.clear();

  if (cache_dir.empty()) {
    AMS_ASSIGN_OR_RETURN(ExperimentResult result,
                         RunExperiment(full_config));
    return FilterModels(std::move(result), config.model_filter);
  }

  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string path = cache_dir + "/" + CacheKey(config);

  // Rebuild the deterministic context (panel, folds, metas) either way.
  AMS_ASSIGN_OR_RETURN(
      data::Panel panel,
      data::GenerateMarket(
          data::GeneratorConfig::Defaults(config.profile, config.seed)));

  // The loader verifies the CRC footer and validates the reconstruction;
  // ANY failure — truncated file, checksum mismatch, malformed rows —
  // falls back to regeneration below instead of failing the caller.
  auto load_cache = [&]() -> Result<ExperimentResult> {
    AMS_ASSIGN_OR_RETURN(CsvTable table, robust::ReadCsvVerified(path));
    // Reconstruct: header model,fold,sample,predicted_ur.
    ExperimentResult result;
    result.panel = panel;
    const data::CvOptions cv_options = data::DefaultCvOptions(panel.profile);
    AMS_ASSIGN_OR_RETURN(
        result.cv_folds,
        data::TimeSeriesCvFolds(panel.num_quarters, cv_options));
    data::FeatureOptions feature_options;
    feature_options.lag_k = cv_options.lag_k;
    feature_options.include_alt = config.include_alt;
    data::FeatureBuilder builder(&panel, feature_options);
    for (const data::CvFold& fold : result.cv_folds) {
      AMS_ASSIGN_OR_RETURN(data::Dataset test,
                           builder.Build({fold.test_quarter}));
      result.fold_test_meta.push_back(test.meta);
    }
    // Rows carry an explicit sample index; place each prediction by it
    // rather than trusting on-disk row order, and reject duplicate or
    // missing indices so a truncated/hand-edited cache cannot silently
    // misalign predictions with fold_test_meta.
    std::map<std::string, std::map<int, std::map<int, double>>> loaded;
    std::vector<std::string> order;
    for (const auto& row : table.rows) {
      if (row.size() != 4) {
        return Status::InvalidArgument("corrupt experiment cache: " + path);
      }
      if (loaded.find(row[0]) == loaded.end()) order.push_back(row[0]);
      const int fold_index = std::atoi(row[1].c_str());
      const int sample_index = std::atoi(row[2].c_str());
      auto& fold_preds = loaded[row[0]][fold_index];
      if (!fold_preds.emplace(sample_index, std::atof(row[3].c_str()))
               .second) {
        return Status::InvalidArgument(
            "duplicate sample index " + row[2] + " in experiment cache: " +
            path);
      }
    }
    for (const std::string& name : order) {
      ModelOutcome outcome;
      outcome.name = name;
      for (size_t f = 0; f < result.cv_folds.size(); ++f) {
        auto it = loaded[name].find(static_cast<int>(f));
        if (it == loaded[name].end()) {
          return Status::InvalidArgument("incomplete experiment cache: " +
                                         path);
        }
        FoldOutcome fold;
        fold.test_quarter = result.cv_folds[f].test_quarter;
        fold.predicted_ur.reserve(it->second.size());
        int expected_index = 0;
        for (const auto& [sample_index, prediction] : it->second) {
          if (sample_index != expected_index) {
            return Status::InvalidArgument(
                "gap in sample indices (expected " +
                std::to_string(expected_index) + ", found " +
                std::to_string(sample_index) + ") in experiment cache: " +
                path);
          }
          fold.predicted_ur.push_back(prediction);
          ++expected_index;
        }
        std::vector<double> actual;
        for (const data::SampleMeta& meta : result.fold_test_meta[f]) {
          actual.push_back(meta.actual_ur);
        }
        AMS_ASSIGN_OR_RETURN(
            fold.eval,
            metrics::EvaluateAbsolute(fold.predicted_ur, actual));
        outcome.folds.push_back(std::move(fold));
      }
      result.models.push_back(std::move(outcome));
    }
    return result;
  };

  if (std::filesystem::exists(path)) {
    auto cached = load_cache();
    if (cached.ok()) {
      AMS_LOG(Info) << "reusing cached experiment " << path;
      return FilterModels(cached.MoveValue(), config.model_filter);
    }
    obs::MetricsRegistry::Get()
        .GetCounter("robust/cache_regenerated")
        .Increment();
    AMS_LOG(Warning) << "invalid experiment cache (" << cached.status()
                     << "); regenerating";
  }

  AMS_ASSIGN_OR_RETURN(ExperimentResult result,
                       RunExperimentOnPanel(panel, full_config));
  CsvTable table;
  table.header = {"model", "fold", "sample", "predicted_ur"};
  for (const ModelOutcome& model : result.models) {
    for (size_t f = 0; f < model.folds.size(); ++f) {
      for (size_t i = 0; i < model.folds[f].predicted_ur.size(); ++i) {
        table.rows.push_back({model.name, std::to_string(f),
                              std::to_string(i),
                              std::to_string(model.folds[f].predicted_ur[i])});
      }
    }
  }
  Status write_status = robust::WriteCsvAtomic(path, table);
  if (!write_status.ok()) {
    AMS_LOG(Warning) << "could not persist experiment cache: "
                     << write_status;
  }
  return FilterModels(std::move(result), config.model_filter);
}

}  // namespace ams::models
