// Adapter exposing the core AMS model through the Regressor interface:
// builds the company correlation graph from training-window revenue and
// delegates to core::AmsModel.
#ifndef AMS_MODELS_AMS_REGRESSOR_H_
#define AMS_MODELS_AMS_REGRESSOR_H_

#include <memory>
#include <optional>

#include "ams/ams_model.h"
#include "graph/company_graph.h"
#include "models/regressor.h"

namespace ams::models {

class AmsRegressor : public Regressor {
 public:
  /// `graph_top_k` is the correlation-graph hyperparameter k (§III-C).
  /// `ensemble_size` masters are trained from forked seeds and their
  /// predictions averaged — mirroring the paper's practice of repeating
  /// training runs and reporting averages (§IV-C), and taming the variance
  /// of small-data early stopping. Since slave models are linear, averaging
  /// predictions equals averaging slave coefficients.
  AmsRegressor(core::AmsConfig config, int graph_top_k, int ensemble_size = 3)
      : config_(std::move(config)),
        graph_top_k_(graph_top_k),
        ensemble_size_(ensemble_size) {}

  std::string name() const override { return "AMS"; }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

  /// Ensemble-averaged per-sample slave coefficients (Fig. 8).
  Result<la::Matrix> SlaveCoefficients(const data::Dataset& dataset) const;

  /// Access to the first fitted member (anchored coefficients etc.).
  const core::AmsModel* model() const {
    return members_.empty() ? nullptr : members_.front().get();
  }
  const graph::CompanyGraph* company_graph() const {
    return graph_ ? &*graph_ : nullptr;
  }
  int ensemble_size() const { return ensemble_size_; }

 private:
  core::AmsConfig config_;
  int graph_top_k_;
  int ensemble_size_;
  std::optional<graph::CompanyGraph> graph_;
  std::vector<std::unique_ptr<core::AmsModel>> members_;
};

}  // namespace ams::models

#endif  // AMS_MODELS_AMS_REGRESSOR_H_
