#include "models/ams_regressor.h"

namespace ams::models {

Status AmsRegressor::Fit(const FitContext& context) {
  if (context.panel == nullptr) {
    return Status::InvalidArgument("AMS needs the panel to build the graph");
  }
  if (ensemble_size_ < 1) {
    return Status::InvalidArgument("ensemble size must be >= 1");
  }
  // Correlation graph from training-window revenue only (no leakage,
  // paper §III-C).
  graph::CorrelationGraphOptions graph_options;
  graph_options.top_k = graph_top_k_;
  AMS_ASSIGN_OR_RETURN(
      graph::CompanyGraph graph,
      graph::CompanyGraph::BuildFromRevenue(
          context.panel->RevenueHistories(context.last_train_quarter),
          graph_options));
  graph_ = std::move(graph);

  members_.clear();
  Rng seed_rng(context.seed);
  for (int member = 0; member < ensemble_size_; ++member) {
    core::AmsConfig config = config_;
    config.seed = seed_rng.NextU64();
    auto model = std::make_unique<core::AmsModel>(config);
    AMS_RETURN_NOT_OK(model->Fit(*context.train, *context.valid, *graph_));
    members_.push_back(std::move(model));
  }
  return Status::OK();
}

Result<std::vector<double>> AmsRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  if (members_.empty()) return Status::FailedPrecondition("not fitted");
  std::vector<double> out(dataset.num_samples(), 0.0);
  for (const auto& member : members_) {
    AMS_ASSIGN_OR_RETURN(std::vector<double> pred, member->Predict(dataset));
    for (size_t i = 0; i < pred.size(); ++i) out[i] += pred[i];
  }
  for (double& v : out) v /= members_.size();
  return out;
}

Result<la::Matrix> AmsRegressor::SlaveCoefficients(
    const data::Dataset& dataset) const {
  if (members_.empty()) return Status::FailedPrecondition("not fitted");
  la::Matrix total;
  for (const auto& member : members_) {
    AMS_ASSIGN_OR_RETURN(la::Matrix coeffs,
                         member->SlaveCoefficients(dataset));
    if (total.empty()) {
      total = std::move(coeffs);
    } else {
      total += coeffs;
    }
  }
  total *= 1.0 / members_.size();
  return total;
}

}  // namespace ams::models
