#include "models/baselines.h"

#include <cmath>

namespace ams::models {

Result<double> ValidationRmse(const Regressor& model,
                              const data::Dataset& valid) {
  AMS_ASSIGN_OR_RETURN(std::vector<double> pred, model.PredictNorm(valid));
  if (pred.empty()) return Status::InvalidArgument("empty validation set");
  double sse = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - valid.y[i];
    sse += d * d;
  }
  return std::sqrt(sse / pred.size());
}

Status LinearRegressor::Fit(const FitContext& context) {
  const data::Dataset& train = *context.train;
  if (options_.l1_ratio == 0.0) {
    // Pure L2: closed form is exact and faster than coordinate descent.
    AMS_ASSIGN_OR_RETURN(model_,
                         linear::LinearModel::FitRidge(
                             train.x, train.TargetMatrix(), options_.alpha,
                             options_.fit_intercept));
    return Status::OK();
  }
  AMS_ASSIGN_OR_RETURN(model_, linear::LinearModel::FitElasticNet(
                                   train.x, train.TargetMatrix(), options_));
  return Status::OK();
}

Result<std::vector<double>> LinearRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  return model_.Predict(dataset.x);
}

Status XgboostRegressor::Fit(const FitContext& context) {
  const data::Dataset& train = *context.train;
  const data::Dataset& valid = *context.valid;
  const la::Matrix valid_y = valid.TargetMatrix();
  return booster_.Fit(train.x, train.TargetMatrix(), &valid.x, &valid_y);
}

Result<std::vector<double>> XgboostRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  return booster_.Predict(dataset.x);
}

Status ArimaRegressor::Fit(const FitContext& context) {
  if (context.panel == nullptr) {
    return Status::InvalidArgument("ARIMA needs the panel");
  }
  panel_ = context.panel;
  return Status::OK();
}

Result<std::vector<double>> ArimaRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  if (panel_ == nullptr) return Status::FailedPrecondition("not fitted");
  std::vector<double> out(dataset.num_samples());
  for (int r = 0; r < dataset.num_samples(); ++r) {
    const data::SampleMeta& meta = dataset.meta[r];
    const data::Company& company = panel_->companies[meta.company];
    // History strictly before the target quarter; those revenues have been
    // announced by prediction time.
    std::vector<double> history(meta.quarter);
    for (int t = 0; t < meta.quarter; ++t) {
      history[t] = company.quarters[t].revenue;
    }
    AMS_ASSIGN_OR_RETURN(ts::ArimaModel model,
                         ts::ArimaModel::FitAuto(history, options_));
    const double forecast = model.Forecast(1)[0];
    out[r] = (forecast - meta.consensus) / meta.scale;
  }
  return out;
}

std::string RatioRegressor::name() const {
  std::string base = kind_ == Kind::kQoQ ? "QoQ" : "YoY";
  if (alt_channel_ > 0) base += "(ch" + std::to_string(alt_channel_) + ")";
  return base;
}

Status RatioRegressor::Fit(const FitContext& context) {
  if (context.panel == nullptr) {
    return Status::InvalidArgument("ratio models need the panel");
  }
  if (alt_channel_ < 0 || alt_channel_ >= context.panel->num_alt_channels) {
    return Status::InvalidArgument("alt channel out of range");
  }
  panel_ = context.panel;
  return Status::OK();
}

Result<std::vector<double>> RatioRegressor::PredictNorm(
    const data::Dataset& dataset) const {
  if (panel_ == nullptr) return Status::FailedPrecondition("not fitted");
  const int lag = kind_ == Kind::kQoQ ? 1 : 4;
  std::vector<double> out(dataset.num_samples());
  for (int r = 0; r < dataset.num_samples(); ++r) {
    const data::SampleMeta& meta = dataset.meta[r];
    if (meta.quarter < lag) {
      return Status::InvalidArgument("sample lacks the required lag");
    }
    const data::Company& company = panel_->companies[meta.company];
    const data::CompanyQuarter& now = company.quarters[meta.quarter];
    const data::CompanyQuarter& past = company.quarters[meta.quarter - lag];
    const double ratio = now.alt[alt_channel_] / past.alt[alt_channel_];
    const double predicted_revenue = ratio * past.revenue;
    out[r] = (predicted_revenue - meta.consensus) / meta.scale;
  }
  return out;
}

}  // namespace ams::models
