// Non-neural baselines: the linear family (Lasso / Ridge / Elasticnet),
// XGBoost-style GBDT, and the series-based predictors (ARIMA, QoQ, YoY)
// described in paper §IV-B.
#ifndef AMS_MODELS_BASELINES_H_
#define AMS_MODELS_BASELINES_H_

#include <memory>
#include <optional>
#include <string>

#include "gbdt/gbdt.h"
#include "linear/linear_model.h"
#include "models/regressor.h"
#include "ts/arima.h"

namespace ams::models {

/// Lasso / Ridge / Elasticnet, selected by LinearOptions::l1_ratio
/// (1 / 0 / in-between). `display_name` fixes the table label.
class LinearRegressor : public Regressor {
 public:
  LinearRegressor(std::string display_name, linear::LinearOptions options)
      : name_(std::move(display_name)), options_(options) {}

  std::string name() const override { return name_; }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

  const linear::LinearModel& model() const { return model_; }

 private:
  std::string name_;
  linear::LinearOptions options_;
  linear::LinearModel model_;
};

/// The XGBoost baseline (objective reg:linear).
class XgboostRegressor : public Regressor {
 public:
  explicit XgboostRegressor(gbdt::GbdtOptions options)
      : booster_(options) {}

  std::string name() const override { return "XGBoost"; }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

 private:
  gbdt::GbdtRegressor booster_;
};

/// ARIMA per company: fit on the revenue series up to the quarter before
/// the prediction target, forecast one step, subtract the consensus.
class ArimaRegressor : public Regressor {
 public:
  explicit ArimaRegressor(ts::ArimaOptions options = {})
      : options_(options) {}

  std::string name() const override { return "ARIMA"; }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

 private:
  ts::ArimaOptions options_;
  const data::Panel* panel_ = nullptr;
};

/// Naive alternative-data ratio predictors (paper §IV-B):
///   QoQ: (A_t / A_{t-1}) R_{t-1} - E_t;  YoY: (A_t / A_{t-4}) R_{t-4} - E_t.
/// `alt_channel` selects the channel (map-query store vs parking lot rows
/// in Tables I/II).
class RatioRegressor : public Regressor {
 public:
  enum class Kind { kQoQ, kYoY };

  RatioRegressor(Kind kind, int alt_channel)
      : kind_(kind), alt_channel_(alt_channel) {}

  std::string name() const override;
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

 private:
  Kind kind_;
  int alt_channel_;
  const data::Panel* panel_ = nullptr;
};

}  // namespace ams::models

#endif  // AMS_MODELS_BASELINES_H_
