// The model zoo: hyperparameter-sampling factories for AMS and every
// baseline, in the order the paper's tables list them.
#ifndef AMS_MODELS_ZOO_H_
#define AMS_MODELS_ZOO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "models/regressor.h"
#include "util/rng.h"

namespace ams::models {

/// Draws one hyperparameter configuration and constructs the model.
using ModelFactory = std::function<std::unique_ptr<Regressor>(Rng*)>;

struct ModelSpec {
  std::string name;
  ModelFactory factory;
  /// Random-search budget; 1 for models with no hyperparameters.
  int default_trials = 8;
};

/// All entries of Tables I/II for a panel with `num_alt_channels` channels
/// (QoQ/YoY get one entry per channel, mirroring the two map-query rows).
/// Order matches the paper: AMS, XGBoost, MLP, Lasso, Ridge, Elasticnet,
/// Lstm, GRU, ARIMA, YoY..., QoQ....
std::vector<ModelSpec> BuildModelZoo(int num_alt_channels);

/// The subset that supports the Table III "-na" ablation (everything that
/// learns from the feature matrix; ARIMA/QoQ/YoY are excluded as in the
/// paper).
std::vector<std::string> LearnedModelNames();

/// Factory for AMS alone with an explicit config (used by the component
/// ablation bench).
ModelSpec MakeAmsSpec();

}  // namespace ams::models

#endif  // AMS_MODELS_ZOO_H_
