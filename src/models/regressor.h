// Unified interface every predictor in the evaluation implements (AMS and
// the ten baselines of Tables I-V), plus the fit-time context a fold
// provides.
#ifndef AMS_MODELS_REGRESSOR_H_
#define AMS_MODELS_REGRESSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "data/features.h"
#include "data/panel.h"
#include "util/status.h"

namespace ams::models {

/// Everything a model may use when fitting one cross-validation fold.
/// All members outlive the Fit/Predict calls.
struct FitContext {
  const data::Dataset* train = nullptr;
  const data::Dataset* valid = nullptr;
  /// The full panel; models consuming raw series (ARIMA, QoQ, YoY) and the
  /// correlation graph builder read it. When predicting quarter t they may
  /// only use observations from quarters < t (plus quarter-t consensus and
  /// alternative data, which are available before the announcement).
  const data::Panel* panel = nullptr;
  /// Last quarter index whose *revenue* may be used for structures fitted
  /// once per fold (e.g. the correlation graph).
  int last_train_quarter = 0;
  uint64_t seed = 42;
};

/// A revenue-surprise regressor. Predictions are in normalized units
/// (UR / R_{t-k}), matching data::Dataset::y.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Model name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  virtual Status Fit(const FitContext& context) = 0;

  /// Normalized UR prediction per dataset row.
  virtual Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const = 0;
};

/// Validation RMSE on normalized targets — the score random search
/// minimizes.
Result<double> ValidationRmse(const Regressor& model,
                              const data::Dataset& valid);

}  // namespace ams::models

#endif  // AMS_MODELS_REGRESSOR_H_
