// Neural baselines: MLP and the recurrent sequence models (LSTM, GRU),
// trained with Adam + L2 + dropout + early stopping as in paper §IV-C.
#ifndef AMS_MODELS_NEURAL_H_
#define AMS_MODELS_NEURAL_H_

#include <memory>
#include <string>
#include <vector>

#include "models/regressor.h"
#include "nn/dense.h"
#include "robust/guard.h"
#include "seq/recurrent.h"

namespace ams::models {

/// Shared optimizer settings for the neural baselines.
struct NeuralTrainOptions {
  int max_epochs = 400;
  double learning_rate = 2e-3;
  double weight_decay = 1e-4;
  double dropout = 0.1;
  double grad_clip = 5.0;
  int patience = 50;
  uint64_t seed = 42;
  /// Non-finite loss/gradient handling; defaults to AMS_GUARD_POLICY.
  robust::GuardOptions guard = robust::GuardOptions::FromEnv();
};

/// Multilayer perceptron on the flat feature vector.
class MlpRegressor : public Regressor {
 public:
  MlpRegressor(std::vector<int> hidden, NeuralTrainOptions options)
      : hidden_(std::move(hidden)), options_(options) {}

  std::string name() const override { return "MLP"; }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

 private:
  std::vector<int> hidden_;
  NeuralTrainOptions options_;
  std::unique_ptr<nn::Mlp> mlp_;
};

/// Recurrent baseline: an LSTM or GRU encodes the k lag blocks
/// (time-major), the final hidden state is concatenated with the static
/// features (VE_t, A_t, one-hots) and fed to a linear head.
class RecurrentRegressor : public Regressor {
 public:
  enum class CellKind { kLstm, kGru };

  RecurrentRegressor(CellKind kind, int hidden_size,
                     NeuralTrainOptions options)
      : kind_(kind), hidden_size_(hidden_size), options_(options) {}

  std::string name() const override {
    return kind_ == CellKind::kLstm ? "Lstm" : "GRU";
  }
  Status Fit(const FitContext& context) override;
  Result<std::vector<double>> PredictNorm(
      const data::Dataset& dataset) const override;

 private:
  tensor::Tensor Forward(const std::vector<tensor::Tensor>& steps,
                         const tensor::Tensor& static_features, bool training,
                         Rng* dropout_rng) const;
  std::vector<tensor::Tensor> Parameters() const;

  CellKind kind_;
  int hidden_size_;
  NeuralTrainOptions options_;
  std::unique_ptr<seq::LstmCell> lstm_;
  std::unique_ptr<seq::GruCell> gru_;
  std::unique_ptr<nn::Dense> head_;
};

}  // namespace ams::models

#endif  // AMS_MODELS_NEURAL_H_
