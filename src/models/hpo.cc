#include "models/hpo.h"

#include <atomic>
#include <filesystem>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "robust/checkpoint.h"
#include "robust/faults.h"
#include "robust/retry.h"
#include "util/logging.h"

namespace ams::models {

namespace {

/// Everything one trial produces; reduced sequentially after the parallel
/// fit phase so the winner is independent of scheduling.
struct TrialResult {
  std::unique_ptr<Regressor> model;  // null when the trial failed OR when
                                     // the trial was resumed from disk
  double valid_rmse = 0.0;
  std::string error;
  bool done = false;  // completed (ok or failed) this run or via resume
  bool ok = false;
};

std::string SanitizeForFilename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return out;
}

}  // namespace

Result<HpoOutcome> RandomSearch(const ModelSpec& spec,
                                const FitContext& context,
                                const HpoOptions& options) {
  const int trials = options.trials > 0 ? options.trials
                                        : spec.default_trials;
  // Pre-fork one RNG stream per trial on the calling thread, in trial
  // order. Trial t therefore samples the same hyperparameters and fit seed
  // no matter how many pool workers exist or how trials interleave — and a
  // retried or resumed trial t re-runs from a copy of the same stream,
  // reproducing its result exactly.
  Rng rng(options.seed);
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(trials);
  for (int trial = 0; trial < trials; ++trial) {
    trial_rngs.push_back(rng.Fork());
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& trial_counter = registry.GetCounter("hpo/trials");
  obs::Counter& failed_counter = registry.GetCounter("hpo/trials_failed");
  obs::Counter& resumed_counter =
      registry.GetCounter("robust/hpo_trials_resumed");
  // Per-outcome breakdown of the same events, for the labeled reports.
  obs::Counter& outcome_ok =
      registry.GetCounter("hpo/trials", {{"outcome", "ok"}});
  obs::Counter& outcome_failed =
      registry.GetCounter("hpo/trials", {{"outcome", "failed"}});
  obs::Counter& outcome_resumed =
      registry.GetCounter("hpo/trials", {{"outcome", "resumed"}});

  // --- Per-trial progress checkpoint. ---
  std::string ckpt_dir = options.checkpoint_dir;
  if (ckpt_dir.empty()) {
    ckpt_dir = robust::CheckpointDirFromEnv();
  } else {
    std::error_code ec;
    std::filesystem::create_directories(ckpt_dir, ec);
  }
  const std::string fingerprint = "hpo1|" + spec.name + "|t" +
                                  std::to_string(trials) + "|s" +
                                  std::to_string(options.seed);
  std::string ckpt_path;
  if (!ckpt_dir.empty()) {
    ckpt_path = ckpt_dir + "/hpo_" + SanitizeForFilename(spec.name) + "_s" +
                std::to_string(options.seed) + "_t" + std::to_string(trials) +
                ".ckpt";
  }

  std::vector<TrialResult> results(trials);
  robust::Checkpoint ckpt;
  int trials_resumed = 0;
  if (!ckpt_path.empty() && std::filesystem::exists(ckpt_path)) {
    auto loaded = robust::LoadCheckpoint(ckpt_path);
    if (loaded.ok() &&
        loaded.ValueOrDie().strings["fingerprint"] == fingerprint) {
      ckpt = std::move(loaded.ValueOrDie());
      for (int t = 0; t < trials; ++t) {
        const std::string key = "trial/" + std::to_string(t);
        auto ok_it = ckpt.scalars.find(key + "/ok");
        if (ok_it == ckpt.scalars.end()) continue;
        results[t].done = true;
        results[t].ok = ok_it->second != 0.0;
        auto rmse_it = ckpt.scalars.find(key + "/rmse");
        if (rmse_it != ckpt.scalars.end()) {
          results[t].valid_rmse = rmse_it->second;
        }
        auto error_it = ckpt.strings.find(key + "/error");
        if (error_it != ckpt.strings.end()) {
          results[t].error = error_it->second;
        }
        ++trials_resumed;
        resumed_counter.Increment();
        outcome_resumed.Increment();
      }
      AMS_LOG(Info) << spec.name << ": resumed " << trials_resumed << "/"
                    << trials << " HPO trials from " << ckpt_path;
    } else {
      AMS_LOG(Warning) << "ignoring stale/corrupt HPO checkpoint "
                       << ckpt_path;
      ckpt = robust::Checkpoint();
    }
  }
  ckpt.strings["fingerprint"] = fingerprint;

  std::mutex ckpt_mu;  // serializes record updates + checkpoint rewrites
  int64_t completed = trials_resumed;
  std::atomic<bool> crashed{false};

  par::DefaultPool().ParallelFor(
      0, trials, /*grain=*/1, [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          if (results[t].done) continue;  // resumed from checkpoint
          if (crashed.load(std::memory_order_relaxed)) continue;
          AMS_TRACE_SPAN("hpo/trial");
          trial_counter.Increment();
          // The whole trial is retry-wrapped: a thrown task (injected or
          // real) re-runs from a fresh copy of the trial's RNG stream, so
          // a recovered trial is indistinguishable from an undisturbed one.
          // Status-level fit failures are deterministic and NOT retried.
          Status trial_status = robust::RunWithRetry([&, t]() {
            Rng trial_rng = trial_rngs[t];
            std::unique_ptr<Regressor> model = spec.factory(&trial_rng);
            FitContext trial_context = context;
            trial_context.seed = trial_rng.NextU64();
            Status fit_status = model->Fit(trial_context);
            if (!fit_status.ok()) {
              results[t].error = fit_status.ToString();
              return;
            }
            auto rmse = ValidationRmse(*model, *context.valid);
            if (!rmse.ok()) {
              results[t].error = rmse.status().ToString();
              return;
            }
            results[t].model = std::move(model);
            results[t].valid_rmse = rmse.ValueOrDie();
            results[t].ok = true;
          });
          if (!trial_status.ok()) {
            results[t].error = trial_status.ToString();
            results[t].ok = false;
          }
          results[t].done = true;
          if (!results[t].ok) failed_counter.Increment();
          (results[t].ok ? outcome_ok : outcome_failed).Increment();

          std::lock_guard<std::mutex> lock(ckpt_mu);
          const std::string key = "trial/" + std::to_string(t);
          ckpt.scalars[key + "/ok"] = results[t].ok ? 1.0 : 0.0;
          ckpt.scalars[key + "/rmse"] = results[t].valid_rmse;
          if (!results[t].error.empty()) {
            ckpt.strings[key + "/error"] = results[t].error;
          }
          ++completed;
          if (!ckpt_path.empty()) {
            Status save_status = robust::SaveCheckpoint(ckpt_path, ckpt);
            if (!save_status.ok()) {
              AMS_LOG(Warning) << "could not save HPO checkpoint: "
                               << save_status;
            }
          }
          // Simulated mid-run kill: fires after the completed trial was
          // checkpointed, so a rerun resumes exactly past this point.
          if (robust::FaultInjector::Get().ShouldCrashHpo(completed)) {
            crashed.store(true, std::memory_order_relaxed);
          }
        }
      });

  if (crashed.load()) {
    return Status::Internal("injected HPO crash for " + spec.name);
  }

  // Sequential reduce in trial order: strict < keeps the lowest-index trial
  // on RMSE ties, exactly like the serial loop did.
  HpoOutcome outcome;
  outcome.trials_run = trials;
  outcome.trials_resumed = trials_resumed;
  double best = std::numeric_limits<double>::infinity();
  int best_trial = -1;
  std::string last_error;
  for (int trial = 0; trial < trials; ++trial) {
    TrialResult& result = results[trial];
    if (!result.ok) {
      ++outcome.trials_failed;
      last_error = result.error;
      continue;
    }
    if (result.valid_rmse < best) {
      best = result.valid_rmse;
      best_trial = trial;
      outcome.valid_rmse = best;
    }
  }
  if (best_trial < 0) {
    return Status::ComputeError("all " + std::to_string(trials) +
                                " random-search trials for " + spec.name +
                                " failed; last error: " + last_error);
  }
  outcome.model = std::move(results[best_trial].model);
  if (outcome.model == nullptr) {
    // The winner was resumed from the checkpoint record, which stores its
    // score but not the fitted model; re-fit it from the same pre-forked
    // RNG stream, which reproduces it exactly.
    Rng trial_rng = trial_rngs[best_trial];
    std::unique_ptr<Regressor> model = spec.factory(&trial_rng);
    FitContext trial_context = context;
    trial_context.seed = trial_rng.NextU64();
    Status fit_status = model->Fit(trial_context);
    if (!fit_status.ok()) {
      return Status::ComputeError(
          "re-fit of resumed winning trial failed: " + fit_status.ToString());
    }
    outcome.model = std::move(model);
  }
  if (outcome.trials_failed > 0) {
    AMS_LOG(Warning) << spec.name << ": " << outcome.trials_failed << "/"
                     << outcome.trials_run << " HPO trials failed";
  }
  if (!ckpt_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(ckpt_path, ec);
  }
  return outcome;
}

}  // namespace ams::models
