#include "models/hpo.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ams::models {

Result<HpoOutcome> RandomSearch(const ModelSpec& spec,
                                const FitContext& context,
                                const HpoOptions& options) {
  const int trials = options.trials > 0 ? options.trials
                                        : spec.default_trials;
  Rng rng(options.seed);
  HpoOutcome outcome;
  double best = std::numeric_limits<double>::infinity();
  std::string last_error;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& trial_counter = registry.GetCounter("hpo/trials");
  obs::Counter& failed_counter = registry.GetCounter("hpo/trials_failed");
  for (int trial = 0; trial < trials; ++trial) {
    AMS_TRACE_SPAN("hpo/trial");
    Rng trial_rng = rng.Fork();
    std::unique_ptr<Regressor> model = spec.factory(&trial_rng);
    FitContext trial_context = context;
    trial_context.seed = trial_rng.NextU64();
    ++outcome.trials_run;
    trial_counter.Increment();
    Status fit_status = model->Fit(trial_context);
    if (!fit_status.ok()) {
      ++outcome.trials_failed;
      failed_counter.Increment();
      last_error = fit_status.ToString();
      continue;
    }
    auto rmse = ValidationRmse(*model, *context.valid);
    if (!rmse.ok()) {
      ++outcome.trials_failed;
      failed_counter.Increment();
      last_error = rmse.status().ToString();
      continue;
    }
    if (rmse.ValueOrDie() < best) {
      best = rmse.ValueOrDie();
      outcome.model = std::move(model);
      outcome.valid_rmse = best;
    }
  }
  if (outcome.model == nullptr) {
    return Status::ComputeError("all " + std::to_string(trials) +
                                " random-search trials for " + spec.name +
                                " failed; last error: " + last_error);
  }
  if (outcome.trials_failed > 0) {
    AMS_LOG(Warning) << spec.name << ": " << outcome.trials_failed << "/"
                     << outcome.trials_run << " HPO trials failed";
  }
  return outcome;
}

}  // namespace ams::models
