#include "models/hpo.h"

#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/logging.h"

namespace ams::models {

namespace {

/// Everything one trial produces; reduced sequentially after the parallel
/// fit phase so the winner is independent of scheduling.
struct TrialResult {
  std::unique_ptr<Regressor> model;  // null when the trial failed
  double valid_rmse = 0.0;
  std::string error;
};

}  // namespace

Result<HpoOutcome> RandomSearch(const ModelSpec& spec,
                                const FitContext& context,
                                const HpoOptions& options) {
  const int trials = options.trials > 0 ? options.trials
                                        : spec.default_trials;
  // Pre-fork one RNG stream per trial on the calling thread, in trial
  // order. Trial t therefore samples the same hyperparameters and fit seed
  // no matter how many pool workers exist or how trials interleave.
  Rng rng(options.seed);
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(trials);
  for (int trial = 0; trial < trials; ++trial) {
    trial_rngs.push_back(rng.Fork());
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& trial_counter = registry.GetCounter("hpo/trials");
  obs::Counter& failed_counter = registry.GetCounter("hpo/trials_failed");

  std::vector<TrialResult> results(trials);
  par::DefaultPool().ParallelFor(
      0, trials, /*grain=*/1, [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          AMS_TRACE_SPAN("hpo/trial");
          Rng& trial_rng = trial_rngs[t];
          std::unique_ptr<Regressor> model = spec.factory(&trial_rng);
          FitContext trial_context = context;
          trial_context.seed = trial_rng.NextU64();
          trial_counter.Increment();
          Status fit_status = model->Fit(trial_context);
          if (!fit_status.ok()) {
            failed_counter.Increment();
            results[t].error = fit_status.ToString();
            continue;
          }
          auto rmse = ValidationRmse(*model, *context.valid);
          if (!rmse.ok()) {
            failed_counter.Increment();
            results[t].error = rmse.status().ToString();
            continue;
          }
          results[t].model = std::move(model);
          results[t].valid_rmse = rmse.ValueOrDie();
        }
      });

  // Sequential reduce in trial order: strict < keeps the lowest-index trial
  // on RMSE ties, exactly like the serial loop did.
  HpoOutcome outcome;
  outcome.trials_run = trials;
  double best = std::numeric_limits<double>::infinity();
  std::string last_error;
  for (int trial = 0; trial < trials; ++trial) {
    TrialResult& result = results[trial];
    if (result.model == nullptr) {
      ++outcome.trials_failed;
      last_error = result.error;
      continue;
    }
    if (result.valid_rmse < best) {
      best = result.valid_rmse;
      outcome.model = std::move(result.model);
      outcome.valid_rmse = best;
    }
  }
  if (outcome.model == nullptr) {
    return Status::ComputeError("all " + std::to_string(trials) +
                                " random-search trials for " + spec.name +
                                " failed; last error: " + last_error);
  }
  if (outcome.trials_failed > 0) {
    AMS_LOG(Warning) << spec.name << ": " << outcome.trials_failed << "/"
                     << outcome.trials_run << " HPO trials failed";
  }
  return outcome;
}

}  // namespace ams::models
