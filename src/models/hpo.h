// Random-search hyperparameter optimization (Bergstra & Bengio, JMLR 2012)
// on the fold's validation quarter, as in paper §IV-C.
#ifndef AMS_MODELS_HPO_H_
#define AMS_MODELS_HPO_H_

#include <memory>
#include <string>

#include "models/zoo.h"

namespace ams::models {

struct HpoOptions {
  /// Number of sampled configurations; <= 0 means use the spec's default.
  int trials = 0;
  uint64_t seed = 7;
  /// Directory for per-trial resume checkpoints. Empty means "use
  /// AMS_CHECKPOINT_DIR" (still empty -> checkpointing off). After every
  /// completed trial the progress file is atomically rewritten; a search
  /// restarted after a mid-run crash skips the recorded trials and
  /// reproduces the uninterrupted result bit-identically.
  std::string checkpoint_dir;
};

struct HpoOutcome {
  std::unique_ptr<Regressor> model;  // fitted, best by validation RMSE
  double valid_rmse = 0.0;
  int trials_run = 0;
  int trials_failed = 0;
  int trials_resumed = 0;  // completed trials skipped via checkpoint
};

/// Samples, fits and scores `trials` configurations; returns the best.
/// Individual trial failures (e.g. divergence) are tolerated; fails only if
/// every trial failed. Trials that throw (injected or genuine) are retried
/// with bounded backoff before being recorded as failures.
Result<HpoOutcome> RandomSearch(const ModelSpec& spec,
                                const FitContext& context,
                                const HpoOptions& options);

}  // namespace ams::models

#endif  // AMS_MODELS_HPO_H_
