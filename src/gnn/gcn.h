// Graph convolutional network (Kipf & Welling, ICLR 2017) — the
// mean-aggregation alternative to GAT for the AMS master model's GNN
// component. Used by the component-ablation bench to show what the
// attention mechanism adds over plain symmetric-normalized aggregation.
#ifndef AMS_GNN_GCN_H_
#define AMS_GNN_GCN_H_

#include <vector>

#include "la/matrix.h"
#include "nn/dense.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::gnn {

/// Builds the dense symmetric-normalized propagation matrix
/// A_hat = D^{-1/2} (A + I) D^{-1/2} from an attention mask (nonzero =
/// edge; the mask convention already includes self-loops).
la::Matrix NormalizedAdjacency(const la::Matrix& mask);

/// One GCN layer: X' = phi(A_hat X W^T + b).
class GcnLayer {
 public:
  GcnLayer(int in_features, int out_features, nn::Activation activation,
           Rng* rng);

  /// `a_hat` must be the NormalizedAdjacency of the graph.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const la::Matrix& a_hat) const;

  std::vector<tensor::Tensor> Parameters() const;

  int in_features() const { return layer_.in_features(); }
  int out_features() const { return layer_.out_features(); }

 private:
  nn::Dense layer_;
};

/// A stack of GCN layers (hidden ReLU layers + linear output layer),
/// interface-compatible with GatNetwork for the AMS master.
class GcnNetwork {
 public:
  GcnNetwork(int in_features, const std::vector<int>& hidden,
             int out_features, Rng* rng);

  /// `mask` is the same attention mask GatNetwork consumes; the normalized
  /// adjacency is (re)computed when the mask changes.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const la::Matrix& mask) const;

  std::vector<tensor::Tensor> Parameters() const;

  int out_features() const { return layers_.back().out_features(); }

 private:
  std::vector<GcnLayer> layers_;
  mutable la::Matrix cached_mask_;
  mutable la::Matrix cached_a_hat_;
};

}  // namespace ams::gnn

#endif  // AMS_GNN_GCN_H_
