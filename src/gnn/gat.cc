#include "gnn/gat.h"

#include "nn/init.h"
#include "tensor/fusion.h"

namespace ams::gnn {

using la::Matrix;
using tensor::Tensor;

GatLayer::GatLayer(int in_features, int out_features_per_head, int num_heads,
                   nn::Activation activation, Rng* rng, bool average_heads,
                   double leaky_relu_alpha)
    : in_features_(in_features),
      out_per_head_(out_features_per_head),
      num_heads_(num_heads),
      activation_(activation),
      average_heads_(average_heads),
      leaky_alpha_(leaky_relu_alpha) {
  AMS_DCHECK(num_heads >= 1, "GAT layer needs >= 1 head");
  for (int h = 0; h < num_heads; ++h) {
    weights_.push_back(Tensor::Parameter(nn::XavierUniform(
        out_per_head_, in_features_, in_features_, out_per_head_, rng)));
    attn_src_.push_back(Tensor::Parameter(
        nn::XavierUniform(out_per_head_, 1, out_per_head_, 1, rng)));
    attn_dst_.push_back(Tensor::Parameter(
        nn::XavierUniform(out_per_head_, 1, out_per_head_, 1, rng)));
  }
}

int GatLayer::out_features() const {
  return average_heads_ ? out_per_head_ : out_per_head_ * num_heads_;
}

Tensor GatLayer::Forward(const Tensor& x, const Matrix& mask, bool training,
                         double attn_dropout, Rng* dropout_rng) const {
  AMS_DCHECK(x.cols() == in_features_, "GAT input width mismatch");
  const int n = x.rows();
  AMS_DCHECK(mask.rows() == n && mask.cols() == n, "GAT mask shape mismatch");

  last_attention_.clear();
  const Tensor zeros = Tensor::Constant(Matrix::Zeros(n, n));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    // H = X W^T: n x out_per_head.
    Tensor hidden = tensor::MatMul(x, tensor::Transpose(weights_[h]));
    // Additive attention split into source and destination contributions:
    // e_ij = LeakyReLU(s_src_i + s_dst_j).
    Tensor s_src = tensor::MatMul(hidden, attn_src_[h]);  // n x 1
    Tensor s_dst = tensor::MatMul(hidden, attn_dst_[h]);  // n x 1
    // Both broadcast adds and the LeakyReLU record one fused node.
    Tensor logits = tensor::ElementwiseChain()
                        .Add(s_src)                      // broadcast rows
                        .Add(tensor::Transpose(s_dst))   // broadcast cols
                        .LeakyRelu(leaky_alpha_)
                        .Apply(zeros);
    Tensor attention = tensor::MaskedRowSoftmax(logits, mask);
    if (attn_dropout > 0.0 && training) {
      attention =
          tensor::Dropout(attention, attn_dropout, training, dropout_rng);
    }
    last_attention_.push_back(attention.value());
    Tensor aggregated = tensor::MatMul(attention, hidden);
    head_outputs.push_back(nn::Activate(aggregated, activation_));
  }
  if (num_heads_ == 1) return head_outputs[0];
  if (!average_heads_) return tensor::ConcatCols(head_outputs);
  tensor::ElementwiseChain mean;
  for (int h = 1; h < num_heads_; ++h) mean.Add(head_outputs[h]);
  mean.Scale(1.0 / num_heads_);
  return mean.Apply(head_outputs[0]);
}

std::vector<Tensor> GatLayer::Parameters() const {
  std::vector<Tensor> params;
  for (int h = 0; h < num_heads_; ++h) {
    params.push_back(weights_[h]);
    params.push_back(attn_src_[h]);
    params.push_back(attn_dst_[h]);
  }
  return params;
}

GatNetwork::GatNetwork(int in_features, const GatConfig& config, Rng* rng)
    : in_features_(in_features), config_(config) {
  int width = in_features;
  for (int per_head : config.hidden_per_head) {
    layers_.emplace_back(width, per_head, config.num_heads,
                         config.hidden_activation, rng,
                         /*average_heads=*/false, config.leaky_relu_alpha);
    width = layers_.back().out_features();
  }
  // Final single-head layer, linear output (representation layer).
  layers_.emplace_back(width, config.out_features, /*num_heads=*/1,
                       nn::Activation::kNone, rng, /*average_heads=*/false,
                       config.leaky_relu_alpha);
}

Tensor GatNetwork::Forward(const Tensor& x, const Matrix& mask, bool training,
                           Rng* dropout_rng) const {
  Tensor h = x;
  for (const GatLayer& layer : layers_) {
    h = layer.Forward(h, mask, training, config_.attention_dropout,
                      dropout_rng);
  }
  return h;
}

std::vector<Tensor> GatNetwork::Parameters() const {
  std::vector<Tensor> params;
  for (const GatLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace ams::gnn
