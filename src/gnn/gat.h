// Graph attention network (Velickovic et al., ICLR 2018), the GNN used by
// the AMS master model on the company correlation graph (paper §III-C,
// Eq. 2-3).
//
// Graphs here are small (one node per company, n <= ~100), so attention is
// computed densely over an n x n adjacency mask.
#ifndef AMS_GNN_GAT_H_
#define AMS_GNN_GAT_H_

#include <vector>

#include "la/matrix.h"
#include "nn/dense.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::gnn {

/// One multi-head graph attention layer.
///
/// Per head h: H = X W_h^T; e_ij = LeakyReLU(a_src . h_i + a_dst . h_j) for
/// j in N(i) u {i}; alpha = softmax_j(e_ij); out_i = phi(sum_j alpha_ij h_j).
/// Head outputs are concatenated (Eq. 3) unless `average_heads` is set
/// (used for the final layer, which the paper makes single-head).
class GatLayer {
 public:
  GatLayer(int in_features, int out_features_per_head, int num_heads,
           nn::Activation activation, Rng* rng, bool average_heads = false,
           double leaky_relu_alpha = 0.2);

  /// x: n x in_features node features; mask: n x n attention mask with
  /// self-loops (see graph::CompanyGraph::AttentionMask).
  tensor::Tensor Forward(const tensor::Tensor& x, const la::Matrix& mask,
                         bool training = false, double attn_dropout = 0.0,
                         Rng* dropout_rng = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const;

  int in_features() const { return in_features_; }
  /// Width of the layer output (heads * per-head features when
  /// concatenating; per-head features when averaging).
  int out_features() const;
  int num_heads() const { return num_heads_; }

  /// Attention matrices (one n x n per head) from the most recent Forward;
  /// exposed for diagnostics and tests.
  const std::vector<la::Matrix>& last_attention() const {
    return last_attention_;
  }

 private:
  int in_features_;
  int out_per_head_;
  int num_heads_;
  nn::Activation activation_;
  bool average_heads_;
  double leaky_alpha_;
  std::vector<tensor::Tensor> weights_;   // per head: out_per_head x in
  std::vector<tensor::Tensor> attn_src_;  // per head: out_per_head x 1
  std::vector<tensor::Tensor> attn_dst_;  // per head: out_per_head x 1
  mutable std::vector<la::Matrix> last_attention_;
};

/// Configuration of a GAT stack.
struct GatConfig {
  /// Hidden layer widths per head; each entry adds one multi-head layer.
  std::vector<int> hidden_per_head = {16};
  int num_heads = 4;
  /// Output embedding width (single-head final layer per the paper).
  int out_features = 16;
  nn::Activation hidden_activation = nn::Activation::kRelu;
  /// Dropout applied to attention coefficients during training.
  double attention_dropout = 0.0;
  double leaky_relu_alpha = 0.2;
};

/// A stack of GatLayers: multi-head concatenating hidden layers followed by
/// one single-head output layer (paper: "The final output layer of GAT is a
/// single attention head layer").
class GatNetwork {
 public:
  GatNetwork(int in_features, const GatConfig& config, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x, const la::Matrix& mask,
                         bool training = false,
                         Rng* dropout_rng = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const;

  int in_features() const { return in_features_; }
  int out_features() const { return config_.out_features; }
  const std::vector<GatLayer>& layers() const { return layers_; }

 private:
  int in_features_;
  GatConfig config_;
  std::vector<GatLayer> layers_;
};

}  // namespace ams::gnn

#endif  // AMS_GNN_GAT_H_
