#include "gnn/gcn.h"

#include <cmath>

namespace ams::gnn {

using la::Matrix;
using tensor::Tensor;

Matrix NormalizedAdjacency(const Matrix& mask) {
  AMS_DCHECK(mask.rows() == mask.cols(), "mask must be square");
  const int n = mask.rows();
  std::vector<double> inv_sqrt_degree(n);
  for (int i = 0; i < n; ++i) {
    double degree = 0.0;
    for (int j = 0; j < n; ++j) degree += mask(i, j) != 0.0 ? 1.0 : 0.0;
    AMS_DCHECK(degree > 0.0, "isolated node without self-loop");
    inv_sqrt_degree[i] = 1.0 / std::sqrt(degree);
  }
  Matrix a_hat(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (mask(i, j) != 0.0) {
        a_hat(i, j) = inv_sqrt_degree[i] * inv_sqrt_degree[j];
      }
    }
  }
  return a_hat;
}

GcnLayer::GcnLayer(int in_features, int out_features,
                   nn::Activation activation, Rng* rng)
    : layer_(in_features, out_features, activation, rng) {}

Tensor GcnLayer::Forward(const Tensor& x, const Matrix& a_hat) const {
  Tensor aggregated = tensor::MatMul(Tensor::Constant(a_hat), x);
  return layer_.Forward(aggregated);
}

std::vector<Tensor> GcnLayer::Parameters() const {
  return layer_.Parameters();
}

GcnNetwork::GcnNetwork(int in_features, const std::vector<int>& hidden,
                       int out_features, Rng* rng) {
  int width = in_features;
  for (int h : hidden) {
    layers_.emplace_back(width, h, nn::Activation::kRelu, rng);
    width = h;
  }
  layers_.emplace_back(width, out_features, nn::Activation::kNone, rng);
}

Tensor GcnNetwork::Forward(const Tensor& x, const Matrix& mask) const {
  if (!cached_mask_.same_shape(mask) || !(cached_mask_ == mask)) {
    cached_mask_ = mask;
    cached_a_hat_ = NormalizedAdjacency(mask);
  }
  Tensor h = x;
  for (const GcnLayer& layer : layers_) {
    h = layer.Forward(h, cached_a_hat_);
  }
  return h;
}

std::vector<Tensor> GcnNetwork::Parameters() const {
  std::vector<Tensor> params;
  for (const GcnLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace ams::gnn
