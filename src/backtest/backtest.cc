#include "backtest/backtest.h"

#include <algorithm>
#include <cmath>

#include "la/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace ams::backtest {

Backtester::Backtester(const data::Panel* panel, const BacktestConfig& config)
    : panel_(panel), config_(config) {
  AMS_DCHECK(panel != nullptr, "null panel");
  AMS_DCHECK(config.holding_days >= 2, "holding window too short");
}

double Backtester::BucketRatio(double market_cap_billions) const {
  if (market_cap_billions < config_.small_cap_boundary) {
    return config_.bucket_ratios[0];
  }
  if (market_cap_billions < config_.large_cap_boundary) {
    return config_.bucket_ratios[1];
  }
  return config_.bucket_ratios[2];
}

std::vector<double> Backtester::CompanyPath(int test_quarter,
                                            int company) const {
  // Deterministic per (seed, quarter, company): every model sees the same
  // market.
  uint64_t stream = config_.seed;
  stream = SplitMix64(&stream) ^ (0x9E3779B97F4A7C15ULL *
                                  static_cast<uint64_t>(test_quarter + 1));
  stream ^= 0xC2B2AE3D27D4EB4FULL * static_cast<uint64_t>(company + 1);
  Rng rng(stream);

  const data::CompanyQuarter& cq =
      panel_->companies[company].quarters[test_quarter];
  const double relative_surprise =
      std::clamp(cq.UnexpectedRevenue() / cq.consensus,
                 -config_.max_relative_surprise,
                 config_.max_relative_surprise);
  // The revenue report lands somewhere in the first half of the window.
  const int announce_day = 3 + static_cast<int>(rng.UniformInt(
                                   config_.holding_days / 2));

  std::vector<double> returns(config_.holding_days);
  for (int d = 0; d < config_.holding_days; ++d) {
    double r = config_.market_drift + rng.Normal(0.0, config_.daily_vol);
    if (d == announce_day) {
      r += config_.jump_scale * relative_surprise +
           rng.Normal(0.0, config_.jump_noise);
    }
    returns[d] = r;
  }
  return returns;
}

Result<BacktestResult> Backtester::Run(
    const std::vector<QuarterPositions>& quarters) const {
  if (quarters.empty()) {
    return Status::InvalidArgument("no quarters to trade");
  }
  BacktestResult result;
  result.asset_curve.push_back(1.0);
  double asset = 1.0;
  double peak = 1.0;

  obs::Counter& turnover_counter =
      obs::MetricsRegistry::Get().GetCounter("backtest/turnover_positions");
  for (const QuarterPositions& quarter : quarters) {
    AMS_TRACE_SPAN("backtest/quarter");
    if (quarter.predicted_ur.size() != quarter.meta.size() ||
        quarter.meta.empty()) {
      return Status::InvalidArgument("misaligned quarter positions");
    }
    if (quarter.test_quarter < 0 ||
        quarter.test_quarter >= panel_->num_quarters) {
      return Status::OutOfRange("test quarter outside the panel");
    }
    // Position weights: bucket ratio normalized over the quarter's book,
    // signed by the predicted surprise direction.
    const size_t n = quarter.meta.size();
    std::vector<double> weight(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weight[i] = BucketRatio(quarter.meta[i].market_cap);
      total += weight[i];
    }
    std::vector<double> sign(n);
    for (size_t i = 0; i < n; ++i) {
      weight[i] /= total;
      sign[i] = quarter.predicted_ur[i] >= 0.0 ? 1.0 : -1.0;
    }
    std::vector<std::vector<double>> paths(n);
    for (size_t i = 0; i < n; ++i) {
      paths[i] = CompanyPath(quarter.test_quarter, quarter.meta[i].company);
    }
    // Every quarterly rebalance enters/exits each book position once.
    turnover_counter.Add(static_cast<uint64_t>(n));

    const double quarter_start_asset = asset;
    for (int d = 0; d < config_.holding_days; ++d) {
      double portfolio_return = 0.0;
      for (size_t i = 0; i < n; ++i) {
        portfolio_return += weight[i] * sign[i] * paths[i][d];
      }
      asset *= 1.0 + portfolio_return;
      result.daily_returns.push_back(portfolio_return);
      result.asset_curve.push_back(asset);
      peak = std::max(peak, asset);
    }
    result.quarter_returns_pct.push_back(
        100.0 * (asset / quarter_start_asset - 1.0));
  }

  result.earning_pct = 100.0 * (asset - 1.0);
  double mdd = 0.0;
  double running_peak = result.asset_curve[0];
  for (double value : result.asset_curve) {
    running_peak = std::max(running_peak, value);
    mdd = std::max(mdd, (running_peak - value) / running_peak);
  }
  result.mdd_pct = 100.0 * mdd;
  return result;
}

Result<double> SharpeVsReference(const std::vector<double>& model_daily,
                                 const std::vector<double>& reference_daily) {
  if (model_daily.size() != reference_daily.size() || model_daily.size() < 2) {
    return Status::InvalidArgument("daily return series mismatch");
  }
  std::vector<double> excess(model_daily.size());
  for (size_t i = 0; i < model_daily.size(); ++i) {
    excess[i] = model_daily[i] - reference_daily[i];
  }
  const double sd = la::SampleStdDev(excess);
  if (sd == 0.0) {
    return Status::ComputeError("zero-variance excess return");
  }
  return la::Mean(excess) / sd;
}

Result<double> AverageExcessReturn(
    const std::vector<double>& model_quarter_returns_pct,
    const std::vector<double>& reference_quarter_returns_pct) {
  if (model_quarter_returns_pct.size() !=
          reference_quarter_returns_pct.size() ||
      model_quarter_returns_pct.empty()) {
    return Status::InvalidArgument("quarter return series mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < model_quarter_returns_pct.size(); ++i) {
    total +=
        model_quarter_returns_pct[i] - reference_quarter_returns_pct[i];
  }
  return total / model_quarter_returns_pct.size();
}

}  // namespace ams::backtest
