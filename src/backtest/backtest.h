// Trading backtest of paper §IV-F: long/short positions taken at fiscal
// quarter end from the sign of the predicted unexpected revenue, held for
// one month, capital split 1:2:3 across market-cap buckets (< 1B, 1-10B,
// > 10B).
//
// Real daily prices are proprietary, so a MarketSimulator generates them
// (DESIGN.md §1): geometric daily noise plus an announcement-day jump
// proportional to the *actual* unexpected revenue — the documented empirical
// link between revenue surprises and abnormal returns the paper's strategy
// monetizes. Price paths depend only on (panel, seed), never on a model, so
// every model trades identical markets and differences come solely from
// position signs.
#ifndef AMS_BACKTEST_BACKTEST_H_
#define AMS_BACKTEST_BACKTEST_H_

#include <cstdint>
#include <vector>

#include "data/features.h"
#include "data/panel.h"
#include "util/status.h"

namespace ams::backtest {

struct BacktestConfig {
  /// Trading days per holding window ("sell them a month later").
  int holding_days = 21;
  /// Daily idiosyncratic return volatility.
  double daily_vol = 0.012;
  /// Common market drift per day.
  double market_drift = 0.0002;
  /// Announcement-day jump = jump_scale * (actual UR / consensus), clipped.
  double jump_scale = 1.2;
  /// Clip for the relative surprise feeding the jump.
  double max_relative_surprise = 0.15;
  /// Noise added to the jump (surprise != pure price reaction).
  double jump_noise = 0.01;
  /// Market-cap bucket boundaries (billions) and money ratios (paper: 1:2:3).
  double small_cap_boundary = 1.0;
  double large_cap_boundary = 10.0;
  double bucket_ratios[3] = {1.0, 2.0, 3.0};
  uint64_t seed = 42;
};

/// One quarter's positions for one model: predictions aligned with `meta`.
struct QuarterPositions {
  int test_quarter = 0;
  std::vector<double> predicted_ur;
  std::vector<data::SampleMeta> meta;
};

struct BacktestResult {
  /// Daily portfolio value, starting at 1.0 (index 0 = period start).
  std::vector<double> asset_curve;
  std::vector<double> daily_returns;
  /// Per-quarter window return (%), used for the AER comparison.
  std::vector<double> quarter_returns_pct;
  double earning_pct = 0.0;  // total return over the trading period
  double mdd_pct = 0.0;      // max drawdown relative to the running peak
};

/// Simulates one model's strategy over consecutive test quarters.
class Backtester {
 public:
  Backtester(const data::Panel* panel, const BacktestConfig& config);

  /// Runs the long/short strategy. All quarters must carry one sample per
  /// company. Deterministic: same panel + seed => same price paths.
  Result<BacktestResult> Run(
      const std::vector<QuarterPositions>& quarters) const;

  /// Capital weight for a company (bucket ratio before normalization).
  double BucketRatio(double market_cap_billions) const;

  /// The simulated daily returns of company `company` in the window of
  /// `test_quarter` (exposed for tests).
  std::vector<double> CompanyPath(int test_quarter, int company) const;

 private:
  const data::Panel* panel_;
  BacktestConfig config_;
};

/// Paper's Sharpe Ratio: AVG(R_B - R_ref) / STD(R_B - R_ref) over daily
/// returns; negative means strategy B earns no excess return over the
/// reference (AMS).
Result<double> SharpeVsReference(const std::vector<double>& model_daily,
                                 const std::vector<double>& reference_daily);

/// Average Excess Return: mean over quarters of (model quarter return -
/// reference quarter return), in percent.
Result<double> AverageExcessReturn(
    const std::vector<double>& model_quarter_returns_pct,
    const std::vector<double>& reference_quarter_returns_pct);

}  // namespace ams::backtest

#endif  // AMS_BACKTEST_BACKTEST_H_
