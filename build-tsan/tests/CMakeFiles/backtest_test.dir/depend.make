# Empty dependencies file for backtest_test.
# This may be replaced when dependencies are built.
