file(REMOVE_RECURSE
  "CMakeFiles/nn_optim_test.dir/nn_optim_test.cc.o"
  "CMakeFiles/nn_optim_test.dir/nn_optim_test.cc.o.d"
  "nn_optim_test"
  "nn_optim_test.pdb"
  "nn_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
