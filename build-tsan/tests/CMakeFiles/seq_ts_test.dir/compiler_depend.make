# Empty compiler generated dependencies file for seq_ts_test.
# This may be replaced when dependencies are built.
