file(REMOVE_RECURSE
  "CMakeFiles/seq_ts_test.dir/seq_ts_test.cc.o"
  "CMakeFiles/seq_ts_test.dir/seq_ts_test.cc.o.d"
  "seq_ts_test"
  "seq_ts_test.pdb"
  "seq_ts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_ts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
