file(REMOVE_RECURSE
  "CMakeFiles/autograd_property_test.dir/autograd_property_test.cc.o"
  "CMakeFiles/autograd_property_test.dir/autograd_property_test.cc.o.d"
  "autograd_property_test"
  "autograd_property_test.pdb"
  "autograd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
