file(REMOVE_RECURSE
  "CMakeFiles/panel_io_test.dir/panel_io_test.cc.o"
  "CMakeFiles/panel_io_test.dir/panel_io_test.cc.o.d"
  "panel_io_test"
  "panel_io_test.pdb"
  "panel_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panel_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
