# Empty dependencies file for panel_io_test.
# This may be replaced when dependencies are built.
