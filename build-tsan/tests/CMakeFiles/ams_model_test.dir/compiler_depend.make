# Empty compiler generated dependencies file for ams_model_test.
# This may be replaced when dependencies are built.
