file(REMOVE_RECURSE
  "CMakeFiles/ams_model_test.dir/ams_model_test.cc.o"
  "CMakeFiles/ams_model_test.dir/ams_model_test.cc.o.d"
  "ams_model_test"
  "ams_model_test.pdb"
  "ams_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
