file(REMOVE_RECURSE
  "CMakeFiles/generator_property_test.dir/generator_property_test.cc.o"
  "CMakeFiles/generator_property_test.dir/generator_property_test.cc.o.d"
  "generator_property_test"
  "generator_property_test.pdb"
  "generator_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
