# Empty dependencies file for generator_property_test.
# This may be replaced when dependencies are built.
