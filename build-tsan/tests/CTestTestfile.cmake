# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/la_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tensor_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nn_optim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/graph_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gnn_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/linear_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gbdt_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/seq_ts_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/data_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/backtest_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ams_model_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/models_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/obs_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/panel_io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/autograd_property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/generator_property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
