# Empty compiler generated dependencies file for table3_alt_ablation.
# This may be replaced when dependencies are built.
