# Empty dependencies file for ablation_ams_components.
# This may be replaced when dependencies are built.
