file(REMOVE_RECURSE
  "CMakeFiles/ablation_ams_components.dir/ablation_ams_components.cc.o"
  "CMakeFiles/ablation_ams_components.dir/ablation_ams_components.cc.o.d"
  "ablation_ams_components"
  "ablation_ams_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ams_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
