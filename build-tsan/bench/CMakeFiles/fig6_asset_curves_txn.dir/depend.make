# Empty dependencies file for fig6_asset_curves_txn.
# This may be replaced when dependencies are built.
