file(REMOVE_RECURSE
  "CMakeFiles/fig6_asset_curves_txn.dir/fig6_asset_curves_txn.cc.o"
  "CMakeFiles/fig6_asset_curves_txn.dir/fig6_asset_curves_txn.cc.o.d"
  "fig6_asset_curves_txn"
  "fig6_asset_curves_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_asset_curves_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
