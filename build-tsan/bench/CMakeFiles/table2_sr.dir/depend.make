# Empty dependencies file for table2_sr.
# This may be replaced when dependencies are built.
