file(REMOVE_RECURSE
  "CMakeFiles/table2_sr.dir/table2_sr.cc.o"
  "CMakeFiles/table2_sr.dir/table2_sr.cc.o.d"
  "table2_sr"
  "table2_sr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
