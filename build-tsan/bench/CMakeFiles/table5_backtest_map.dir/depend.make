# Empty dependencies file for table5_backtest_map.
# This may be replaced when dependencies are built.
