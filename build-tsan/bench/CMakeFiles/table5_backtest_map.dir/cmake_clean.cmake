file(REMOVE_RECURSE
  "CMakeFiles/table5_backtest_map.dir/table5_backtest_map.cc.o"
  "CMakeFiles/table5_backtest_map.dir/table5_backtest_map.cc.o.d"
  "table5_backtest_map"
  "table5_backtest_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_backtest_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
