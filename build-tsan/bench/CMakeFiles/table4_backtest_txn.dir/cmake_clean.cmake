file(REMOVE_RECURSE
  "CMakeFiles/table4_backtest_txn.dir/table4_backtest_txn.cc.o"
  "CMakeFiles/table4_backtest_txn.dir/table4_backtest_txn.cc.o.d"
  "table4_backtest_txn"
  "table4_backtest_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_backtest_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
