# Empty compiler generated dependencies file for table4_backtest_txn.
# This may be replaced when dependencies are built.
