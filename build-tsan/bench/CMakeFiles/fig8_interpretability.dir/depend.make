# Empty dependencies file for fig8_interpretability.
# This may be replaced when dependencies are built.
