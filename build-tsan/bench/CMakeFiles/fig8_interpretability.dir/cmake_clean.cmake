file(REMOVE_RECURSE
  "CMakeFiles/fig8_interpretability.dir/fig8_interpretability.cc.o"
  "CMakeFiles/fig8_interpretability.dir/fig8_interpretability.cc.o.d"
  "fig8_interpretability"
  "fig8_interpretability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
