# Empty dependencies file for table1_ba.
# This may be replaced when dependencies are built.
