file(REMOVE_RECURSE
  "CMakeFiles/table1_ba.dir/table1_ba.cc.o"
  "CMakeFiles/table1_ba.dir/table1_ba.cc.o.d"
  "table1_ba"
  "table1_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
