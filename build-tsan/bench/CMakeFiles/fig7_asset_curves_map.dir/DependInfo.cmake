
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_asset_curves_map.cc" "bench/CMakeFiles/fig7_asset_curves_map.dir/fig7_asset_curves_map.cc.o" "gcc" "bench/CMakeFiles/fig7_asset_curves_map.dir/fig7_asset_curves_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/models/CMakeFiles/ams_models.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/backtest/CMakeFiles/ams_backtest.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ams/CMakeFiles/ams_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gnn/CMakeFiles/ams_gnn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/ams_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gbdt/CMakeFiles/ams_gbdt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linear/CMakeFiles/ams_linear.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/metrics/CMakeFiles/ams_metrics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optim/CMakeFiles/ams_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seq/CMakeFiles/ams_seq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/ams_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/ams_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ts/CMakeFiles/ams_ts.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/ams_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/ams_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/ams_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
