# Empty dependencies file for fig7_asset_curves_map.
# This may be replaced when dependencies are built.
