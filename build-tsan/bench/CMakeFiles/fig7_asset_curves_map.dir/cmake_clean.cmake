file(REMOVE_RECURSE
  "CMakeFiles/fig7_asset_curves_map.dir/fig7_asset_curves_map.cc.o"
  "CMakeFiles/fig7_asset_curves_map.dir/fig7_asset_curves_map.cc.o.d"
  "fig7_asset_curves_map"
  "fig7_asset_curves_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_asset_curves_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
