# Empty dependencies file for fig5_cv_schedule.
# This may be replaced when dependencies are built.
