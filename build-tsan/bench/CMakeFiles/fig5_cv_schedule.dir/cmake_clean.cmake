file(REMOVE_RECURSE
  "CMakeFiles/fig5_cv_schedule.dir/fig5_cv_schedule.cc.o"
  "CMakeFiles/fig5_cv_schedule.dir/fig5_cv_schedule.cc.o.d"
  "fig5_cv_schedule"
  "fig5_cv_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cv_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
