# Empty compiler generated dependencies file for ams_optim.
# This may be replaced when dependencies are built.
