file(REMOVE_RECURSE
  "CMakeFiles/ams_optim.dir/optimizer.cc.o"
  "CMakeFiles/ams_optim.dir/optimizer.cc.o.d"
  "libams_optim.a"
  "libams_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
