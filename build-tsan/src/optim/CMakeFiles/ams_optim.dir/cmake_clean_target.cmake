file(REMOVE_RECURSE
  "libams_optim.a"
)
