# Empty dependencies file for ams_la.
# This may be replaced when dependencies are built.
