file(REMOVE_RECURSE
  "CMakeFiles/ams_la.dir/matrix.cc.o"
  "CMakeFiles/ams_la.dir/matrix.cc.o.d"
  "CMakeFiles/ams_la.dir/stats.cc.o"
  "CMakeFiles/ams_la.dir/stats.cc.o.d"
  "libams_la.a"
  "libams_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
