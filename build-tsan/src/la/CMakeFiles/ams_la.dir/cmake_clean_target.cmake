file(REMOVE_RECURSE
  "libams_la.a"
)
