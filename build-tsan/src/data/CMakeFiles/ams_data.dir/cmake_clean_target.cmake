file(REMOVE_RECURSE
  "libams_data.a"
)
