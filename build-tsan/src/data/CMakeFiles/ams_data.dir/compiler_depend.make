# Empty compiler generated dependencies file for ams_data.
# This may be replaced when dependencies are built.
