file(REMOVE_RECURSE
  "CMakeFiles/ams_data.dir/cv.cc.o"
  "CMakeFiles/ams_data.dir/cv.cc.o.d"
  "CMakeFiles/ams_data.dir/features.cc.o"
  "CMakeFiles/ams_data.dir/features.cc.o.d"
  "CMakeFiles/ams_data.dir/generator.cc.o"
  "CMakeFiles/ams_data.dir/generator.cc.o.d"
  "CMakeFiles/ams_data.dir/panel.cc.o"
  "CMakeFiles/ams_data.dir/panel.cc.o.d"
  "CMakeFiles/ams_data.dir/panel_io.cc.o"
  "CMakeFiles/ams_data.dir/panel_io.cc.o.d"
  "libams_data.a"
  "libams_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
