
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cv.cc" "src/data/CMakeFiles/ams_data.dir/cv.cc.o" "gcc" "src/data/CMakeFiles/ams_data.dir/cv.cc.o.d"
  "/root/repo/src/data/features.cc" "src/data/CMakeFiles/ams_data.dir/features.cc.o" "gcc" "src/data/CMakeFiles/ams_data.dir/features.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/ams_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/ams_data.dir/generator.cc.o.d"
  "/root/repo/src/data/panel.cc" "src/data/CMakeFiles/ams_data.dir/panel.cc.o" "gcc" "src/data/CMakeFiles/ams_data.dir/panel.cc.o.d"
  "/root/repo/src/data/panel_io.cc" "src/data/CMakeFiles/ams_data.dir/panel_io.cc.o" "gcc" "src/data/CMakeFiles/ams_data.dir/panel_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/la/CMakeFiles/ams_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
