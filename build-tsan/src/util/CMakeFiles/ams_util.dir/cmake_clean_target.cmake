file(REMOVE_RECURSE
  "libams_util.a"
)
