file(REMOVE_RECURSE
  "CMakeFiles/ams_util.dir/csv.cc.o"
  "CMakeFiles/ams_util.dir/csv.cc.o.d"
  "CMakeFiles/ams_util.dir/logging.cc.o"
  "CMakeFiles/ams_util.dir/logging.cc.o.d"
  "CMakeFiles/ams_util.dir/rng.cc.o"
  "CMakeFiles/ams_util.dir/rng.cc.o.d"
  "CMakeFiles/ams_util.dir/status.cc.o"
  "CMakeFiles/ams_util.dir/status.cc.o.d"
  "CMakeFiles/ams_util.dir/string_util.cc.o"
  "CMakeFiles/ams_util.dir/string_util.cc.o.d"
  "libams_util.a"
  "libams_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
