# Empty dependencies file for ams_util.
# This may be replaced when dependencies are built.
