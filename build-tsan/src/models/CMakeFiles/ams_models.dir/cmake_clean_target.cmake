file(REMOVE_RECURSE
  "libams_models.a"
)
