# Empty compiler generated dependencies file for ams_models.
# This may be replaced when dependencies are built.
