file(REMOVE_RECURSE
  "CMakeFiles/ams_models.dir/ams_regressor.cc.o"
  "CMakeFiles/ams_models.dir/ams_regressor.cc.o.d"
  "CMakeFiles/ams_models.dir/baselines.cc.o"
  "CMakeFiles/ams_models.dir/baselines.cc.o.d"
  "CMakeFiles/ams_models.dir/experiment.cc.o"
  "CMakeFiles/ams_models.dir/experiment.cc.o.d"
  "CMakeFiles/ams_models.dir/hpo.cc.o"
  "CMakeFiles/ams_models.dir/hpo.cc.o.d"
  "CMakeFiles/ams_models.dir/neural.cc.o"
  "CMakeFiles/ams_models.dir/neural.cc.o.d"
  "CMakeFiles/ams_models.dir/zoo.cc.o"
  "CMakeFiles/ams_models.dir/zoo.cc.o.d"
  "libams_models.a"
  "libams_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
