# CMake generated Testfile for 
# Source directory: /root/repo/src/backtest
# Build directory: /root/repo/build-tsan/src/backtest
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
