file(REMOVE_RECURSE
  "CMakeFiles/ams_backtest.dir/backtest.cc.o"
  "CMakeFiles/ams_backtest.dir/backtest.cc.o.d"
  "libams_backtest.a"
  "libams_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
