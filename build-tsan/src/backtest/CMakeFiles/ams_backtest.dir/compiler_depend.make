# Empty compiler generated dependencies file for ams_backtest.
# This may be replaced when dependencies are built.
