file(REMOVE_RECURSE
  "libams_backtest.a"
)
