file(REMOVE_RECURSE
  "libams_ts.a"
)
