# Empty compiler generated dependencies file for ams_ts.
# This may be replaced when dependencies are built.
