file(REMOVE_RECURSE
  "CMakeFiles/ams_ts.dir/arima.cc.o"
  "CMakeFiles/ams_ts.dir/arima.cc.o.d"
  "libams_ts.a"
  "libams_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
