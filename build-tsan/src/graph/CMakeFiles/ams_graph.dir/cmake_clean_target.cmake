file(REMOVE_RECURSE
  "libams_graph.a"
)
