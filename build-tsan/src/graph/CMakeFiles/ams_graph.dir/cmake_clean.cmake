file(REMOVE_RECURSE
  "CMakeFiles/ams_graph.dir/company_graph.cc.o"
  "CMakeFiles/ams_graph.dir/company_graph.cc.o.d"
  "libams_graph.a"
  "libams_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
