# Empty compiler generated dependencies file for ams_graph.
# This may be replaced when dependencies are built.
