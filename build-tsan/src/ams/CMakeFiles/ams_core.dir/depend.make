# Empty dependencies file for ams_core.
# This may be replaced when dependencies are built.
