file(REMOVE_RECURSE
  "libams_core.a"
)
