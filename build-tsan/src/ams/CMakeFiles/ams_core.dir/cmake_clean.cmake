file(REMOVE_RECURSE
  "CMakeFiles/ams_core.dir/ams_model.cc.o"
  "CMakeFiles/ams_core.dir/ams_model.cc.o.d"
  "libams_core.a"
  "libams_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
