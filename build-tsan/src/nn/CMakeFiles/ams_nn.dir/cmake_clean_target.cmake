file(REMOVE_RECURSE
  "libams_nn.a"
)
