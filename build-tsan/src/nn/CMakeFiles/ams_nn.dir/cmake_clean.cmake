file(REMOVE_RECURSE
  "CMakeFiles/ams_nn.dir/dense.cc.o"
  "CMakeFiles/ams_nn.dir/dense.cc.o.d"
  "CMakeFiles/ams_nn.dir/init.cc.o"
  "CMakeFiles/ams_nn.dir/init.cc.o.d"
  "libams_nn.a"
  "libams_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
