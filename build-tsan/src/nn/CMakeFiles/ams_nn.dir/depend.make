# Empty dependencies file for ams_nn.
# This may be replaced when dependencies are built.
