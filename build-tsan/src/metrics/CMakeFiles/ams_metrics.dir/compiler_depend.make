# Empty compiler generated dependencies file for ams_metrics.
# This may be replaced when dependencies are built.
