file(REMOVE_RECURSE
  "CMakeFiles/ams_metrics.dir/metrics.cc.o"
  "CMakeFiles/ams_metrics.dir/metrics.cc.o.d"
  "libams_metrics.a"
  "libams_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
