file(REMOVE_RECURSE
  "libams_metrics.a"
)
