# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("la")
subdirs("tensor")
subdirs("nn")
subdirs("optim")
subdirs("graph")
subdirs("gnn")
subdirs("linear")
subdirs("gbdt")
subdirs("seq")
subdirs("ts")
subdirs("data")
subdirs("metrics")
subdirs("backtest")
subdirs("ams")
subdirs("models")
