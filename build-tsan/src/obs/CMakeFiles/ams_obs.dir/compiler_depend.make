# Empty compiler generated dependencies file for ams_obs.
# This may be replaced when dependencies are built.
