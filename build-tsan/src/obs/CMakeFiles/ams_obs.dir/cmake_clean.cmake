file(REMOVE_RECURSE
  "CMakeFiles/ams_obs.dir/metrics.cc.o"
  "CMakeFiles/ams_obs.dir/metrics.cc.o.d"
  "CMakeFiles/ams_obs.dir/report.cc.o"
  "CMakeFiles/ams_obs.dir/report.cc.o.d"
  "CMakeFiles/ams_obs.dir/trace.cc.o"
  "CMakeFiles/ams_obs.dir/trace.cc.o.d"
  "libams_obs.a"
  "libams_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
