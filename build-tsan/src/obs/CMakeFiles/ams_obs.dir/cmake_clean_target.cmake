file(REMOVE_RECURSE
  "libams_obs.a"
)
