# Empty compiler generated dependencies file for ams_linear.
# This may be replaced when dependencies are built.
