file(REMOVE_RECURSE
  "libams_linear.a"
)
