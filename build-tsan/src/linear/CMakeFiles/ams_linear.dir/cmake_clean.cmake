file(REMOVE_RECURSE
  "CMakeFiles/ams_linear.dir/linear_model.cc.o"
  "CMakeFiles/ams_linear.dir/linear_model.cc.o.d"
  "libams_linear.a"
  "libams_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
