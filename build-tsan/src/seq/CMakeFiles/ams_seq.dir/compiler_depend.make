# Empty compiler generated dependencies file for ams_seq.
# This may be replaced when dependencies are built.
