file(REMOVE_RECURSE
  "libams_seq.a"
)
