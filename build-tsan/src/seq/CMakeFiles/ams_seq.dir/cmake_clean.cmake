file(REMOVE_RECURSE
  "CMakeFiles/ams_seq.dir/recurrent.cc.o"
  "CMakeFiles/ams_seq.dir/recurrent.cc.o.d"
  "libams_seq.a"
  "libams_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
