file(REMOVE_RECURSE
  "libams_gbdt.a"
)
