# Empty compiler generated dependencies file for ams_gbdt.
# This may be replaced when dependencies are built.
