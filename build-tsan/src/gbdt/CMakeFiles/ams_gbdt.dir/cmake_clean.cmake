file(REMOVE_RECURSE
  "CMakeFiles/ams_gbdt.dir/gbdt.cc.o"
  "CMakeFiles/ams_gbdt.dir/gbdt.cc.o.d"
  "libams_gbdt.a"
  "libams_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
