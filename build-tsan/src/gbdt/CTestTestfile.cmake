# CMake generated Testfile for 
# Source directory: /root/repo/src/gbdt
# Build directory: /root/repo/build-tsan/src/gbdt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
