
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/gat.cc" "src/gnn/CMakeFiles/ams_gnn.dir/gat.cc.o" "gcc" "src/gnn/CMakeFiles/ams_gnn.dir/gat.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/gnn/CMakeFiles/ams_gnn.dir/gcn.cc.o" "gcc" "src/gnn/CMakeFiles/ams_gnn.dir/gcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/ams_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/ams_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/ams_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/ams_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
