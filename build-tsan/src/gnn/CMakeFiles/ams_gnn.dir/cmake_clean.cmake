file(REMOVE_RECURSE
  "CMakeFiles/ams_gnn.dir/gat.cc.o"
  "CMakeFiles/ams_gnn.dir/gat.cc.o.d"
  "CMakeFiles/ams_gnn.dir/gcn.cc.o"
  "CMakeFiles/ams_gnn.dir/gcn.cc.o.d"
  "libams_gnn.a"
  "libams_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
