file(REMOVE_RECURSE
  "libams_gnn.a"
)
