# Empty compiler generated dependencies file for ams_gnn.
# This may be replaced when dependencies are built.
