# Empty compiler generated dependencies file for ams_tensor.
# This may be replaced when dependencies are built.
