file(REMOVE_RECURSE
  "CMakeFiles/ams_tensor.dir/tensor.cc.o"
  "CMakeFiles/ams_tensor.dir/tensor.cc.o.d"
  "libams_tensor.a"
  "libams_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
