file(REMOVE_RECURSE
  "libams_tensor.a"
)
