# Empty dependencies file for alt_data_value.
# This may be replaced when dependencies are built.
