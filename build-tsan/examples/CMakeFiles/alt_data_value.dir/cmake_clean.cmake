file(REMOVE_RECURSE
  "CMakeFiles/alt_data_value.dir/alt_data_value.cc.o"
  "CMakeFiles/alt_data_value.dir/alt_data_value.cc.o.d"
  "alt_data_value"
  "alt_data_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_data_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
