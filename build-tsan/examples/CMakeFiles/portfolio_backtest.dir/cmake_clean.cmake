file(REMOVE_RECURSE
  "CMakeFiles/portfolio_backtest.dir/portfolio_backtest.cc.o"
  "CMakeFiles/portfolio_backtest.dir/portfolio_backtest.cc.o.d"
  "portfolio_backtest"
  "portfolio_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
