// Standalone AMSNET1 serving binary: loads (or trains) an AMS model,
// serves it over the loopback socket front, and runs until SIGTERM/SIGINT.
//
// Usage: net_server_main [--artifact=path] [--port=0] [--watch=0]
//
//   --artifact=path  serve this AMSMODEL1 artifact; without it, a tiny
//                    model is trained on synthetic data (fast — intended
//                    for the check_serve.sh gate and local smoke tests)
//   --port=N         overrides AMS_SERVE_PORT
//   --watch=1        start the mtime reload watcher on the artifact path
//
// Admission control comes from the environment: AMS_SERVE_QUEUE (dispatch
// queue bound), AMS_SERVE_DEADLINE_MS (default per-request deadline),
// AMS_SERVE_WORKERS. Faults from AMS_FAULTS (conn_drop@accept,
// torn_frame@net_read, slow_peer@net_read, conn_drop@net_write) exercise
// the recovery paths. Telemetry per AMS_TELEMETRY / AMS_SLO.
//
// Prints one readiness line on stdout once serving:
//
//   AMSNET listening port=<N> rows=<R> cols=<C>
//
// so harnesses can parse the bound port and request shape, then SIGTERM
// the process for a clean drain (exit code 0). When AMS_ADMIN_PORT is set
// a second line follows with the introspection plane's bound port:
//
//   AMSADMIN port=<N>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "obs/report.h"
#include "serve/net_server.h"
#include "serve/server.h"
#include "util/string_util.h"

using namespace ams;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

core::AmsModel TrainTinyModel() {
  data::GeneratorConfig config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, 42);
  config.num_companies = 12;
  config.num_sectors = 3;
  data::Panel panel = data::GenerateMarket(config).MoveValue();
  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  data::Dataset train = builder.Build({4, 5}).MoveValue();
  data::Dataset valid = builder.Build({6}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  graph::CorrelationGraphOptions graph_options;
  graph_options.top_k = 3;
  graph::CompanyGraph graph =
      graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(4),
                                            graph_options)
          .MoveValue();
  core::AmsConfig cfg;
  cfg.node_transform_layers = {8};
  cfg.gat.hidden_per_head = {4};
  cfg.gat.num_heads = 2;
  cfg.gat.out_features = 4;
  cfg.generator_hidden = {8};
  cfg.max_epochs = 1;
  cfg.patience = 1;
  core::AmsModel model(cfg);
  model.Fit(train, valid, graph).Abort("fit tiny model");
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);

  const std::string artifact = GetFlag(argc, argv, "artifact", "");
  const int port_flag = GetFlagInt(argc, argv, "port", -1);
  const bool watch = GetFlagInt(argc, argv, "watch", 0) != 0;

  serve::InferenceServer inference;
  if (!artifact.empty()) {
    inference.LoadArtifact(artifact).Abort("load artifact");
    if (watch) inference.StartReloadWatcher(artifact).Abort("start watcher");
  } else {
    inference.LoadModel(TrainTinyModel()).Abort("load model");
  }

  serve::NetServerOptions options = serve::NetServerOptions::FromEnv();
  if (port_flag >= 0) options.port = port_flag;
  serve::NetServer server(&inference, options);
  server.Start().Abort("start net server");

  int rows = 0, cols = 0;
  inference.model_shape(&rows, &cols);
  std::printf("AMSNET listening port=%d rows=%d cols=%d\n", server.port(),
              rows, cols);
  if (server.admin_port() != 0) {
    std::printf("AMSADMIN port=%d\n", server.admin_port());
  }
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Clean drain: admitted requests are answered before sockets close.
  server.Stop();
  inference.StopReloadWatcher();
  return 0;
}
