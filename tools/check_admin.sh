#!/bin/sh
# Admin-plane gate: exercise the live introspection endpoints against a real
# net_server_main process, end to end:
#   * /metrics serves Prometheus text (serve_requests family present) and
#     /metrics.json, /varz, /tracez, /flightz all answer 200,
#   * /healthz flips to 503 under an injected AMS_SLO violation (open-loop
#     overload holds serve/net_queue_depth above its target) and recovers to
#     200 once the queue drains,
#   * a crashed server (SIGABRT) leaves a parseable flight-recorder dump
#     whose tail contains the last serve-request outcome events.
#
# Usage: check_admin.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_admin.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_admin.sh BUILD_DIR REPO_DIR}
cd "$BUILD_DIR"
NET_SERVER="$(pwd)/tools/net_server_main"
LOADGEN="$(pwd)/tools/loadgen"
ADMINCTL="$(pwd)/tools/adminctl"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SRV_OUT="$WORK/server.out"
FLIGHT="$WORK/flight.txt"

# Small queue + one worker so an open-loop overload reliably keeps the
# dispatch queue above the SLO target; the queue-depth gauge recovers the
# moment the overload stops, so /healthz can demonstrate both directions.
AMS_SERVE_QUEUE=8 AMS_SERVE_WORKERS=1 \
AMS_ADMIN_PORT=0 \
AMS_SLO="serve/net_queue_depth:<5" \
AMS_FLIGHT_RECORDER="$FLIGHT" \
  "$NET_SERVER" > "$SRV_OUT" 2> "$WORK/server.err" &
SRV_PID=$!

i=0
while ! grep -q 'AMSADMIN port=' "$SRV_OUT" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 300 ] && { echo "check_admin: server never became ready" >&2; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/^AMSNET listening port=\([0-9]*\).*/\1/p' "$SRV_OUT")
ADMIN_PORT=$(sed -n 's/^AMSADMIN port=\([0-9]*\).*/\1/p' "$SRV_OUT")
echo "check_admin: serve port=$PORT admin port=$ADMIN_PORT"

# --- Endpoint smoke: every route answers 200 with the expected shape -------
"$ADMINCTL" --port="$ADMIN_PORT" --path=/metrics > "$WORK/metrics.txt"
grep -q '^# TYPE ' "$WORK/metrics.txt" || {
  echo "check_admin: /metrics has no TYPE headers" >&2; exit 1; }
"$ADMINCTL" --port="$ADMIN_PORT" --path=/metrics.json > "$WORK/metrics.json.txt"
grep -q '"counters"' "$WORK/metrics.json.txt" || {
  echo "check_admin: /metrics.json missing counters object" >&2; exit 1; }
"$ADMINCTL" --port="$ADMIN_PORT" --path=/varz > "$WORK/varz.txt"
grep -q '"config_fingerprint"' "$WORK/varz.txt" || {
  echo "check_admin: /varz missing config_fingerprint" >&2; exit 1; }
grep -q '"AMS_SLO"' "$WORK/varz.txt" || {
  echo "check_admin: /varz missing AMS_SLO env row" >&2; exit 1; }
"$ADMINCTL" --port="$ADMIN_PORT" --path=/tracez > "$WORK/tracez.txt"
grep -q '"spans"' "$WORK/tracez.txt" || {
  echo "check_admin: /tracez missing spans array" >&2; exit 1; }
"$ADMINCTL" --port="$ADMIN_PORT" --path=/flightz > "$WORK/flightz.txt"
grep -q 'ams-flight-recorder-v1 reason=live' "$WORK/flightz.txt" || {
  echo "check_admin: /flightz missing dump header" >&2; exit 1; }
# Unknown paths and non-GET methods are clean 4xx, not hangs or crashes.
if "$ADMINCTL" --port="$ADMIN_PORT" --path=/nope > /dev/null; then
  echo "check_admin: /nope unexpectedly succeeded" >&2; exit 1
fi

# Healthy before load: no target violated.
"$ADMINCTL" --port="$ADMIN_PORT" --path=/healthz > "$WORK/healthz0.txt" || {
  echo "check_admin: /healthz not ok on an idle server" >&2
  cat "$WORK/healthz0.txt" >&2
  exit 1
}

# --- Injected SLO violation: /healthz must flip to 503 ---------------------
BASE=$("$LOADGEN" --port="$PORT" --mode=closed --concurrency=2 --duration_ms=1000)
BASE_RPS=$(echo "$BASE" | sed -n 's/.*rps=\([0-9.]*\).*/\1/p')
TARGET_RPS=$(awk "BEGIN { r = int(4 * $BASE_RPS); if (r < 50) r = 50; print r }")
"$LOADGEN" --port="$PORT" --mode=open --concurrency=16 \
  --rps="$TARGET_RPS" --duration_ms=8000 > "$WORK/overload.out" &
LOAD_PID=$!

UNHEALTHY=0
i=0
while [ "$i" -lt 70 ]; do
  i=$((i + 1))
  if "$ADMINCTL" --port="$ADMIN_PORT" --path=/healthz > "$WORK/healthz1.txt"
  then
    sleep 0.1
  else
    UNHEALTHY=1
    break
  fi
done
wait "$LOAD_PID" || { echo "check_admin: overload loadgen failed" >&2; exit 1; }
[ "$UNHEALTHY" -eq 1 ] || {
  echo "check_admin: /healthz never reported the injected SLO violation" >&2
  cat "$WORK/healthz1.txt" >&2
  exit 1
}
grep -q 'serve/net_queue_depth' "$WORK/healthz1.txt" || {
  echo "check_admin: unhealthy /healthz body lacks the violated target" >&2
  cat "$WORK/healthz1.txt" >&2
  exit 1
}

# --- Recovery: queue drains after the overload stops -> 200 again ----------
RECOVERED=0
i=0
while [ "$i" -lt 50 ]; do
  i=$((i + 1))
  if "$ADMINCTL" --port="$ADMIN_PORT" --path=/healthz > "$WORK/healthz2.txt"
  then
    RECOVERED=1
    break
  fi
  sleep 0.1
done
[ "$RECOVERED" -eq 1 ] || {
  echo "check_admin: /healthz never recovered after the overload" >&2
  cat "$WORK/healthz2.txt" >&2
  exit 1
}

# --- Crash-time flight recorder --------------------------------------------
kill -ABRT "$SRV_PID"
wait "$SRV_PID" && {
  echo "check_admin: server exited 0 despite SIGABRT" >&2; exit 1; } || true
[ -s "$FLIGHT" ] || { echo "check_admin: no flight dump at $FLIGHT" >&2; exit 1; }
head -1 "$FLIGHT" | grep -q '^ams-flight-recorder-v1 reason=signal:SIGABRT' || {
  echo "check_admin: flight dump header wrong:" >&2
  head -1 "$FLIGHT" >&2
  exit 1
}
grep -q ' serve_outcome ' "$FLIGHT" || {
  echo "check_admin: flight dump has no serve_outcome events" >&2; exit 1; }
# Every event line is parseable: "E <seq> <ts> <tid> <kind> <a> <b> ...".
awk '/^E / { if (NF < 7 || $2 !~ /^[0-9]+$/ || $3 !~ /^[0-9]+$/ ||
                 $4 !~ /^[0-9]+$/ || $6 !~ /^[0-9]+$/ || $7 !~ /^[0-9]+$/)
               { bad = 1 } }
     END { exit bad }' "$FLIGHT" || {
  echo "check_admin: malformed flight dump event line" >&2; exit 1; }
echo "check_admin: OK"
