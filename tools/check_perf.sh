#!/bin/sh
# Perf gate: rebuild the hot-path bench + diff tool in Release, run the
# GEMM/pool/fusion micro benches, and compare against the committed
# BENCH_par.json baseline through bench_diff. A regression beyond the
# threshold fails the gate; thread-scaling metrics are skipped automatically
# when this host's core count differs from the baseline host's (bench_diff
# reads context.num_cpus from both files).
#
# The threshold is deliberately loose (50%): these are microsecond-scale
# benches on shared CI hosts, and the gate exists to catch "the SIMD kernel
# stopped dispatching" or "the pool stopped reusing" — order-of-magnitude
# cliffs — not 5% jitter.
#
# Usage: check_perf.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_perf.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_perf.sh BUILD_DIR REPO_DIR}

# Perf numbers are only meaningful from an optimized, uninstrumented build.
# Under -DAMS_SANITIZE=... or a Debug configure, succeed without comparing
# so sanitizer ctest sweeps stay green.
CACHE="$BUILD_DIR/CMakeCache.txt"
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")
SANITIZE=$(sed -n 's/^AMS_SANITIZE:[^=]*=//p' "$CACHE")
# An empty cache entry means the top-level CMakeLists default (Release).
if [ -z "$BUILD_TYPE" ]; then BUILD_TYPE=Release; fi
if [ "$BUILD_TYPE" != "Release" ] || [ -n "$SANITIZE" ]; then
  echo "check_perf: skipped (build type '$BUILD_TYPE', sanitizer" \
       "'$SANITIZE' — perf gate needs a plain Release build)"
  exit 0
fi

cmake --build "$BUILD_DIR" --target micro_substrates bench_diff
BENCH_DIFF="$BUILD_DIR/tools/bench_diff"
BENCH="$BUILD_DIR/bench/micro_substrates"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BENCH" --benchmark_filter='Pool|Parallel|MatMul|Fused' \
  --benchmark_min_time=0.1 \
  --benchmark_out="$TMP/bench.json" --benchmark_out_format=json \
  > "$TMP/stdout.txt"

"$BENCH_DIFF" --check "$TMP/bench.json"
"$BENCH_DIFF" "$REPO_DIR/BENCH_par.json" "$TMP/bench.json" --threshold=0.5

echo "check_perf: OK"
