#!/bin/sh
# bench_diff self-test: identical inputs pass, an injected 20% regression
# fails with exit 1 at the default 10% threshold, a widened threshold
# passes again, and malformed input exits 2.
#
# Usage: test_bench_diff.sh BENCH_DIFF_BINARY
set -eu
BENCH_DIFF=${1:?usage: test_bench_diff.sh BENCH_DIFF_BINARY}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/base.json" <<'EOF'
{"benchmarks":[
  {"name":"BM_A","run_type":"iteration","real_time":100.0,"cpu_time":99.0},
  {"name":"BM_B","run_type":"iteration","real_time":50.0,"cpu_time":49.0},
  {"name":"BM_A_mean","run_type":"aggregate","real_time":100.0}
]}
EOF

# Identical inputs must pass, in both compare and --check mode.
"$BENCH_DIFF" "$TMP/base.json" "$TMP/base.json" > /dev/null
"$BENCH_DIFF" --check "$TMP/base.json" > /dev/null

# A 20% regression on BM_A must fail with exit 1 at the default threshold.
cat > "$TMP/regressed.json" <<'EOF'
{"benchmarks":[
  {"name":"BM_A","run_type":"iteration","real_time":120.0,"cpu_time":119.0},
  {"name":"BM_B","run_type":"iteration","real_time":50.0,"cpu_time":49.0}
]}
EOF
rc=0
"$BENCH_DIFF" "$TMP/base.json" "$TMP/regressed.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "test_bench_diff: FAIL - expected exit 1 on 20% regression, got $rc" >&2
  exit 1
fi

# Widening the threshold past the regression must pass again.
"$BENCH_DIFF" "$TMP/base.json" "$TMP/regressed.json" --threshold=0.25 \
  > /dev/null

# Malformed JSON must exit 2 (parse error, not a regression verdict).
printf '{"benchmarks":' > "$TMP/bad.json"
rc=0
"$BENCH_DIFF" --check "$TMP/bad.json" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "test_bench_diff: FAIL - expected exit 2 on malformed JSON, got $rc" >&2
  exit 1
fi

# Thread-scaling metrics (threads:N, N > 1) are skipped when the recorded
# host core counts differ — a regression there must NOT fail the gate —
# but single-thread metrics still compare, and the same metrics gate
# normally when the core counts match.
cat > "$TMP/host1.json" <<'EOF'
{"context":{"num_cpus":1},"benchmarks":[
  {"name":"BM_X/threads:1","run_type":"iteration","real_time":100.0},
  {"name":"BM_X/threads:16","run_type":"iteration","real_time":40.0}
]}
EOF
cat > "$TMP/host8.json" <<'EOF'
{"context":{"num_cpus":8},"benchmarks":[
  {"name":"BM_X/threads:1","run_type":"iteration","real_time":100.0},
  {"name":"BM_X/threads:16","run_type":"iteration","real_time":90.0}
]}
EOF
"$BENCH_DIFF" "$TMP/host1.json" "$TMP/host8.json" > /dev/null
sed 's/"num_cpus":8/"num_cpus":1/' "$TMP/host8.json" > "$TMP/samehost.json"
rc=0
"$BENCH_DIFF" "$TMP/host1.json" "$TMP/samehost.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "test_bench_diff: FAIL - expected exit 1 on same-host thread" \
       "regression, got $rc" >&2
  exit 1
fi
sed 's/"real_time":100.0/"real_time":150.0/' "$TMP/host8.json" \
  > "$TMP/host8_t1_regressed.json"
rc=0
"$BENCH_DIFF" "$TMP/host1.json" "$TMP/host8_t1_regressed.json" > /dev/null \
  || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "test_bench_diff: FAIL - threads:1 must still gate across hosts," \
       "got $rc" >&2
  exit 1
fi

# JSONL lint: valid stream passes, a corrupt line fails.
printf '{"seq":0}\n{"seq":1,"k":"v"}\n' > "$TMP/good.jsonl"
"$BENCH_DIFF" --lint-jsonl "$TMP/good.jsonl" --min-lines=2 --require=seq \
  > /dev/null
printf '{"seq":0}\nnot json\n' > "$TMP/bad.jsonl"
rc=0
"$BENCH_DIFF" --lint-jsonl "$TMP/bad.jsonl" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "test_bench_diff: FAIL - expected exit 1 on corrupt JSONL, got $rc" >&2
  exit 1
fi

echo "test_bench_diff: OK"
