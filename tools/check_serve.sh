#!/bin/sh
# Serving gate: run the serve-labeled test suite (golden parity, artifact
# round-trips, loader + frame fuzzing, hot reload under load), then exercise
# the network front end to end: start the socket server with a deliberately
# small admission queue, measure an uncontended baseline, drive an open-loop
# overload at 2x the measured capacity, and assert that
#   * overload produced real load shedding (shed > 0),
#   * every shed/deadline response was a clean status (error = transport = 0),
#   * the p99 of admitted requests stayed within 3x the uncontended baseline
#     (floor 20 ms absorbs timer noise on loaded CI hosts),
#   * the admin plane stays scrapeable mid-overload (/metrics and /healthz
#     answer 200 while the server sheds), and its final
#     serve_requests{outcome=...} counters exactly match the client-side
#     outcome counts loadgen observed (internally consistent snapshots),
#   * the telemetry JSONL carries the SLO "health" field,
#   * SIGTERM drains and exits 0.
# Finally verify the recorded serving + network benchmark baselines still
# parse through bench_diff. For the full guarantee, also run this from
# builds configured with -DAMS_SANITIZE=thread (reload/shutdown races) and
# -DAMS_SANITIZE=address (fuzzed decoder memory safety).
#
# Usage: check_serve.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_serve.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_serve.sh BUILD_DIR REPO_DIR}
cd "$BUILD_DIR"
BENCH_DIFF="$(pwd)/tools/bench_diff"
NET_SERVER="$(pwd)/tools/net_server_main"
LOADGEN="$(pwd)/tools/loadgen"
ADMINCTL="$(pwd)/tools/adminctl"
ctest -L serve --output-on-failure

"$BENCH_DIFF" --check "$REPO_DIR/BENCH_serve.json"
"$BENCH_DIFF" --check "$REPO_DIR/BENCH_net.json"

# --- Network front: overload + shedding + clean drain -----------------------
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SRV_OUT="$WORK/server.out"

AMS_SERVE_QUEUE=4 AMS_SERVE_WORKERS=2 \
AMS_ADMIN_PORT=0 \
AMS_TELEMETRY_INTERVAL_MS=200 AMS_TELEMETRY_FILE="$WORK/telemetry.jsonl" \
AMS_SLO="serve/shed_rate:<0.95" \
  "$NET_SERVER" > "$SRV_OUT" 2> "$WORK/server.err" &
SRV_PID=$!

i=0
while ! grep -q 'AMSADMIN port=' "$SRV_OUT" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 300 ] && { echo "check_serve: server never became ready" >&2; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/^AMSNET listening port=\([0-9]*\).*/\1/p' "$SRV_OUT")
ADMIN_PORT=$(sed -n 's/^AMSADMIN port=\([0-9]*\).*/\1/p' "$SRV_OUT")

# Uncontended baseline: closed loop, light concurrency.
BASE=$("$LOADGEN" --port="$PORT" --mode=closed --concurrency=2 \
       --duration_ms=2000 --json="$WORK/loadgen_base.json")
echo "$BASE" > "$WORK/loadgen_base.txt"
echo "baseline:  $BASE"
"$BENCH_DIFF" --check "$WORK/loadgen_base.json"
BASE_P99=$(echo "$BASE" | sed -n 's/.*p99_ms=\([0-9.]*\).*/\1/p')
BASE_RPS=$(echo "$BASE" | sed -n 's/.*rps=\([0-9.]*\).*/\1/p')

# Overload: open loop at 2x measured capacity for a smoke window. Runs in
# the background so the admin plane can be scraped mid-overload.
TARGET_RPS=$(awk "BEGIN { printf \"%d\", 2 * $BASE_RPS }")
"$LOADGEN" --port="$PORT" --mode=open --concurrency=16 \
  --rps="$TARGET_RPS" --duration_ms=5000 \
  --json="$WORK/loadgen_over.json" > "$WORK/overload.out" &
LOAD_PID=$!

# Mid-overload scrapes: both endpoints must answer 200 while the server is
# actively shedding (the introspection plane must not fall over with the
# thing it introspects).
sleep 2
"$ADMINCTL" --port="$ADMIN_PORT" --path=/metrics > "$WORK/metrics_mid.txt" || {
  echo "check_serve: /metrics scrape failed mid-overload" >&2; exit 1; }
grep -q '^serve_requests{' "$WORK/metrics_mid.txt" || {
  echo "check_serve: mid-overload /metrics lacks serve_requests family" >&2
  exit 1
}
"$ADMINCTL" --port="$ADMIN_PORT" --path=/healthz > "$WORK/healthz_mid.txt" || {
  echo "check_serve: /healthz not ok mid-overload (shed_rate SLO at 0.95)" >&2
  cat "$WORK/healthz_mid.txt" >&2
  exit 1
}

wait "$LOAD_PID" || { echo "check_serve: overload loadgen failed" >&2; exit 1; }
OVER=$(cat "$WORK/overload.out")
echo "overload:  $OVER"

# The --json report must carry the same per-outcome counts as the summary
# line (the machine-readable face of the same run).
for OUTCOME in ok shed deadline error; do
  SUMMARY_N=$(echo "$OVER" | sed -n "s/.* $OUTCOME=\([0-9]*\).*/\1/p")
  JSON_N=$(sed -n "s/.*\"$OUTCOME\": \([0-9]*\).*/\1/p" "$WORK/loadgen_over.json")
  [ "${SUMMARY_N:-x}" = "${JSON_N:-y}" ] || {
    echo "check_serve: loadgen --json outcome $OUTCOME=$JSON_N != summary $SUMMARY_N" >&2
    exit 1
  }
done

SHED=$(echo "$OVER" | sed -n 's/.*shed=\([0-9]*\).*/\1/p')
ERROR=$(echo "$OVER" | sed -n 's/.*error=\([0-9]*\).*/\1/p')
TRANSPORT=$(echo "$OVER" | sed -n 's/.*transport=\([0-9]*\).*/\1/p')
OVER_P99=$(echo "$OVER" | sed -n 's/.*p99_ms=\([0-9.]*\).*/\1/p')
[ "$SHED" -gt 0 ] || { echo "check_serve: overload at ${TARGET_RPS}rps shed nothing" >&2; exit 1; }
[ "$ERROR" -eq 0 ] || { echo "check_serve: $ERROR non-status error responses" >&2; exit 1; }
[ "$TRANSPORT" -eq 0 ] || { echo "check_serve: $TRANSPORT transport failures" >&2; exit 1; }
awk "BEGIN { bound = 3 * $BASE_P99; if (bound < 20) bound = 20;
             exit !($OVER_P99 <= bound) }" || {
  echo "check_serve: overload p99 ${OVER_P99}ms > max(3 x ${BASE_P99}ms, 20ms)" >&2
  exit 1
}

# Consistency: with both loadgen runs complete (and transport=0 asserted
# above), every score request got exactly one outcome, so the server's
# serve_requests{outcome=...} counters must equal the client-side counts
# summed across the baseline and overload runs — per outcome, exactly.
"$ADMINCTL" --port="$ADMIN_PORT" --path=/metrics > "$WORK/metrics_final.txt"
for OUTCOME in ok shed deadline error; do
  CLIENT=$(awk -v o="$OUTCOME" '
    { for (i = 1; i <= NF; ++i)
        if (split($i, kv, "=") == 2 && kv[1] == o) sum += kv[2] }
    END { print sum + 0 }' "$WORK/loadgen_base.txt" "$WORK/overload.out")
  SERVER=$(sed -n "s/^serve_requests{outcome=\"$OUTCOME\"} \([0-9]*\)$/\1/p" \
    "$WORK/metrics_final.txt")
  SERVER=${SERVER:-0}
  [ "$CLIENT" -eq "$SERVER" ] || {
    echo "check_serve: outcome=$OUTCOME mismatch: client=$CLIENT server=$SERVER" >&2
    exit 1
  }
done

# Clean drain on SIGTERM.
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
  echo "check_serve: server did not exit cleanly on SIGTERM" >&2
  exit 1
fi

# Telemetry JSONL must be parseable and report SLO health.
"$BENCH_DIFF" --lint-jsonl "$WORK/telemetry.jsonl" --require='"health"' \
  --require='serve/shed_rate' --min-lines=2
echo "check_serve: OK"
