#!/bin/sh
# Serving gate: run the serve-labeled test suite (golden parity, artifact
# round-trips, loader fuzzing, hot reload under load), then verify the
# recorded serving benchmark baseline still parses and self-compares through
# bench_diff. For the full guarantee, also run this from builds configured
# with -DAMS_SANITIZE=thread (reload-under-load data races) and
# -DAMS_SANITIZE=address (fuzzed loader memory safety).
#
# Usage: check_serve.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_serve.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_serve.sh BUILD_DIR REPO_DIR}
cd "$BUILD_DIR"
BENCH_DIFF="$(pwd)/tools/bench_diff"
ctest -L serve --output-on-failure

"$BENCH_DIFF" --check "$REPO_DIR/BENCH_serve.json"
echo "check_serve: OK"
