#!/bin/sh
# Observability gate: run the obs-labeled test suite, verify that the
# recorded benchmark baselines in the repo root still parse and self-compare
# cleanly through bench_diff (the same code path the regression gate uses),
# then smoke the live observability stack end to end: run the quickstart
# with the sampling profiler (97 Hz), an SLO spec, and the periodic
# reporter, and validate
#   * the folded-stack profiler output is flamegraph-consumable (every line
#     "frames count" with a positive integer count) and sampled at least
#     one real ams span frame,
#   * the JSONL telemetry stream parses, carries the v2 delta schema, the
#     per-tick "health" state driven by AMS_SLO, and the sampler's
#     obs/profile_samples counter.
#
# Usage: check_obs.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_obs.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_obs.sh BUILD_DIR REPO_DIR}
BENCH_DIFF="$BUILD_DIR/tools/bench_diff"
QUICKSTART="$BUILD_DIR/examples/quickstart"

cd "$BUILD_DIR"
ctest -L obs --output-on-failure

"$BENCH_DIFF" --check "$REPO_DIR/BENCH_robust.json"
"$BENCH_DIFF" --check "$REPO_DIR/BENCH_obs.json"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# A lax SLO (never violated) still forces per-tick health evaluation, so
# every JSONL line carries the "health" field.
AMS_PROFILE_FILE="$TMP/profile.folded" AMS_PROFILE_HZ=97 \
AMS_SLO="robust/fault_rate:<1e12" \
AMS_TELEMETRY_INTERVAL_MS=50 AMS_TELEMETRY_FILE="$TMP/telemetry.jsonl" \
  "$QUICKSTART" > "$TMP/stdout.txt" 2> "$TMP/stderr.txt" || {
    echo "check_obs: quickstart failed" >&2
    cat "$TMP/stderr.txt" >&2
    exit 1
  }

# Folded stacks: non-empty; every line is "frames count" (frame names are
# sanitized on record, so whitespace only ever separates stack from count).
awk '
  NF != 2 { print "check_obs: bad folded line: " $0; bad = 1 }
  $2 !~ /^[0-9]+$/ || $2 == "0" { print "check_obs: bad count: " $0; bad = 1 }
  END { if (NR == 0) { print "check_obs: empty profile"; exit 1 }
        exit bad }
' "$TMP/profile.folded"
grep -q 'ams/' "$TMP/profile.folded" || {
  echo "check_obs: no ams span frame ever sampled" >&2
  cat "$TMP/profile.folded" >&2
  exit 1
}

"$BENCH_DIFF" --lint-jsonl "$TMP/telemetry.jsonl" --min-lines=2 \
  --require=ams-telemetry-delta-v2 \
  --require='"health":"ok"' \
  --require=obs/profile_samples

echo "check_obs: OK"
