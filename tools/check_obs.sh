#!/bin/sh
# Observability gate: run the obs-labeled test suite, then verify that the
# recorded benchmark baselines in the repo root still parse and self-compare
# cleanly through bench_diff (the same code path the regression gate uses).
#
# Usage: check_obs.sh BUILD_DIR REPO_DIR
set -eu
BUILD_DIR=${1:?usage: check_obs.sh BUILD_DIR REPO_DIR}
REPO_DIR=${2:?usage: check_obs.sh BUILD_DIR REPO_DIR}
BENCH_DIFF="$BUILD_DIR/tools/bench_diff"

cd "$BUILD_DIR"
ctest -L obs --output-on-failure

"$BENCH_DIFF" --check "$REPO_DIR/BENCH_robust.json"
"$BENCH_DIFF" --check "$REPO_DIR/BENCH_obs.json"
echo "check_obs: OK"
