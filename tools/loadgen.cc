// Closed/open-loop load generator for the AMSNET1 socket front.
//
// Usage: loadgen --port=N [--mode=closed|open] [--concurrency=4]
//                [--rps=0] [--duration_ms=2000] [--deadline_ms=0]
//                [--json=path] [--seed=42]
//
//   closed mode  each of --concurrency worker threads keeps exactly one
//                request in flight (throughput self-limits to server
//                capacity — the polite client)
//   open mode    workers pace requests to a combined --rps arrival rate
//                regardless of response latency (the overload client; this
//                is what drives the server past capacity so shedding and
//                deadline enforcement become observable)
//
// The request shape is discovered from the server's info frame. Latency
// percentiles are computed over OK responses only — shed and deadline
// answers are fast by design and would flatter the numbers.
//
// Output: one parseable summary line on stdout —
//
//   loadgen: sent=N ok=N shed=N deadline=N error=N transport=N
//   p50_ms=X p95_ms=X p99_ms=X rps=X
//
// plus, with --json=path, a Google-benchmark-shaped JSON report
// (benchmarks[].name / real_time) that tools/bench_diff accepts for
// --check and baseline diffing (BENCH_net.json). The JSON additionally
// carries a top-level "outcomes" object with the client-side per-outcome
// counts ({sent, ok, shed, deadline, error, transport}) — check_serve.sh
// cross-checks these against the server's serve/requests{outcome=...}
// counters scraped from the admin plane. bench_diff ignores unknown
// top-level keys, so the extra object is invisible to baseline diffing.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "la/matrix.h"
#include "serve/net_client.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

using namespace ams;

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t error = 0;
  uint64_t transport = 0;
  std::vector<double> ok_latency_ms;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const int port = GetFlagInt(argc, argv, "port", 0);
  if (port <= 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }
  const std::string mode = GetFlag(argc, argv, "mode", "closed");
  const int concurrency = GetFlagInt(argc, argv, "concurrency", 4);
  const int rps = GetFlagInt(argc, argv, "rps", 0);
  const int duration_ms = GetFlagInt(argc, argv, "duration_ms", 2000);
  const int deadline_ms = GetFlagInt(argc, argv, "deadline_ms", 0);
  const std::string json_path = GetFlag(argc, argv, "json", "");
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  if (mode == "open" && rps <= 0) {
    std::fprintf(stderr, "loadgen: open mode needs --rps\n");
    return 2;
  }

  // Shape discovery: one info round trip (retried internally on transport
  // failures, so a just-started server is fine).
  serve::NetClient probe(port);
  auto info = probe.Info();
  if (!info.ok()) {
    std::fprintf(stderr, "loadgen: info request failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  const int rows = info.ValueOrDie().rows;
  const int cols = info.ValueOrDie().cols;

  la::Matrix features(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) features(r, c) = rng.Uniform(-1.0, 1.0);
  }

  // Open mode: each worker paces its own slice of the combined arrival
  // rate. A response slower than the pace interval is not compensated for
  // (no coordinated-omission backlog) — the server sheds precisely because
  // arrivals keep coming.
  const double per_worker_interval_ms =
      mode == "open" ? 1000.0 * concurrency / rps : 0.0;

  std::vector<WorkerStats> stats(concurrency);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::milliseconds(duration_ms);
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      serve::NetClient client(port);
      WorkerStats& s = stats[w];
      Clock::time_point next_send = Clock::now();
      while (Clock::now() < stop) {
        if (per_worker_interval_ms > 0.0) {
          if (Clock::now() < next_send) {
            std::this_thread::sleep_until(next_send);
          }
          next_send += std::chrono::microseconds(
              static_cast<int64_t>(1000.0 * per_worker_interval_ms));
        }
        const Clock::time_point sent_at = Clock::now();
        auto result = client.ScoreWithDeadline(
            features, static_cast<uint32_t>(deadline_ms));
        ++s.sent;
        if (result.ok()) {
          ++s.ok;
          s.ok_latency_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        sent_at)
                  .count());
        } else {
          switch (result.status().code()) {
            case StatusCode::kUnavailable:
              ++s.shed;
              break;
            case StatusCode::kDeadlineExceeded:
              ++s.deadline;
              break;
            case StatusCode::kIoError:
              ++s.transport;
              break;
            default:
              ++s.error;
              break;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  for (const auto& s : stats) {
    total.sent += s.sent;
    total.ok += s.ok;
    total.shed += s.shed;
    total.deadline += s.deadline;
    total.error += s.error;
    total.transport += s.transport;
    total.ok_latency_ms.insert(total.ok_latency_ms.end(),
                               s.ok_latency_ms.begin(), s.ok_latency_ms.end());
  }
  std::sort(total.ok_latency_ms.begin(), total.ok_latency_ms.end());
  const double p50 = Percentile(&total.ok_latency_ms, 0.50);
  const double p95 = Percentile(&total.ok_latency_ms, 0.95);
  const double p99 = Percentile(&total.ok_latency_ms, 0.99);
  const double achieved_rps =
      elapsed_s > 0.0 ? static_cast<double>(total.sent) / elapsed_s : 0.0;

  std::printf(
      "loadgen: sent=%llu ok=%llu shed=%llu deadline=%llu error=%llu "
      "transport=%llu p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f rps=%.1f\n",
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.error),
      static_cast<unsigned long long>(total.transport), p50, p95, p99,
      achieved_rps);

  if (!json_path.empty()) {
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof(date), "%FT%T%z", std::localtime(&now));
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"context\": {\n    \"date\": \"" << date
        << "\",\n    \"executable\": \"loadgen\",\n    \"num_cpus\": "
        << std::thread::hardware_concurrency() << "\n  },\n"
        << "  \"outcomes\": {\"sent\": " << total.sent
        << ", \"ok\": " << total.ok << ", \"shed\": " << total.shed
        << ", \"deadline\": " << total.deadline
        << ", \"error\": " << total.error
        << ", \"transport\": " << total.transport << "},\n"
        << "  \"benchmarks\": [\n";
    const auto bench = [&](const char* name, double value, bool last) {
      out << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\""
          << ", \"real_time\": " << value << ", \"time_unit\": \"ms\"}"
          << (last ? "\n" : ",\n");
    };
    bench("LoadgenScore/p50_ms", p50, false);
    bench("LoadgenScore/p95_ms", p95, false);
    bench("LoadgenScore/p99_ms", p99, true);
    out << "  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "loadgen: failed writing %s\n", json_path.c_str());
      return 1;
    }
  }
  return total.sent > 0 ? 0 : 1;
}
