// bench_diff: the perf regression gate. Compares two recorded measurement
// files and exits nonzero when the candidate regressed beyond a threshold,
// so "did this PR slow the hot path down?" is answered by a recorded
// baseline instead of anecdote.
//
// Usage:
//   bench_diff <baseline.json> <candidate.json> [--threshold=0.10]
//              [--metric=real_time] [--strict-missing]
//       Compare two files; exit 1 if any shared metric regressed by more
//       than threshold (fraction, e.g. 0.10 = +10%). Metrics are
//       lower-is-better (times). --strict-missing also fails when a
//       baseline metric is absent from the candidate.
//   bench_diff --check <file.json>
//       Parse + self-compare (the gate's smoke mode): exit 0 iff the file
//       is valid and yields at least one metric.
//   bench_diff --lint-jsonl <file> [--require=substr]... [--min-lines=1]
//       Validate a JSONL telemetry stream: every non-empty line must parse
//       as JSON, the file must have at least --min-lines lines, and every
//       --require substring must appear in at least one line.
//
// Accepted file shapes (auto-detected):
//   * Google-benchmark JSON (BENCH_*.json): benchmarks[].name -> metric
//     field (default real_time; aggregates skipped)
//   * ams run ledger (obs/ledger.h): metrics.histograms.*.{mean,p50,p95,p99}
//   * raw obs::WriteJsonReport output: histograms.*.{mean,p50,p95,p99}
//
// Exit codes: 0 pass, 1 regression / lint failure, 2 usage or parse error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "util/string_util.h"

namespace {

using ams::obs::json::Value;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff <baseline.json> <candidate.json> "
      "[--threshold=0.10] [--metric=real_time] [--strict-missing]\n"
      "       bench_diff --check <file.json>\n"
      "       bench_diff --lint-jsonl <file> [--require=substr]... "
      "[--min-lines=1]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Flat name -> value metric map extracted from any accepted file shape.
using MetricMap = std::map<std::string, double>;

void ExtractHistogramMetrics(const Value& histograms, MetricMap* out) {
  if (!histograms.is_object()) return;
  for (const auto& [name, h] : histograms.object) {
    const Value* count = h.Find("count");
    if (count == nullptr || !count->is_number() || count->number <= 0) {
      continue;
    }
    for (const char* field : {"mean", "p50", "p95", "p99"}) {
      const Value* v = h.Find(field);
      if (v != nullptr && v->is_number()) {
        (*out)[name + "/" + field] = v->number;
      }
    }
  }
}

bool ExtractMetrics(const Value& root, const std::string& metric_field,
                    MetricMap* out, std::string* error) {
  if (!root.is_object()) {
    *error = "top-level JSON value is not an object";
    return false;
  }
  if (const Value* benchmarks = root.Find("benchmarks")) {
    if (!benchmarks->is_array()) {
      *error = "\"benchmarks\" is not an array";
      return false;
    }
    for (const Value& bench : benchmarks->array) {
      const Value* name = bench.Find("name");
      const Value* value = bench.Find(metric_field);
      const Value* run_type = bench.Find("run_type");
      if (run_type != nullptr && run_type->is_string() &&
          run_type->string_value == "aggregate") {
        continue;
      }
      if (name != nullptr && name->is_string() && value != nullptr &&
          value->is_number()) {
        (*out)[name->string_value] = value->number;
      }
    }
    return true;
  }
  const Value* metrics = root.Find("metrics");
  const Value* histograms =
      metrics != nullptr ? metrics->Find("histograms") : root.Find("histograms");
  if (histograms != nullptr) {
    ExtractHistogramMetrics(*histograms, out);
    return true;
  }
  *error =
      "unrecognized file shape (expected benchmarks[], metrics.histograms, "
      "or histograms)";
  return false;
}

/// context.num_cpus from a google-benchmark JSON report, or -1 when absent
/// (ledger / obs report shapes carry no host context).
int ExtractNumCpus(const Value& root) {
  if (!root.is_object()) return -1;
  const Value* context = root.Find("context");
  if (context == nullptr) return -1;
  const Value* num_cpus = context->Find("num_cpus");
  if (num_cpus == nullptr || !num_cpus->is_number()) return -1;
  return static_cast<int>(num_cpus->number);
}

/// N from a "threads:N" benchmark-arg segment in the metric name, or -1.
/// Parsed numerically: "threads:16" must not match a check for threads:1.
int ThreadsArg(const std::string& name) {
  constexpr const char kTag[] = "threads:";
  const size_t pos = name.find(kTag);
  if (pos == std::string::npos) return -1;
  return std::atoi(name.c_str() + pos + sizeof(kTag) - 1);
}

bool LoadMetrics(const std::string& path, const std::string& metric_field,
                 MetricMap* out, int* num_cpus) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  auto parsed = ams::obs::json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  std::string error;
  if (!ExtractMetrics(parsed.ValueOrDie(), metric_field, out, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  if (num_cpus != nullptr) *num_cpus = ExtractNumCpus(parsed.ValueOrDie());
  if (out->empty()) {
    std::fprintf(stderr, "bench_diff: %s: no comparable metrics found\n",
                 path.c_str());
    return false;
  }
  return true;
}

int RunDiff(const std::string& baseline_path,
            const std::string& candidate_path, double threshold,
            const std::string& metric_field, bool strict_missing) {
  MetricMap baseline;
  MetricMap candidate;
  int baseline_cpus = -1;
  int candidate_cpus = -1;
  if (!LoadMetrics(baseline_path, metric_field, &baseline, &baseline_cpus) ||
      !LoadMetrics(candidate_path, metric_field, &candidate,
                   &candidate_cpus)) {
    return 2;
  }
  // Thread-scaling results (threads:N for N > 1) only compare meaningfully
  // between hosts with the same core count — a 4-thread run on a 1-core
  // machine measures oversubscription, not speedup. When the recorded host
  // core counts differ, those metrics are reported but not gated.
  const bool skip_thread_scaling = baseline_cpus > 0 && candidate_cpus > 0 &&
                                   baseline_cpus != candidate_cpus;

  std::vector<std::vector<std::string>> rows = {
      {"metric", "baseline", "candidate", "delta", "verdict"}};
  int regressions = 0;
  int missing = 0;
  int skipped = 0;
  for (const auto& [name, base_value] : baseline) {
    if (skip_thread_scaling && ThreadsArg(name) > 1) {
      ++skipped;
      const auto cand_it = candidate.find(name);
      rows.push_back({name, ams::FormatDouble(base_value, 3),
                      cand_it == candidate.end()
                          ? "-"
                          : ams::FormatDouble(cand_it->second, 3),
                      "-", "skipped"});
      continue;
    }
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      ++missing;
      rows.push_back({name, ams::FormatDouble(base_value, 3), "-", "-",
                      strict_missing ? "MISSING" : "missing"});
      continue;
    }
    const double cand_value = it->second;
    std::string delta = "-";
    std::string verdict = "ok";
    if (base_value > 0.0) {
      const double ratio = cand_value / base_value - 1.0;
      delta = (ratio >= 0 ? "+" : "") + ams::FormatDouble(ratio * 100.0, 1) +
              "%";
      if (ratio > threshold) {
        verdict = "REGRESSED";
        ++regressions;
      } else if (ratio < -threshold) {
        verdict = "improved";
      }
    }
    rows.push_back({name, ams::FormatDouble(base_value, 3),
                    ams::FormatDouble(cand_value, 3), delta, verdict});
  }
  std::cout << ams::RenderTable(rows);
  std::cout << "threshold: " << ams::FormatDouble(threshold * 100.0, 1)
            << "%  regressions: " << regressions << "  missing: " << missing
            << "\n";
  if (skipped > 0) {
    std::cout << "note: host core counts differ (baseline " << baseline_cpus
              << ", candidate " << candidate_cpus << "); skipped " << skipped
              << " thread-scaling metric(s)\n";
  }
  if (regressions > 0) return 1;
  if (strict_missing && missing > 0) return 1;
  return 0;
}

int RunLint(const std::string& path,
            const std::vector<std::string>& required, int min_lines) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return 2;
  }
  std::vector<bool> seen(required.size(), false);
  std::string line;
  int line_number = 0;
  int non_empty = 0;
  int bad = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++non_empty;
    auto parsed = ams::obs::json::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_diff: %s:%d: invalid JSON: %s\n",
                   path.c_str(), line_number,
                   parsed.status().ToString().c_str());
      ++bad;
      continue;
    }
    for (size_t i = 0; i < required.size(); ++i) {
      if (!seen[i] && line.find(required[i]) != std::string::npos) {
        seen[i] = true;
      }
    }
  }
  int failures = bad;
  if (non_empty < min_lines) {
    std::fprintf(stderr,
                 "bench_diff: %s: expected at least %d JSONL lines, got %d\n",
                 path.c_str(), min_lines, non_empty);
    ++failures;
  }
  for (size_t i = 0; i < required.size(); ++i) {
    if (!seen[i]) {
      std::fprintf(stderr,
                   "bench_diff: %s: required substring \"%s\" not found\n",
                   path.c_str(), required[i].c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bench_diff: %s: %d JSONL lines ok\n", path.c_str(),
                non_empty);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::string> required;
  bool check_mode = false;
  bool lint_mode = false;
  bool strict_missing = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--lint-jsonl") {
      lint_mode = true;
    } else if (arg == "--strict-missing") {
      strict_missing = true;
    } else if (arg.rfind("--require=", 0) == 0) {
      required.push_back(arg.substr(std::string("--require=").size()));
    } else if (arg.rfind("--", 0) == 0) {
      // --threshold / --metric / --min-lines handled via GetFlag below.
      continue;
    } else {
      positional.push_back(arg);
    }
  }
  const std::string threshold_flag =
      ams::GetFlag(argc, argv, "threshold", "0.10");
  const double threshold = std::atof(threshold_flag.c_str());
  const std::string metric_field =
      ams::GetFlag(argc, argv, "metric", "real_time");
  const int min_lines = ams::GetFlagInt(argc, argv, "min-lines", 1);

  if (lint_mode) {
    if (positional.size() != 1) return Usage();
    return RunLint(positional[0], required, min_lines);
  }
  if (check_mode) {
    if (positional.size() != 1) return Usage();
    // Self-compare: exercises parse + extract + diff; identical inputs can
    // never regress, so any nonzero exit means the file (or the gate
    // itself) is broken.
    return RunDiff(positional[0], positional[0], threshold, metric_field,
                   /*strict_missing=*/true);
  }
  if (positional.size() != 2) return Usage();
  if (threshold <= 0.0) {
    std::fprintf(stderr, "bench_diff: --threshold must be positive\n");
    return 2;
  }
  return RunDiff(positional[0], positional[1], threshold, metric_field,
                 strict_missing);
}
