// Raw-socket scraper for the admin plane (obs/admin.h): one HTTP/1.0 GET,
// full response (status line, headers, body) printed to stdout. Exists so
// check_admin.sh can scrape /metrics and poll /healthz without assuming
// curl/wget exist on the host — the only dependency is this repo.
//
// Usage: adminctl --port=N [--path=/metrics] [--timeout_ms=5000]
//
// Exit codes: 0 = HTTP 2xx, 3 = any other well-formed HTTP status
// (so `adminctl --path=/healthz` distinguishes healthy from degraded in a
// shell `if`), 1 = transport failure (connect/read), 2 = usage error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  const int port = GetFlagInt(argc, argv, "port", 0);
  const std::string path = GetFlag(argc, argv, "path", "/metrics");
  const int timeout_ms = GetFlagInt(argc, argv, "timeout_ms", 5000);
  if (port <= 0) {
    std::fprintf(stderr, "adminctl: --port is required\n");
    return 2;
  }
  if (path.empty() || path[0] != '/') {
    std::fprintf(stderr, "adminctl: --path must start with '/'\n");
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "adminctl: socket: %s\n", std::strerror(errno));
    return 1;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::fprintf(stderr, "adminctl: connect 127.0.0.1:%d: %s\n", port,
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      std::fprintf(stderr, "adminctl: send: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n == 0) {
      break;  // Connection: close — EOF ends the response
    } else {
      std::fprintf(stderr, "adminctl: recv: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
  }
  ::close(fd);

  if (response.empty()) {
    std::fprintf(stderr, "adminctl: empty response\n");
    return 1;
  }
  std::fwrite(response.data(), 1, response.size(), stdout);

  // "HTTP/1.0 NNN ..." — a 2xx code is success.
  const size_t space = response.find(' ');
  if (space == std::string::npos || space + 3 >= response.size()) return 1;
  const std::string code = response.substr(space + 1, 3);
  return code.size() == 3 && code[0] == '2' ? 0 : 3;
}
