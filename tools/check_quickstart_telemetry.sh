#!/bin/sh
# Live-telemetry acceptance smoke: run the quickstart with a 50 ms periodic
# reporter and a run ledger, then verify that
#   * the JSONL stream has >= 2 v2 delta snapshots, every line valid JSON,
#   * the derived gauges (per-pool par/pool_utilization, robust/fault_rate)
#     and at least one per-model labeled instrument appear in the stream,
#   * the run ledger was written and parses as a bench_diff input.
#
# Usage: check_quickstart_telemetry.sh QUICKSTART_BINARY BENCH_DIFF_BINARY
set -eu
QUICKSTART=${1:?usage: check_quickstart_telemetry.sh QUICKSTART BENCH_DIFF}
BENCH_DIFF=${2:?usage: check_quickstart_telemetry.sh QUICKSTART BENCH_DIFF}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

AMS_TELEMETRY=json AMS_TELEMETRY_INTERVAL_MS=50 \
AMS_TELEMETRY_FILE="$TMP/telemetry.jsonl" AMS_RUN_LEDGER="$TMP/ledger" \
  "$QUICKSTART" > "$TMP/stdout.txt" 2> "$TMP/stderr.txt" || {
    echo "check_quickstart_telemetry: quickstart failed" >&2
    cat "$TMP/stderr.txt" >&2
    exit 1
  }

# In the JSONL stream a labeled counter name serializes with its quotes
# escaped, so the literal bytes to look for are: model=\"
"$BENCH_DIFF" --lint-jsonl "$TMP/telemetry.jsonl" --min-lines=2 \
  --require=ams-telemetry-delta-v2 \
  --require=par/pool_utilization \
  --require=robust/fault_rate \
  --require='model=\"'

LEDGER=$(ls "$TMP"/ledger/run_*.json | head -1)
"$BENCH_DIFF" --check "$LEDGER"
echo "check_quickstart_telemetry: OK"
