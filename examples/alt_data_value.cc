// Alternative-data value example (the Table III story in miniature): train
// the same Ridge model with and without the alternative-data features on
// identical folds and show the BA/SR degradation when the alt signal is
// removed.
//
// Usage: alt_data_value [--seed=42]
#include <cstdio>

#include "models/experiment.h"
#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  for (data::DatasetProfile profile :
       {data::DatasetProfile::kTransactionAmount,
        data::DatasetProfile::kMapQuery}) {
    auto panel = data::GenerateMarket(
                     data::GeneratorConfig::Defaults(profile, seed))
                     .MoveValue();
    models::ExperimentConfig config;
    config.profile = profile;
    config.seed = seed;
    config.hpo_trials = 4;
    config.model_filter = {"Ridge"};

    config.include_alt = true;
    auto with_alt = models::RunExperimentOnPanel(panel, config);
    with_alt.status().Abort("with alt");
    config.include_alt = false;
    auto without_alt = models::RunExperimentOnPanel(panel, config);
    without_alt.status().Abort("without alt");

    const auto* base = with_alt.ValueOrDie().Find("Ridge");
    const auto* na = without_alt.ValueOrDie().Find("Ridge");
    std::printf(
        "%s dataset (Ridge, %zu CV folds):\n"
        "  with alternative data:    BA = %6.2f%%  SR = %.4f\n"
        "  without alternative data: BA = %6.2f%%  SR = %.4f\n"
        "  -> alt data is worth %+.2f BA points / %+.4f SR\n\n",
        data::DatasetProfileName(profile),
        with_alt.ValueOrDie().cv_folds.size(), base->MeanBa(),
        base->MeanSr(), na->MeanBa(), na->MeanSr(),
        base->MeanBa() - na->MeanBa(), na->MeanSr() - base->MeanSr());
  }
  std::printf(
      "SR < 1 means the model out-forecasts the analysts' consensus; losing\n"
      "the alternative features pushes SR back toward 1 — the information\n"
      "edge comes from the alternative data, not the financial history.\n");
  return 0;
}
