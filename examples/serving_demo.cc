// Serving demo: train a small AMS model, export it as an AMSMODEL1
// artifact, load the artifact into the batched inference server, score a
// quarter of requests, hot-swap a second model via the mtime reload
// watcher, serve the same model over a loopback AMSNET1 socket (including
// a deliberately overloaded burst that demonstrates load shedding), and
// print the serve/* telemetry the run recorded along the way.
//
// Usage: serving_demo [--seed=42]
//
// Environment: AMS_SERVE_BATCH (micro-batch size, default 8) and
// AMS_SERVE_MAX_WAIT_MS (co-batching window, default 1.0) tune the batcher;
// AMS_SERVE_PORT / AMS_SERVE_QUEUE / AMS_SERVE_DEADLINE_MS /
// AMS_SERVE_WORKERS configure the network front (see README "Serving over
// the network"); AMS_TELEMETRY=text prints the full metrics report
// (including the serve/latency_ms p50/p95/p99) at exit; AMS_RUN_LEDGER=dir
// writes a run manifest whose "components" block carries the served model
// fingerprint.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/artifact.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/server.h"
#include "util/string_util.h"

using namespace ams;

namespace {

core::AmsModel TrainModel(const data::Dataset& train,
                          const data::Dataset& valid,
                          const graph::CompanyGraph& graph, uint64_t seed) {
  core::AmsConfig config;
  config.node_transform_layers = {16};
  config.gat.hidden_per_head = {4};
  config.gat.num_heads = 2;
  config.gat.out_features = 8;
  config.generator_hidden = {16};
  config.max_epochs = 40;
  config.patience = 10;
  config.seed = seed;
  core::AmsModel model(config);
  model.Fit(train, valid, graph).Abort("fit");
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);

  // 1. Data and a fitted model (as in quickstart, but smaller).
  data::GeneratorConfig gen_config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, seed);
  gen_config.num_companies = 24;
  gen_config.num_sectors = 4;
  data::Panel panel = data::GenerateMarket(gen_config).MoveValue();
  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  data::Dataset train = builder.Build({4, 5, 6, 7, 8}).MoveValue();
  data::Dataset valid = builder.Build({9}).MoveValue();
  data::Dataset test = builder.Build({10}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  standardizer.Apply(&test);
  graph::CorrelationGraphOptions graph_options;
  graph_options.top_k = 3;
  graph::CompanyGraph graph =
      graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(8),
                                            graph_options)
          .MoveValue();
  core::AmsModel model = TrainModel(train, valid, graph, seed);

  // 2. Export the fitted model as a versioned, CRC-protected artifact.
  const std::string path = "/tmp/ams_serving_demo.amsmodel";
  serve::SaveAmsArtifact(path, model).Abort("save artifact");
  auto info = serve::ProbeArtifact(path);
  info.status().Abort("probe artifact");
  std::printf("artifact: %s kind=%s fingerprint=%s\n", path.c_str(),
              info.ValueOrDie().kind.c_str(),
              info.ValueOrDie().fingerprint.c_str());

  // 3. Serve it: load the artifact and score a batch of quarter blocks.
  serve::InferenceServer server;
  server.LoadArtifact(path).Abort("load artifact");
  std::printf("server: model version %d, batch<=%d, wait %.1f ms\n",
              server.model_version(), server.options().max_batch,
              server.options().max_wait_ms);

  std::vector<la::Matrix> requests(16, test.x);
  auto results = server.ScoreBatch(requests);
  int ok = 0;
  for (const auto& result : results) {
    if (result.ok()) ++ok;
  }
  std::printf("scored %d/%zu requests; first company score %.6f\n", ok,
              results.size(), results[0].ValueOrDie()[0]);

  // 4. Hot reload, daemon-style: start the mtime watcher, overwrite the
  //    artifact, and wait for the background thread to swap it in —
  //    in-flight requests drain on the model that admitted them.
  server.StartReloadWatcher(path, /*interval_ms=*/20).Abort("start watcher");
  serve::SaveAmsArtifact(path, TrainModel(train, valid, graph, seed + 1))
      .Abort("save updated artifact");
  const auto reload_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.model_version() < 2 &&
         std::chrono::steady_clock::now() < reload_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.StopReloadWatcher();
  std::printf("hot reload (watched): now version %d fingerprint=%s\n",
              server.model_version(), server.model_fingerprint().c_str());
  auto rescored = server.Score(test.x);
  rescored.status().Abort("score after reload");
  std::printf("rescored on new model; first company score %.6f\n",
              rescored.ValueOrDie()[0]);

  // 5. The network front: the same server behind a loopback AMSNET1 socket
  //    with a deliberately tiny admission queue. A burst of concurrent
  //    closed-loop clients overruns it, so some requests come back with the
  //    distinct kUnavailable shed status instead of hanging.
  serve::NetServerOptions net_options;
  net_options.max_queue = 2;
  net_options.num_workers = 1;
  serve::NetServer net(&server, net_options);
  net.Start().Abort("start net server");
  std::printf("net: listening on 127.0.0.1:%d (queue=%d)\n", net.port(),
              net_options.max_queue);
  {
    serve::NetClient client(net.port());
    auto remote = client.Score(test.x);
    remote.status().Abort("score over socket");
    std::printf("net: scored over the socket; first company score %.6f\n",
                remote.ValueOrDie()[0]);
  }
  int net_ok = 0, net_shed = 0;
  {
    std::vector<std::thread> burst;
    std::mutex counts_mu;
    for (int t = 0; t < 8; ++t) {
      burst.emplace_back([&] {
        serve::NetClient client(net.port());
        for (int i = 0; i < 4; ++i) {
          auto result = client.Score(test.x);
          std::lock_guard<std::mutex> lock(counts_mu);
          if (result.ok()) {
            ++net_ok;
          } else if (result.status().code() == StatusCode::kUnavailable) {
            ++net_shed;
          }
        }
      });
    }
    for (auto& t : burst) t.join();
  }
  net.Stop();
  std::printf("net: burst of 32 -> ok=%d shed=%d (shedding is an answer, "
              "not a hang)\n",
              net_ok, net_shed);

  // 6. The serve/* instruments the run recorded.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind("serve/", 0) == 0) {
      std::printf("  %-40s %llu\n", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value));
    }
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name.rfind("serve/latency_ms", 0) == 0) {
      std::printf("  %-40s p50=%.3fms p95=%.3fms p99=%.3fms\n",
                  histogram.name.c_str(), histogram.Percentile(0.5),
                  histogram.Percentile(0.95), histogram.Percentile(0.99));
    }
  }
  std::remove(path.c_str());
  return 0;
}
