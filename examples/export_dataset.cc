// Dataset export example: generate both synthetic alternative datasets,
// write them as CSV (the interchange schema users with real data can fill
// in), read them back, and verify the round trip end-to-end by training a
// model on the re-imported panel.
//
// Usage: export_dataset [--seed=42] [--dir=/tmp]
#include <cstdio>

#include "data/cv.h"
#include "data/features.h"
#include "data/generator.h"
#include "data/panel_io.h"
#include "metrics/metrics.h"
#include "models/baselines.h"
#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  const std::string dir = GetFlag(argc, argv, "dir", "/tmp");

  for (data::DatasetProfile profile :
       {data::DatasetProfile::kTransactionAmount,
        data::DatasetProfile::kMapQuery}) {
    auto panel = data::GenerateMarket(
                     data::GeneratorConfig::Defaults(profile, seed))
                     .MoveValue();
    const std::string path =
        dir + "/ams_" +
        (profile == data::DatasetProfile::kTransactionAmount ? "transaction"
                                                             : "map_query") +
        ".csv";
    data::WritePanelCsv(path, panel).Abort("write csv");
    std::printf("wrote %s: %d companies x %d quarters, %d alt channel(s)\n",
                path.c_str(), panel.num_companies(), panel.num_quarters,
                panel.num_alt_channels);

    // Round trip: re-import and train a Ridge model on the last fold.
    auto restored = data::ReadPanelCsv(path, profile);
    restored.status().Abort("read csv");
    const data::Panel& p = restored.ValueOrDie();
    auto folds = data::TimeSeriesCvFolds(p.num_quarters,
                                         data::DefaultCvOptions(profile))
                     .MoveValue();
    const data::CvFold fold = folds.back();
    data::FeatureBuilder builder(&p, data::FeatureOptions{});
    auto train = builder.Build(fold.train_quarters).MoveValue();
    auto valid = builder.Build({fold.valid_quarter}).MoveValue();
    auto test = builder.Build({fold.test_quarter}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);
    standardizer.Apply(&test);

    models::FitContext context;
    context.train = &train;
    context.valid = &valid;
    context.panel = &p;
    context.last_train_quarter = fold.valid_quarter - 1;
    linear::LinearOptions options;
    options.alpha = 0.1;
    options.l1_ratio = 0.0;
    models::LinearRegressor ridge("Ridge", options);
    ridge.Fit(context).Abort("fit");
    auto eval =
        metrics::Evaluate(test, ridge.PredictNorm(test).MoveValue());
    eval.status().Abort("evaluate");
    std::printf("  round-trip check (Ridge on re-imported panel, test %s):"
                " BA = %.2f%%, SR = %.4f\n",
                p.QuarterAt(fold.test_quarter).ToString().c_str(),
                eval.ValueOrDie().ba, eval.ValueOrDie().sr);
  }
  std::printf("\nFill the same CSV schema with real data and point the"
              " library at it via\ndata::ReadPanelCsv to run every"
              " experiment in this repository on it.\n");
  return 0;
}
