// Interpretability example (paper §IV-G): train AMS on one fold, extract the
// per-company slave-LR coefficients, and explain a single company's
// prediction as a sum of feature contributions — the workflow a portfolio
// manager would use to understand an AMS forecast.
//
// Usage: interpretability_report [--seed=42] [--company=3]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/cv.h"
#include "data/generator.h"
#include "models/ams_regressor.h"
#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  const int company = GetFlagInt(argc, argv, "company", 3);

  auto panel_result = data::GenerateMarket(data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, seed));
  panel_result.status().Abort("generate");
  const data::Panel& panel = panel_result.ValueOrDie();

  auto folds = data::TimeSeriesCvFolds(
                   panel.num_quarters, data::DefaultCvOptions(panel.profile))
                   .MoveValue();
  const data::CvFold fold = folds.back();
  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  auto train = builder.Build(fold.train_quarters).MoveValue();
  auto valid = builder.Build({fold.valid_quarter}).MoveValue();
  auto test = builder.Build({fold.test_quarter}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  standardizer.Apply(&test);

  models::FitContext context;
  context.train = &train;
  context.valid = &valid;
  context.panel = &panel;
  context.last_train_quarter = fold.valid_quarter - 1;
  context.seed = seed;

  models::AmsRegressor model(core::AmsConfig{}, /*graph_top_k=*/5);
  model.Fit(context).Abort("fit");

  auto coeffs = model.SlaveCoefficients(test).MoveValue();
  auto pred = model.PredictNorm(test).MoveValue();

  const data::SampleMeta& meta = test.meta[company];
  std::printf(
      "company %s, sector %d, quarter %s\n"
      "  consensus:            %12.1f M\n"
      "  predicted revenue:    %12.1f M\n"
      "  predicted UR:         %+12.1f M\n"
      "  actual UR:            %+12.1f M\n\n",
      panel.companies[company].name.c_str(), panel.companies[company].sector,
      panel.QuarterAt(meta.quarter).ToString().c_str(), meta.consensus,
      meta.consensus + pred[company] * meta.scale,
      pred[company] * meta.scale, meta.actual_ur);

  // Feature contributions: coefficient * feature value (normalized units).
  struct Contribution {
    std::string name;
    double weight;
    double value;
    double product;
  };
  std::vector<Contribution> contributions;
  for (int c = 0; c < test.num_features(); ++c) {
    Contribution entry;
    entry.name = test.feature_names[c];
    entry.weight = coeffs(company, c);
    entry.value = test.x(company, c);
    entry.product = entry.weight * entry.value;
    contributions.push_back(entry);
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const Contribution& a, const Contribution& b) {
              return std::abs(a.product) > std::abs(b.product);
            });

  std::printf("top contributions to the prediction (slave-LR weight x"
              " feature):\n%-16s %12s %10s %14s\n",
              "feature", "weight", "value", "contribution");
  for (int i = 0; i < 12 && i < static_cast<int>(contributions.size()); ++i) {
    const Contribution& entry = contributions[i];
    std::printf("%-16s %12.5f %10.4f %14.5f\n", entry.name.c_str(),
                entry.weight, entry.value, entry.product);
  }
  std::printf("%-16s %12s %10s %14.5f\n", "(intercept)", "-", "-",
              coeffs(company, test.num_features()));
  std::printf(
      "\nEach weight is this company's own slave-LR coefficient; bumping a\n"
      "feature by one (standardized) unit moves the predicted normalized UR\n"
      "by the weight — the sensitivity reading the paper highlights.\n");
  return 0;
}
