// Portfolio backtest example: train AMS and a Ridge baseline over the full
// cross-validation schedule, trade the paper's long/short strategy on the
// simulated market, and print asset curves and summary statistics.
//
// Usage: portfolio_backtest [--seed=42] [--trials=3]
#include <cstdio>

#include "backtest/backtest.h"
#include "models/experiment.h"
#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = GetFlagU64(argc, argv, "seed", 42);
  config.hpo_trials = GetFlagInt(argc, argv, "trials", 3);
  config.model_filter = {"AMS", "Ridge"};

  std::printf("running %d-trial cross-validated experiment (this trains"
              " AMS and Ridge on every fold)...\n",
              config.hpo_trials);
  auto result = models::RunExperiment(config);
  result.status().Abort("experiment");
  const models::ExperimentResult& experiment = result.ValueOrDie();

  backtest::BacktestConfig bt_config;
  bt_config.seed = config.seed;
  backtest::Backtester backtester(&experiment.panel, bt_config);

  std::printf("\n%-6s %12s %10s %10s\n", "model", "earning(%)", "MDD(%)",
              "quarters");
  std::vector<backtest::BacktestResult> results;
  for (const models::ModelOutcome& model : experiment.models) {
    std::vector<backtest::QuarterPositions> quarters;
    for (size_t f = 0; f < model.folds.size(); ++f) {
      backtest::QuarterPositions positions;
      positions.test_quarter = model.folds[f].test_quarter;
      positions.predicted_ur = model.folds[f].predicted_ur;
      positions.meta = experiment.fold_test_meta[f];
      quarters.push_back(std::move(positions));
    }
    auto bt = backtester.Run(quarters);
    bt.status().Abort("backtest");
    results.push_back(bt.MoveValue());
    std::printf("%-6s %12.4f %10.4f %10zu\n", model.name.c_str(),
                results.back().earning_pct, results.back().mdd_pct,
                results.back().quarter_returns_pct.size());
  }

  if (results.size() == 2) {
    auto sharpe = backtest::SharpeVsReference(results[1].daily_returns,
                                              results[0].daily_returns);
    if (sharpe.ok()) {
      std::printf("\nRidge Sharpe ratio vs AMS: %.4f (negative = no excess"
                  " return over AMS)\n",
                  sharpe.ValueOrDie());
    }
  }

  // Sparse text rendering of the asset curves (one sample per ~week).
  std::printf("\nasset curves (weekly samples):\nday");
  for (const auto& model : experiment.models) {
    std::printf("%10s", model.name.c_str());
  }
  std::printf("\n");
  const size_t days = results.front().asset_curve.size();
  for (size_t d = 0; d < days; d += 5) {
    std::printf("%3zu", d);
    for (const auto& r : results) std::printf("%10.4f", r.asset_curve[d]);
    std::printf("\n");
  }
  return 0;
}
