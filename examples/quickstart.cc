// Quickstart: generate the synthetic transaction-amount market, train the
// AMS model on one cross-validation fold, and compare its BA/SR against the
// analysts' consensus, a Ridge baseline and an XGBoost-style GBDT.
//
// Usage: quickstart [--seed=42]
//
// Telemetry: AMS_TELEMETRY=text (or json) prints a metrics report on stderr
// at exit; AMS_TELEMETRY_INTERVAL_MS=50 streams JSONL delta snapshots while
// training runs (to stderr, or to AMS_TELEMETRY_FILE); AMS_RUN_LEDGER=dir
// writes a per-run manifest for tools/bench_diff; AMS_TRACE_FILE=/tmp/t.json
// additionally writes a Chrome trace-event timeline (load in
// chrome://tracing or ui.perfetto.dev).
#include <cstdio>

#include "data/cv.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "metrics/metrics.h"
#include "models/ams_regressor.h"
#include "models/baselines.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/string_util.h"

using namespace ams;

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);

  // 1. Generate the synthetic market (substitute for the closed UnionPay
  //    transaction-amount dataset; see DESIGN.md).
  auto panel_result = data::GenerateMarket(data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, seed));
  panel_result.status().Abort("generate market");
  const data::Panel& panel = panel_result.ValueOrDie();
  std::printf("panel: %d companies, %d quarters (%s-%s), %d alt channel(s)\n",
              panel.num_companies(), panel.num_quarters,
              panel.QuarterAt(0).ToString().c_str(),
              panel.QuarterAt(panel.num_quarters - 1).ToString().c_str(),
              panel.num_alt_channels);

  // 2. Build the feature matrices for the last cross-validation fold.
  const data::CvOptions cv_options = data::DefaultCvOptions(panel.profile);
  auto folds_result = data::TimeSeriesCvFolds(panel.num_quarters, cv_options);
  folds_result.status().Abort("cv folds");
  const data::CvFold fold = folds_result.ValueOrDie().back();

  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  auto train = builder.Build(fold.train_quarters).MoveValue();
  auto valid = builder.Build({fold.valid_quarter}).MoveValue();
  auto test = builder.Build({fold.test_quarter}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  standardizer.Apply(&test);
  std::printf("fold: train %zu quarters, test %s (%d samples, %d features)\n",
              fold.train_quarters.size(),
              panel.QuarterAt(fold.test_quarter).ToString().c_str(),
              test.num_samples(), test.num_features());

  models::FitContext context;
  context.train = &train;
  context.valid = &valid;
  context.panel = &panel;
  context.last_train_quarter = fold.valid_quarter - 1;
  context.seed = seed;

  // 3. Train AMS (paper defaults), a Ridge baseline, and an XGBoost-style
  //    GBDT baseline. Each fit is counted under a per-model label so live
  //    telemetry can tell the three apart.
  auto count_fit = [](const std::string& model_name) {
    obs::MetricsRegistry::Get()
        .GetCounter("quickstart/model_fit", {{"model", model_name}})
        .Increment();
  };

  models::AmsRegressor ams_model(core::AmsConfig{}, /*graph_top_k=*/5);
  count_fit(ams_model.name());
  {
    AMS_TRACE_SPAN("quickstart/fit_ams");
    ams_model.Fit(context).Abort("fit AMS");
  }

  linear::LinearOptions ridge_options;
  ridge_options.alpha = 0.1;
  ridge_options.l1_ratio = 0.0;
  models::LinearRegressor ridge("Ridge", ridge_options);
  count_fit(ridge.name());
  ridge.Fit(context).Abort("fit Ridge");

  gbdt::GbdtOptions gbdt_options;
  gbdt_options.early_stopping_rounds = 20;
  gbdt_options.seed = seed;
  models::XgboostRegressor gbdt_model(gbdt_options);
  count_fit(gbdt_model.name());
  {
    AMS_TRACE_SPAN("quickstart/fit_gbdt");
    gbdt_model.Fit(context).Abort("fit XGBoost");
  }

  // 4. Evaluate on the held-out quarter.
  for (const models::Regressor* model :
       {static_cast<const models::Regressor*>(&ams_model),
        static_cast<const models::Regressor*>(&ridge),
        static_cast<const models::Regressor*>(&gbdt_model)}) {
    auto pred = model->PredictNorm(test);
    pred.status().Abort("predict");
    auto eval = metrics::Evaluate(test, pred.ValueOrDie());
    eval.status().Abort("evaluate");
    const obs::Labels model_label = {{"model", model->name()}};
    obs::MetricsRegistry::Get()
        .GetGauge("quickstart/ba", model_label)
        .Set(eval.ValueOrDie().ba);
    obs::MetricsRegistry::Get()
        .GetGauge("quickstart/sr", model_label)
        .Set(eval.ValueOrDie().sr);
    std::printf("%-8s BA = %6.2f%%   SR = %.4f   (n = %d)\n",
                model->name().c_str(), eval.ValueOrDie().ba,
                eval.ValueOrDie().sr, eval.ValueOrDie().num_samples);
  }
  std::printf(
      "BA > 0 means the model beats a random guess; SR < 1 means its revenue"
      " forecast\nis closer to the truth than the analysts' consensus.\n");
  return 0;
}
