// Tests for the autograd engine: forward values, analytic-vs-numerical
// gradient checks for every op, and graph-structure behaviours.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::tensor {
namespace {

using la::Matrix;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = scale * rng->Normal();
  }
  return m;
}

/// Checks d(loss)/d(leaf) against central differences on every element.
void CheckGradient(const std::function<Tensor()>& build_loss, Tensor leaf,
                   double tol = 1e-6) {
  Tensor loss = build_loss();
  Backward(loss);
  const Matrix analytic = leaf.grad();
  auto forward = [&]() { return build_loss().value()(0, 0); };
  for (int r = 0; r < leaf.rows(); ++r) {
    for (int c = 0; c < leaf.cols(); ++c) {
      const double numeric = NumericalGradient(forward, leaf, r, c);
      EXPECT_NEAR(analytic(r, c), numeric, tol)
          << "grad mismatch at (" << r << ", " << c << ")";
    }
  }
}

// --- Forward values ---------------------------------------------------------

TEST(TensorTest, ConstantAndParameterFlags) {
  Tensor c = Tensor::Constant(Matrix{{1, 2}});
  Tensor p = Tensor::Parameter(Matrix{{1, 2}});
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(p.requires_grad());
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::Constant(Matrix{{1, 2}, {3, 4}});
  Tensor b = Tensor::Constant(Matrix{{5}, {6}});
  Tensor c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.value()(0, 0), 17);
  EXPECT_DOUBLE_EQ(c.value()(1, 0), 39);
}

TEST(TensorTest, BroadcastAddRowColScalar) {
  Tensor a = Tensor::Constant(Matrix{{1, 2}, {3, 4}});
  Tensor row = Tensor::Constant(Matrix{{10, 20}});
  Tensor col = Tensor::Constant(Matrix{{100}, {200}});
  Tensor scalar = Tensor::Constant(Matrix{{1000}});
  EXPECT_DOUBLE_EQ(Add(a, row).value()(1, 1), 24);
  EXPECT_DOUBLE_EQ(Add(a, col).value()(1, 0), 203);
  EXPECT_DOUBLE_EQ(Add(a, scalar).value()(0, 0), 1001);
  EXPECT_DOUBLE_EQ(Sub(a, row).value()(0, 1), -18);
}

TEST(TensorTest, ActivationsForward) {
  Tensor x = Tensor::Constant(Matrix{{-1.0, 0.0, 2.0}});
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(LeakyRelu(x, 0.1).value()(0, 0), -0.1);
  EXPECT_NEAR(Sigmoid(x).value()(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(Tanh(x).value()(0, 2), std::tanh(2.0), 1e-12);
  EXPECT_NEAR(Exp(x).value()(0, 0), std::exp(-1.0), 1e-12);
}

TEST(TensorTest, ReductionsForward) {
  Tensor x = Tensor::Constant(Matrix{{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(Sum(x).value()(0, 0), 10);
  EXPECT_DOUBLE_EQ(Mean(x).value()(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(SumSquares(x).value()(0, 0), 30);
  EXPECT_DOUBLE_EQ(RowSums(x).value()(1, 0), 7);
}

TEST(TensorTest, RowDotForward) {
  Tensor a = Tensor::Constant(Matrix{{1, 2}, {3, 4}});
  Tensor b = Tensor::Constant(Matrix{{5, 6}, {7, 8}});
  Tensor d = RowDot(a, b);
  EXPECT_DOUBLE_EQ(d.value()(0, 0), 17);
  EXPECT_DOUBLE_EQ(d.value()(1, 0), 53);
}

TEST(TensorTest, ConcatForward) {
  Tensor a = Tensor::Constant(Matrix{{1}, {2}});
  Tensor b = Tensor::Constant(Matrix{{3}, {4}});
  Tensor cols = ConcatCols({a, b});
  EXPECT_EQ(cols.cols(), 2);
  EXPECT_DOUBLE_EQ(cols.value()(1, 1), 4);
  Tensor rows = ConcatRows({a, b});
  EXPECT_EQ(rows.rows(), 4);
  EXPECT_DOUBLE_EQ(rows.value()(2, 0), 3);
}

TEST(TensorTest, MaskedRowSoftmaxForward) {
  Tensor logits = Tensor::Constant(Matrix{{1.0, 2.0, 3.0}});
  Matrix mask{{1, 0, 1}};
  Tensor sm = MaskedRowSoftmax(logits, mask);
  EXPECT_DOUBLE_EQ(sm.value()(0, 1), 0.0);
  const double e1 = std::exp(1.0), e3 = std::exp(3.0);
  EXPECT_NEAR(sm.value()(0, 0), e1 / (e1 + e3), 1e-12);
  EXPECT_NEAR(sm.value()(0, 2), e3 / (e1 + e3), 1e-12);
  // Rows sum to 1 over the mask.
  EXPECT_NEAR(sm.value().RowSums()(0, 0), 1.0, 1e-12);
}

TEST(TensorTest, MaskedRowSoftmaxStableForLargeLogits) {
  Tensor logits = Tensor::Constant(Matrix{{1000.0, 1001.0}});
  Matrix mask{{1, 1}};
  Tensor sm = MaskedRowSoftmax(logits, mask);
  EXPECT_TRUE(sm.value().AllFinite());
  EXPECT_NEAR(sm.value()(0, 0) + sm.value()(0, 1), 1.0, 1e-12);
}

// --- Gradient checks --------------------------------------------------------

TEST(TensorGradTest, MatMulBothOperands) {
  Rng rng(1);
  Tensor a = Tensor::Parameter(RandomMatrix(3, 4, &rng));
  Tensor b = Tensor::Parameter(RandomMatrix(4, 2, &rng));
  auto loss = [&]() { return SumSquares(MatMul(a, b)); };
  CheckGradient(loss, a);
  a.ZeroGrad();
  b.ZeroGrad();
  CheckGradient(loss, b);
}

TEST(TensorGradTest, TransposeChain) {
  Rng rng(2);
  Tensor a = Tensor::Parameter(RandomMatrix(3, 5, &rng));
  auto loss = [&]() { return SumSquares(Transpose(a)); };
  CheckGradient(loss, a);
}

TEST(TensorGradTest, BroadcastAddRow) {
  Rng rng(3);
  Tensor a = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  Tensor bias = Tensor::Parameter(RandomMatrix(1, 3, &rng));
  auto loss = [&]() { return SumSquares(Add(a, bias)); };
  CheckGradient(loss, bias);
  bias.ZeroGrad();
  a.ZeroGrad();
  CheckGradient(loss, a);
}

TEST(TensorGradTest, BroadcastAddColAndScalar) {
  Rng rng(4);
  Tensor a = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  Tensor col = Tensor::Parameter(RandomMatrix(4, 1, &rng));
  Tensor scalar = Tensor::Parameter(RandomMatrix(1, 1, &rng));
  auto loss = [&]() {
    return SumSquares(Add(Add(a, col), scalar));
  };
  CheckGradient(loss, col);
  col.ZeroGrad();
  scalar.ZeroGrad();
  a.ZeroGrad();
  CheckGradient(loss, scalar);
}

TEST(TensorGradTest, SubBroadcast) {
  Rng rng(5);
  Tensor a = Tensor::Parameter(RandomMatrix(3, 3, &rng));
  Tensor row = Tensor::Parameter(RandomMatrix(1, 3, &rng));
  auto loss = [&]() { return SumSquares(Sub(a, row)); };
  CheckGradient(loss, row);
}

TEST(TensorGradTest, MulElementwiseAndBroadcast) {
  Rng rng(6);
  Tensor a = Tensor::Parameter(RandomMatrix(3, 4, &rng));
  Tensor b = Tensor::Parameter(RandomMatrix(3, 4, &rng));
  auto loss = [&]() { return Sum(Mul(a, b)); };
  CheckGradient(loss, a);
  a.ZeroGrad();
  b.ZeroGrad();
  CheckGradient(loss, b);

  Tensor col = Tensor::Parameter(RandomMatrix(3, 1, &rng));
  auto loss2 = [&]() { return SumSquares(Mul(a, col)); };
  a.ZeroGrad();
  CheckGradient(loss2, col);
}

TEST(TensorGradTest, ScaleAndAddScalar) {
  Rng rng(7);
  Tensor a = Tensor::Parameter(RandomMatrix(2, 3, &rng));
  auto loss = [&]() { return SumSquares(AddScalar(Scale(a, 2.5), -1.0)); };
  CheckGradient(loss, a);
}

TEST(TensorGradTest, Activations) {
  Rng rng(8);
  // Shift away from 0 to avoid the ReLU kink in the numerical check.
  Matrix init = RandomMatrix(3, 3, &rng);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (std::fabs(init(r, c)) < 0.05) init(r, c) = 0.1;
    }
  }
  Tensor a = Tensor::Parameter(init);
  CheckGradient([&]() { return SumSquares(Relu(a)); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(LeakyRelu(a, 0.2)); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(Sigmoid(a)); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(Tanh(a)); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(Exp(a)); }, a, 1e-4);
}

TEST(TensorGradTest, MaskedRowSoftmax) {
  Rng rng(9);
  Tensor logits = Tensor::Parameter(RandomMatrix(4, 4, &rng));
  Matrix mask(4, 4, 0.0);
  for (int i = 0; i < 4; ++i) {
    mask(i, i) = 1.0;
    mask(i, (i + 1) % 4) = 1.0;
    mask(i, (i + 2) % 4) = 1.0;
  }
  Tensor weights = Tensor::Constant(RandomMatrix(4, 4, &rng));
  auto loss = [&]() {
    return SumSquares(Mul(MaskedRowSoftmax(logits, mask), weights));
  };
  CheckGradient(loss, logits, 1e-5);
}

TEST(TensorGradTest, ConcatColsAndRows) {
  Rng rng(10);
  Tensor a = Tensor::Parameter(RandomMatrix(3, 2, &rng));
  Tensor b = Tensor::Parameter(RandomMatrix(3, 4, &rng));
  auto loss = [&]() { return SumSquares(ConcatCols({a, b})); };
  CheckGradient(loss, a);
  a.ZeroGrad();
  b.ZeroGrad();
  CheckGradient(loss, b);

  Tensor c = Tensor::Parameter(RandomMatrix(2, 3, &rng));
  Tensor d = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  auto loss2 = [&]() { return SumSquares(ConcatRows({c, d})); };
  CheckGradient(loss2, c);
  c.ZeroGrad();
  d.ZeroGrad();
  CheckGradient(loss2, d);
}

TEST(TensorGradTest, SliceRows) {
  Rng rng(11);
  Tensor a = Tensor::Parameter(RandomMatrix(5, 3, &rng));
  auto loss = [&]() { return SumSquares(SliceRows(a, 1, 4)); };
  CheckGradient(loss, a);
}

TEST(TensorGradTest, ReductionsAndRowDot) {
  Rng rng(12);
  Tensor a = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  Tensor b = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  CheckGradient([&]() { return Mean(a); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(RowSums(a)); }, a);
  a.ZeroGrad();
  CheckGradient([&]() { return SumSquares(RowDot(a, b)); }, a);
  a.ZeroGrad();
  b.ZeroGrad();
  CheckGradient([&]() { return SumSquares(RowDot(a, b)); }, b);
}

TEST(TensorGradTest, MseLoss) {
  Rng rng(13);
  Tensor pred = Tensor::Parameter(RandomMatrix(6, 1, &rng));
  Tensor target = Tensor::Constant(RandomMatrix(6, 1, &rng));
  CheckGradient([&]() { return MseLoss(pred, target); }, pred);
}

TEST(TensorGradTest, SharedSubexpressionAccumulates) {
  // loss = sum((a + a)^2): d/da = 8a.
  Tensor a = Tensor::Parameter(Matrix{{1.0, -2.0}});
  Tensor loss = SumSquares(Add(a, a));
  Backward(loss);
  EXPECT_NEAR(a.grad()(0, 0), 8.0, 1e-12);
  EXPECT_NEAR(a.grad()(0, 1), -16.0, 1e-12);
}

TEST(TensorGradTest, DiamondGraph) {
  // b = 2a; c = 3a; loss = sum(b * c) = sum(6 a^2): d/da = 12a.
  Tensor a = Tensor::Parameter(Matrix{{2.0}});
  Tensor loss = Sum(Mul(Scale(a, 2.0), Scale(a, 3.0)));
  Backward(loss);
  EXPECT_NEAR(a.grad()(0, 0), 24.0, 1e-12);
}

TEST(TensorGradTest, ConstantsReceiveNoParents) {
  Tensor a = Tensor::Constant(Matrix{{1.0}});
  Tensor b = Tensor::Constant(Matrix{{2.0}});
  Tensor c = Mul(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.node()->parents.empty());
}

TEST(TensorGradTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::Parameter(Matrix{{3.0}});
  Tensor loss1 = SumSquares(a);
  Backward(loss1);
  EXPECT_NEAR(a.grad()(0, 0), 6.0, 1e-12);
  Tensor loss2 = SumSquares(a);
  Backward(loss2);
  EXPECT_NEAR(a.grad()(0, 0), 12.0, 1e-12);
  a.ZeroGrad();
  EXPECT_NEAR(a.grad()(0, 0), 0.0, 1e-12);
}

// --- Dropout ----------------------------------------------------------------

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(14);
  Tensor a = Tensor::Parameter(RandomMatrix(5, 5, &rng));
  Tensor out = Dropout(a, 0.5, /*training=*/false, nullptr);
  EXPECT_EQ(out.value(), a.value());
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  Rng rng(15);
  Tensor a = Tensor::Constant(Matrix(50, 50, 1.0));
  Tensor out = Dropout(a, 0.4, /*training=*/true, &rng);
  int zeros = 0;
  for (int r = 0; r < 50; ++r) {
    for (int c = 0; c < 50; ++c) {
      const double v = out.value()(r, c);
      if (v == 0.0) {
        ++zeros;
      } else {
        EXPECT_NEAR(v, 1.0 / 0.6, 1e-12);
      }
    }
  }
  EXPECT_NEAR(zeros / 2500.0, 0.4, 0.05);
}

TEST(DropoutTest, ExpectationPreserved) {
  Rng rng(16);
  Tensor a = Tensor::Constant(Matrix(200, 200, 1.0));
  Tensor out = Dropout(a, 0.3, /*training=*/true, &rng);
  EXPECT_NEAR(out.value().Mean(), 1.0, 0.02);
}

}  // namespace
}  // namespace ams::tensor
