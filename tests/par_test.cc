// Tests for the shared thread-pool layer (src/par): ParallelFor coverage and
// chunking, exception propagation, shutdown draining, nested-call safety on
// a saturated pool, and the determinism guarantee the hot loops are rewired
// against — bit-identical GEMM and experiment results for any thread count.
//
// Run under -DAMS_SANITIZE=thread to validate the pool and the instrumented
// hot loops race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "models/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace ams::par {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesFollowGrainOnly) {
  // Chunk boundaries are a pure function of (begin, end, grain), never of
  // the worker count — the determinism guarantee rests on this.
  for (int parallelism : {1, 2, 8}) {
    ThreadPool pool(parallelism);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(3, 50, /*grain=*/10, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({begin, end});
    });
    const std::set<std::pair<int64_t, int64_t>> expected = {
        {3, 13}, {13, 23}, {23, 33}, {33, 43}, {43, 50}};
    EXPECT_EQ(chunks, expected) << "parallelism " << parallelism;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 64, 1, [&](int64_t begin, int64_t) {
      if (begin == 13) throw std::runtime_error("boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // All other chunks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, SubmitCapturesExceptionInFuture) {
  ThreadPool pool(2);
  std::future<void> result =
      pool.Submit([]() -> void { throw std::logic_error("submit failed"); });
  EXPECT_THROW(result.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ConstructionPublishesPoolSizeGauge) {
  // The periodic reporter derives par/pool_utilization{pool=N} from this
  // per-pool labeled gauge; two pools no longer clobber each other.
  ThreadPool pool(3);
  ThreadPool other(2);
  EXPECT_NE(pool.pool_id(), other.pool_id());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  EXPECT_EQ(registry
                .GetGauge("par/pool_size",
                          {{"pool", std::to_string(pool.pool_id())}})
                .value(),
            3.0);
  EXPECT_EQ(registry
                .GetGauge("par/pool_size",
                          {{"pool", std::to_string(other.pool_id())}})
                .value(),
            2.0);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 10, 3, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlockSaturatedPool) {
  // Every outer chunk immediately issues an inner ParallelFor; with only
  // two threads the inner calls must make progress on whatever thread runs
  // them (chunks are claimed, not awaited from the queue).
  ThreadPool pool(2);
  std::atomic<int> inner_iterations{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
      inner_iterations.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_iterations.load(), 64);
}

TEST(ThreadPoolTest, TasksInheritSubmitterTraceContext) {
  // Every task enqueued while a span is active joins that span's trace —
  // the cross-thread half of request-causal tracing. Validated under
  // -DAMS_SANITIZE=thread like the rest of this file.
  obs::TraceBuffer& buffer = obs::TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  ThreadPool pool(4);
  obs::TraceContext submit_ctx;
  {
    AMS_TRACE_SPAN("par_ctx_test/submit");
    submit_ctx = obs::CurrentTraceContext();
    pool.ParallelFor(0, 16, /*grain=*/1, [](int64_t, int64_t) {
      AMS_TRACE_SPAN("par_ctx_test/chunk");
    });
    pool.Submit([] { AMS_TRACE_SPAN("par_ctx_test/task"); }).get();
  }
  buffer.SetEnabled(false);

  int linked = 0;
  for (const obs::SpanRecord& span : buffer.Snapshot()) {
    const std::string name = span.name;
    if (name != "par_ctx_test/chunk" && name != "par_ctx_test/task") {
      continue;
    }
    EXPECT_EQ(span.trace_id, submit_ctx.trace_id) << name;
    EXPECT_EQ(span.parent_id, submit_ctx.span_id) << name;
    ++linked;
  }
  EXPECT_EQ(linked, 17);  // 16 chunks + 1 submitted task
  buffer.Clear();
}

TEST(ThreadPoolTest, ParallelismFromEnvPrefersAmsThreads) {
  ::setenv("AMS_THREADS", "5", 1);
  EXPECT_EQ(ParallelismFromEnv(), 5);
  ::setenv("AMS_THREADS", "not-a-number", 1);
  EXPECT_GE(ParallelismFromEnv(), 1);  // falls back to hardware concurrency
  ::unsetenv("AMS_THREADS");
  EXPECT_GE(ParallelismFromEnv(), 1);
}

// ---------------------------------------------------------------------------
// Determinism: the rewired hot loops must be bit-identical for any thread
// count. These tests flip the default pool's size around real workloads.

la::Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  la::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

TEST(ParDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(123);
  // 160 * 130 * 170 > the parallel-dispatch threshold, so the pooled path
  // is live.
  la::Matrix a = RandomMatrix(160, 130, &rng);
  la::Matrix b = RandomMatrix(130, 170, &rng);
  la::Matrix c = RandomMatrix(160, 170, &rng);
  SetDefaultParallelism(1);
  const la::Matrix serial_ab = a.MatMul(b);
  const la::Matrix serial_atc = a.TransposeMatMul(c);
  const la::Matrix serial_aat = a.MatMulTranspose(a);
  SetDefaultParallelism(8);
  EXPECT_TRUE(a.MatMul(b) == serial_ab);
  EXPECT_TRUE(a.TransposeMatMul(c) == serial_atc);
  EXPECT_TRUE(a.MatMulTranspose(a) == serial_aat);
  SetDefaultParallelism(0);  // back to the environment default
}

models::ExperimentConfig DeterminismConfig() {
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = 42;
  config.hpo_trials = 2;
  // Ridge exercises the GEMM path, XGBoost the parallel split search, and
  // both go through parallel HPO and the pooled per-model experiment loop.
  config.model_filter = {"Ridge", "XGBoost"};
  return config;
}

data::Panel DeterminismPanel() {
  data::GeneratorConfig config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, 42);
  config.num_companies = 12;
  config.num_sectors = 3;
  return data::GenerateMarket(config).MoveValue();
}

TEST(ParDeterminismTest, ExperimentFoldMetricsBitIdenticalAcrossThreadCounts) {
  const data::Panel panel = DeterminismPanel();
  SetDefaultParallelism(1);
  auto serial = models::RunExperimentOnPanel(panel, DeterminismConfig());
  ASSERT_TRUE(serial.ok()) << serial.status();
  SetDefaultParallelism(8);
  auto parallel = models::RunExperimentOnPanel(panel, DeterminismConfig());
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  SetDefaultParallelism(0);

  const models::ExperimentResult& a = serial.ValueOrDie();
  const models::ExperimentResult& b = parallel.ValueOrDie();
  ASSERT_EQ(a.models.size(), b.models.size());
  for (size_t m = 0; m < a.models.size(); ++m) {
    ASSERT_EQ(a.models[m].folds.size(), b.models[m].folds.size())
        << a.models[m].name;
    for (size_t f = 0; f < a.models[m].folds.size(); ++f) {
      const models::FoldOutcome& fa = a.models[m].folds[f];
      const models::FoldOutcome& fb = b.models[m].folds[f];
      // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
      EXPECT_EQ(fa.eval.ba, fb.eval.ba) << a.models[m].name << " fold " << f;
      EXPECT_EQ(fa.eval.sr, fb.eval.sr) << a.models[m].name << " fold " << f;
      EXPECT_EQ(fa.hpo_valid_rmse, fb.hpo_valid_rmse)
          << a.models[m].name << " fold " << f;
      ASSERT_EQ(fa.predicted_ur.size(), fb.predicted_ur.size());
      for (size_t i = 0; i < fa.predicted_ur.size(); ++i) {
        EXPECT_EQ(fa.predicted_ur[i], fb.predicted_ur[i])
            << a.models[m].name << " fold " << f << " sample " << i;
      }
    }
  }
}

}  // namespace
}  // namespace ams::par
