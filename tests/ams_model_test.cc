// Tests for the core AMS model: training contract, anchor behaviour,
// regularizer switches, slave-coefficient extraction (interpretability) and
// the dataset-layout requirements.
#include <gtest/gtest.h>

#include <cmath>

#include "ams/ams_model.h"
#include "data/cv.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "linear/linear_model.h"

namespace ams::core {
namespace {

class AmsModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 24;  // smaller panel keeps tests fast
    config.num_sectors = 4;
    panel_ = data::GenerateMarket(config).MoveValue();

    data::FeatureBuilder builder(&panel_, data::FeatureOptions{});
    train_ = builder.Build({4, 5, 6, 7, 8}).MoveValue();
    valid_ = builder.Build({9}).MoveValue();
    test_ = builder.Build({10}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train_);
    standardizer.Apply(&train_);
    standardizer.Apply(&valid_);
    standardizer.Apply(&test_);

    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph_ = graph::CompanyGraph::BuildFromRevenue(
                 panel_.RevenueHistories(8), graph_options)
                 .MoveValue();
  }

  AmsConfig FastConfig() const {
    AmsConfig config;
    config.node_transform_layers = {16};
    config.gat.hidden_per_head = {4};
    config.gat.num_heads = 2;
    config.gat.out_features = 8;
    config.generator_hidden = {16};
    config.max_epochs = 40;
    config.patience = 10;
    return config;
  }

  data::Panel panel_;
  data::Dataset train_, valid_, test_;
  graph::CompanyGraph graph_ = [] {
    return graph::CompanyGraph::BuildFromRevenue(
               {{1, 2, 3, 4}, {2, 3, 4, 5}},
               graph::CorrelationGraphOptions{1, true, 3})
        .MoveValue();
  }();
};

TEST_F(AmsModelTest, FitAndPredictShapes) {
  AmsModel model(FastConfig());
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  auto pred = model.Predict(test_);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred.ValueOrDie().size(),
            static_cast<size_t>(test_.num_samples()));
  for (double p : pred.ValueOrDie()) EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(model.epochs_run(), 0);
}

TEST_F(AmsModelTest, AnchoredCoefficientsMatchStandaloneRidge) {
  AmsConfig config = FastConfig();
  config.anchored_alpha = 0.25;
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  auto ridge = linear::LinearModel::FitRidge(train_.x, train_.TargetMatrix(),
                                             0.25);
  ASSERT_TRUE(ridge.ok());
  const la::Matrix& anchor = model.anchored_coefficients();
  for (int j = 0; j < train_.num_features(); ++j) {
    EXPECT_NEAR(anchor(j, 0), ridge.ValueOrDie().coefficients()(j, 0),
                1e-9);
  }
  EXPECT_NEAR(anchor(train_.num_features(), 0),
              ridge.ValueOrDie().intercept(), 1e-9);
}

TEST_F(AmsModelTest, SlaveCoefficientsShapeAndUseInPrediction) {
  AmsModel model(FastConfig());
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  auto coeffs = model.SlaveCoefficients(test_);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_EQ(coeffs.ValueOrDie().rows(), test_.num_samples());
  EXPECT_EQ(coeffs.ValueOrDie().cols(), test_.num_features() + 1);
  // Predictions must equal X_i . beta_i + intercept_i exactly.
  auto pred = model.Predict(test_).MoveValue();
  for (int r = 0; r < test_.num_samples(); ++r) {
    double acc = coeffs.ValueOrDie()(r, test_.num_features());
    for (int c = 0; c < test_.num_features(); ++c) {
      acc += test_.x(r, c) * coeffs.ValueOrDie()(r, c);
    }
    EXPECT_NEAR(pred[r], acc, 1e-9);
  }
}

TEST_F(AmsModelTest, SlaveCoefficientsDifferAcrossCompanies) {
  // The point of AMS (Fig. 8): per-company weights are not all identical.
  AmsConfig config = FastConfig();
  config.max_epochs = 120;
  config.patience = 120;  // force adaptation
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  auto coeffs = model.SlaveCoefficients(test_).MoveValue();
  double spread = 0.0;
  for (int c = 0; c < coeffs.cols(); ++c) {
    double lo = coeffs(0, c), hi = coeffs(0, c);
    for (int r = 1; r < coeffs.rows(); ++r) {
      lo = std::min(lo, coeffs(r, c));
      hi = std::max(hi, coeffs(r, c));
    }
    spread += hi - lo;
  }
  EXPECT_GT(spread, 0.0);
}

TEST_F(AmsModelTest, DeterministicForSeed) {
  AmsConfig config = FastConfig();
  config.seed = 123;
  AmsModel a(config), b(config);
  ASSERT_TRUE(a.Fit(train_, valid_, graph_).ok());
  ASSERT_TRUE(b.Fit(train_, valid_, graph_).ok());
  auto pa = a.Predict(test_).MoveValue();
  auto pb = b.Predict(test_).MoveValue();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST_F(AmsModelTest, GammaOneDisablesAssembly) {
  AmsConfig config = FastConfig();
  config.gamma = 1.0;
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  EXPECT_TRUE(model.Predict(test_).ok());
}

TEST_F(AmsModelTest, NoGatVariantTrains) {
  AmsConfig config = FastConfig();
  config.use_gat = false;
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  EXPECT_TRUE(model.Predict(test_).ok());
}

TEST_F(AmsModelTest, ZeroLambdaSlgTrains) {
  AmsConfig config = FastConfig();
  config.lambda_slg = 0.0;
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
}

TEST_F(AmsModelTest, RejectsInvalidConfig) {
  AmsConfig config = FastConfig();
  config.gamma = 1.5;
  EXPECT_FALSE(AmsModel(config).Fit(train_, valid_, graph_).ok());
  config = FastConfig();
  config.lambda_slg = -0.1;
  EXPECT_FALSE(AmsModel(config).Fit(train_, valid_, graph_).ok());
}

TEST_F(AmsModelTest, RejectsPredictBeforeFit) {
  AmsModel model(FastConfig());
  EXPECT_FALSE(model.Predict(test_).ok());
  EXPECT_FALSE(model.SlaveCoefficients(test_).ok());
}

TEST_F(AmsModelTest, RejectsMisalignedQuarterLayout) {
  AmsModel model(FastConfig());
  // Drop one sample: the quarter no longer has one row per company.
  data::Dataset bad = train_;
  bad.x = bad.x.SliceRows(0, bad.x.rows() - 1);
  bad.y.pop_back();
  bad.meta.pop_back();
  EXPECT_FALSE(model.Fit(bad, valid_, graph_).ok());
}

TEST_F(AmsModelTest, AnchorGuardKeepsValidLossAtOrBelowAnchor) {
  // best_valid_loss must never exceed the anchored LR's validation MSE
  // (the initial state is an early-stopping candidate).
  AmsConfig config = FastConfig();
  config.anchored_alpha = 0.1;
  AmsModel model(config);
  ASSERT_TRUE(model.Fit(train_, valid_, graph_).ok());
  auto ridge = linear::LinearModel::FitRidge(train_.x, train_.TargetMatrix(),
                                             0.1)
                   .MoveValue();
  auto anchor_pred = ridge.Predict(valid_.x).MoveValue();
  double anchor_mse = 0.0;
  for (int r = 0; r < valid_.num_samples(); ++r) {
    anchor_mse += std::pow(anchor_pred[r] - valid_.y[r], 2);
  }
  anchor_mse /= valid_.num_samples();
  EXPECT_LE(model.best_valid_loss(), anchor_mse + 1e-9);
}

}  // namespace
}  // namespace ams::core
