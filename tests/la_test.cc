// Tests for src/la: Matrix kernels, Cholesky/ridge solvers, statistics and
// significance tests.
#include <gtest/gtest.h>

#include <cmath>

#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/stats.h"
#include "util/rng.h"

namespace ams::la {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

// --- Matrix basics ----------------------------------------------------------

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(MatrixTest, IdentityAndVectors) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  Matrix col = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3);
  EXPECT_EQ(col.cols(), 1);
  Matrix row = Matrix::RowVector({1, 2});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 2);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 0), 33);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 1), 18);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8);
  Matrix had = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(had(0, 0), 10);
  EXPECT_DOUBLE_EQ(had(1, 1), 160);
}

TEST(MatrixTest, MatMulMatchesHandComputed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeMatMulAgreesWithExplicitTranspose) {
  Rng rng(1);
  Matrix a = RandomMatrix(7, 4, &rng);
  Matrix b = RandomMatrix(7, 5, &rng);
  Matrix direct = a.TransposeMatMul(b);
  Matrix reference = a.Transposed().MatMul(b);
  EXPECT_LT(direct.MaxAbsDiff(reference), 1e-12);
}

TEST(MatrixTest, MatMulTransposeAgreesWithExplicitTranspose) {
  Rng rng(2);
  Matrix a = RandomMatrix(6, 4, &rng);
  Matrix b = RandomMatrix(5, 4, &rng);
  Matrix direct = a.MatMulTranspose(b);
  Matrix reference = a.MatMul(b.Transposed());
  EXPECT_LT(direct.MaxAbsDiff(reference), 1e-12);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(3);
  Matrix a = RandomMatrix(4, 9, &rng);
  EXPECT_EQ(a.Transposed().Transposed(), a);
}

TEST(MatrixTest, SliceRowsAndCols) {
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix rows = a.SliceRows(1, 3);
  EXPECT_EQ(rows.rows(), 2);
  EXPECT_DOUBLE_EQ(rows(0, 0), 4);
  Matrix cols = a.SliceCols(2, 3);
  EXPECT_EQ(cols.cols(), 1);
  EXPECT_DOUBLE_EQ(cols(1, 0), 6);
}

TEST(MatrixTest, StackingRoundTrip) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}};
  Matrix v = Matrix::VStack(a, b);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_DOUBLE_EQ(v(2, 1), 6);
  Matrix left{{1}, {2}};
  Matrix right{{3, 4}, {5, 6}};
  Matrix h = Matrix::HStack(left, right);
  EXPECT_EQ(h.cols(), 3);
  EXPECT_DOUBLE_EQ(h(1, 2), 6);
}

TEST(MatrixTest, StackWithEmptyOperandIsIdentityOp) {
  Matrix a{{1, 2}};
  EXPECT_EQ(Matrix::VStack(Matrix(), a), a);
  EXPECT_EQ(Matrix::HStack(a, Matrix()), a);
}

TEST(MatrixTest, Reductions) {
  Matrix a{{1, -2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.Sum(), 6);
  EXPECT_DOUBLE_EQ(a.Mean(), 1.5);
  EXPECT_DOUBLE_EQ(a.Min(), -2);
  EXPECT_DOUBLE_EQ(a.Max(), 4);
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(1.0 + 4 + 9 + 16));
  Matrix cs = a.ColSums();
  EXPECT_DOUBLE_EQ(cs(0, 0), 4);
  EXPECT_DOUBLE_EQ(cs(0, 1), 2);
  Matrix rs = a.RowSums();
  EXPECT_DOUBLE_EQ(rs(0, 0), -1);
  EXPECT_DOUBLE_EQ(rs(1, 0), 7);
}

TEST(MatrixTest, AllFiniteDetectsNan) {
  Matrix a{{1, 2}};
  EXPECT_TRUE(a.AllFinite());
  a(0, 1) = std::nan("");
  EXPECT_FALSE(a.AllFinite());
}

TEST(MatrixTest, DotProduct) {
  Matrix a = Matrix::ColumnVector({1, 2, 3});
  Matrix b = Matrix::ColumnVector({4, 5, 6});
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
}

// --- Solvers ----------------------------------------------------------------

TEST(CholeskyTest, FactorReconstructsMatrix) {
  Matrix a{{4, 2}, {2, 3}};
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix rebuilt = l.ValueOrDie().MatMulTranspose(l.ValueOrDie());
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-12);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Rng rng(4);
  Matrix base = RandomMatrix(6, 6, &rng);
  Matrix spd = base.TransposeMatMul(base) + Matrix::Identity(6) * 0.5;
  Matrix x_true = RandomMatrix(6, 2, &rng);
  Matrix b = spd.MatMul(x_true);
  auto x = CholeskySolve(spd, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(x.ValueOrDie().MaxAbsDiff(x_true), 1e-9);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a{{1, 2}, {2, 1}};  // indefinite
  EXPECT_FALSE(CholeskyFactor(a).ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(CholeskyFactor(rect).ok());
}

TEST(RidgeSolveTest, ZeroLambdaMatchesOls) {
  Rng rng(5);
  Matrix x = RandomMatrix(40, 3, &rng);
  Matrix beta_true = Matrix::ColumnVector({1.0, -2.0, 0.5});
  Matrix y = x.MatMul(beta_true);
  auto beta = RidgeSolve(x, y, 0.0);
  ASSERT_TRUE(beta.ok());
  EXPECT_LT(beta.ValueOrDie().MaxAbsDiff(beta_true), 1e-6);
}

TEST(RidgeSolveTest, LargeLambdaShrinksTowardZero) {
  Rng rng(6);
  Matrix x = RandomMatrix(40, 3, &rng);
  Matrix y = RandomMatrix(40, 1, &rng);
  auto beta = RidgeSolve(x, y, 1e6);
  ASSERT_TRUE(beta.ok());
  EXPECT_LT(std::fabs(beta.ValueOrDie().Max()), 1e-3);
}

TEST(RidgeSolveTest, UnpenalizedColumnStaysLarge) {
  Rng rng(7);
  const int n = 200;
  Matrix x(n, 2);
  Matrix y(n, 1);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = 1.0;  // intercept column
    y(r, 0) = 5.0 + 0.1 * x(r, 0);
  }
  auto beta = RidgeSolve(x, y, 1e4, /*unpenalized_col=*/1);
  ASSERT_TRUE(beta.ok());
  // Slope is crushed by the penalty; the unpenalized intercept is not.
  EXPECT_LT(std::fabs(beta.ValueOrDie()(0, 0)), 0.01);
  EXPECT_NEAR(beta.ValueOrDie()(1, 0), 5.0, 0.1);
}

// --- Statistics -------------------------------------------------------------

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(PopulationStdDev(v), 2.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(StatsTest, PearsonNearZeroForIndependent) {
  Rng rng(8);
  std::vector<double> a(5000), b(5000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.05);
}

TEST(StatsTest, LogGammaMatchesKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(StatsTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.37), 0.37, 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, 0.3),
              1.0 - RegularizedIncompleteBeta(4.0, 2.5, 0.7), 1e-10);
}

TEST(StatsTest, StudentTCdfReferenceValues) {
  // Known quantiles: t(0.975; 10) = 2.228.
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-1.3, 7), 1.0 - StudentTCdf(1.3, 7), 1e-12);
  // Large dof approaches the normal.
  EXPECT_NEAR(StudentTCdf(1.96, 10000), NormalCdf(1.96), 1e-3);
}

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.6449), 0.95, 1e-4);
}

TEST(TTestTest, PairedDetectsShift) {
  Rng rng(9);
  std::vector<double> a(30), b(30);
  for (int i = 0; i < 30; ++i) {
    const double base = rng.Normal();
    a[i] = base + 1.0 + 0.1 * rng.Normal();
    b[i] = base;
  }
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.ValueOrDie().p_value, 1e-6);
  EXPECT_GT(result.ValueOrDie().t_statistic, 10.0);
}

TEST(TTestTest, PairedNoDifferenceHighP) {
  Rng rng(10);
  std::vector<double> a(50), b(50);
  for (int i = 0; i < 50; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.ValueOrDie().p_value, 0.01);
}

TEST(TTestTest, ZeroVarianceDiffHandled) {
  auto same = PairedTTest({1, 2, 3}, {1, 2, 3});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(same.ValueOrDie().p_value, 1.0);
  auto shifted = PairedTTest({2, 3, 4}, {1, 2, 3});
  ASSERT_TRUE(shifted.ok());
  EXPECT_DOUBLE_EQ(shifted.ValueOrDie().p_value, 0.0);
}

TEST(TTestTest, RejectsBadInput) {
  EXPECT_FALSE(PairedTTest({1}, {1}).ok());
  EXPECT_FALSE(PairedTTest({1, 2}, {1}).ok());
}

// --- SIMD GEMM kernels ------------------------------------------------------
//
// The AVX2 microkernels promise bit-identical results to the scalar
// reference (gemm_kernels.h): vector lanes hold independent output columns,
// each accumulated in ascending k with separate multiply and add. Sweep odd
// shapes so both the vector body and the scalar tails are exercised.

void CheckKernelsBitIdentical(int n, int k, int m, Rng* rng) {
  const internal::GemmKernels& scalar = internal::ScalarGemmKernels();
  const internal::GemmKernels* avx2 = internal::Avx2GemmKernels();
  ASSERT_NE(avx2, nullptr);

  Matrix a = RandomMatrix(n, k, rng);
  Matrix b = RandomMatrix(k, m, rng);
  // Sprinkle zeros: the zero-skip branch is part of the FP contract.
  for (int r = 0; r < n; ++r) a(r, static_cast<int>(rng->UniformInt(k))) = 0.0;

  {
    Matrix c_s(n, m), c_v(n, m);
    scalar.matmul_rows(a.data(), b.data(), c_s.data(), 0, n, k, m);
    avx2->matmul_rows(a.data(), b.data(), c_v.data(), 0, n, k, m);
    EXPECT_TRUE(c_s == c_v) << "matmul " << n << "x" << k << "x" << m
                            << " max |diff| = " << c_s.MaxAbsDiff(c_v);
  }
  {
    // a^T (k x n)^T . b (k x m): kernel reads a as (k x n) stored row-major.
    Matrix at = RandomMatrix(k, n, rng);
    Matrix c_s(n, m), c_v(n, m);
    scalar.transpose_matmul_rows(at.data(), b.data(), c_s.data(), 0, n, k, n,
                                 m);
    avx2->transpose_matmul_rows(at.data(), b.data(), c_v.data(), 0, n, k, n,
                                m);
    EXPECT_TRUE(c_s == c_v) << "transpose_matmul " << n << "x" << k << "x"
                            << m << " max |diff| = " << c_s.MaxAbsDiff(c_v);
  }
  {
    // a (n x k) . bt (m x k)^T.
    Matrix bt = RandomMatrix(m, k, rng);
    Matrix c_s(n, m), c_v(n, m);
    scalar.matmul_transpose_rows(a.data(), bt.data(), c_s.data(), 0, n, k, m);
    avx2->matmul_transpose_rows(a.data(), bt.data(), c_v.data(), 0, n, k, m);
    EXPECT_TRUE(c_s == c_v) << "matmul_transpose " << n << "x" << k << "x"
                            << m << " max |diff| = " << c_s.MaxAbsDiff(c_v);
  }
}

TEST(SimdGemmTest, Avx2KernelsBitIdenticalToScalar) {
  if (internal::Avx2GemmKernels() == nullptr ||
      !internal::CpuSupportsAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable on this build/host";
  }
  Rng rng(77);
  // Odd sizes stress the 4-lane tails; larger ones cross the cache blocks.
  for (int n : {1, 3, 7}) {
    for (int k : {1, 5, 17}) {
      for (int m : {1, 2, 9, 130}) CheckKernelsBitIdentical(n, k, m, &rng);
    }
  }
  CheckKernelsBitIdentical(23, 70, 300, &rng);  // spans kGemmBlockK/J
}

TEST(SimdGemmTest, MatrixProductsMatchScalarKernels) {
  // End-to-end: whatever kernel dispatch picked, Matrix results must equal
  // an explicit scalar-kernel evaluation (on non-AVX2 hosts this is
  // trivially scalar-vs-scalar).
  Rng rng(78);
  Matrix a = RandomMatrix(33, 21, &rng);
  Matrix b = RandomMatrix(21, 18, &rng);
  const internal::GemmKernels& scalar = internal::ScalarGemmKernels();

  Matrix expected(33, 18);
  scalar.matmul_rows(a.data(), b.data(), expected.data(), 0, 33, 21, 18);
  EXPECT_TRUE(a.MatMul(b) == expected);

  Matrix expected_t(21, 18);
  Matrix bt(33, 18);
  for (int r = 0; r < 33; ++r) {
    for (int c = 0; c < 18; ++c) bt(r, c) = rng.Normal();
  }
  scalar.transpose_matmul_rows(a.data(), bt.data(), expected_t.data(), 0, 21,
                               33, 21, 18);
  EXPECT_TRUE(a.TransposeMatMul(bt) == expected_t);

  Matrix c = RandomMatrix(18, 21, &rng);
  Matrix expected_mt(33, 18);
  scalar.matmul_transpose_rows(a.data(), c.data(), expected_mt.data(), 0, 33,
                               21, 18);
  EXPECT_TRUE(a.MatMulTranspose(c) == expected_mt);
}

TEST(TTestTest, OneSampleAgainstMean) {
  auto result = OneSampleTTest({0.9, 1.1, 0.95, 1.05, 1.0}, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.ValueOrDie().p_value, 0.5);
  auto shifted = OneSampleTTest({1.9, 2.1, 1.95, 2.05, 2.0}, 1.0);
  ASSERT_TRUE(shifted.ok());
  EXPECT_LT(shifted.ValueOrDie().p_value, 1e-4);
}

}  // namespace
}  // namespace ams::la
