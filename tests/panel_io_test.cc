// Tests for panel CSV export/import (the interchange format for plugging in
// real alternative data).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/generator.h"
#include "data/features.h"
#include "data/panel_io.h"

namespace ams::data {
namespace {

Panel SmallPanel() {
  GeneratorConfig config =
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 42);
  config.num_companies = 6;
  config.num_quarters = 5;
  config.num_sectors = 3;
  return GenerateMarket(config).MoveValue();
}

TEST(PanelIoTest, CsvShape) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  EXPECT_EQ(table.header.size(), 9u + 1u);  // one alt channel
  EXPECT_EQ(table.header.back(), "alt0");
  EXPECT_EQ(table.rows.size(), 6u * 5u);
}

TEST(PanelIoTest, RoundTripPreservesEverything) {
  Panel panel = SmallPanel();
  auto restored = PanelFromCsv(PanelToCsv(panel),
                               DatasetProfile::kTransactionAmount);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const Panel& r = restored.ValueOrDie();
  EXPECT_EQ(r.num_companies(), panel.num_companies());
  EXPECT_EQ(r.num_quarters, panel.num_quarters);
  EXPECT_EQ(r.num_alt_channels, panel.num_alt_channels);
  EXPECT_EQ(r.num_sectors, panel.num_sectors);
  EXPECT_TRUE(r.start == panel.start);
  for (int i = 0; i < panel.num_companies(); ++i) {
    EXPECT_EQ(r.companies[i].name, panel.companies[i].name);
    EXPECT_EQ(r.companies[i].sector, panel.companies[i].sector);
    EXPECT_NEAR(r.companies[i].market_cap, panel.companies[i].market_cap,
                1e-5);
    for (int t = 0; t < panel.num_quarters; ++t) {
      const CompanyQuarter& a = panel.companies[i].quarters[t];
      const CompanyQuarter& b = r.companies[i].quarters[t];
      EXPECT_NEAR(b.revenue, a.revenue, 1e-4);
      EXPECT_NEAR(b.consensus, a.consensus, 1e-4);
      EXPECT_NEAR(b.low_estimate, a.low_estimate, 1e-4);
      EXPECT_NEAR(b.high_estimate, a.high_estimate, 1e-4);
      EXPECT_NEAR(b.alt[0], a.alt[0], 1e-4);
    }
  }
}

TEST(PanelIoTest, RoundTripThroughFile) {
  Panel panel = SmallPanel();
  const std::string path =
      (std::filesystem::temp_directory_path() / "ams_panel_io_test.csv")
          .string();
  ASSERT_TRUE(WritePanelCsv(path, panel).ok());
  auto restored = ReadPanelCsv(path, DatasetProfile::kTransactionAmount);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie().num_companies(), 6);
}

TEST(PanelIoTest, RowOrderIndependent) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  // Reverse the rows: import must reorder quarters within each company
  // (company order follows first appearance, so look up by name).
  std::reverse(table.rows.begin(), table.rows.end());
  auto restored = PanelFromCsv(table, DatasetProfile::kTransactionAmount);
  ASSERT_TRUE(restored.ok());
  const std::string& target = panel.companies.back().name;
  const Company* found = nullptr;
  for (const Company& company : restored.ValueOrDie().companies) {
    if (company.name == target) found = &company;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_NEAR(found->quarters[0].revenue,
              panel.companies.back().quarters[0].revenue, 1e-4);
}

TEST(PanelIoTest, MultiChannelRoundTrip) {
  GeneratorConfig config =
      GeneratorConfig::Defaults(DatasetProfile::kMapQuery, 7);
  config.num_companies = 4;
  config.num_quarters = 5;
  config.num_sectors = 2;
  Panel panel = GenerateMarket(config).MoveValue();
  auto restored =
      PanelFromCsv(PanelToCsv(panel), DatasetProfile::kMapQuery);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie().num_alt_channels, 2);
  EXPECT_NEAR(restored.ValueOrDie().companies[1].quarters[2].alt[1],
              panel.companies[1].quarters[2].alt[1], 1e-4);
}

TEST(PanelIoTest, RejectsBadHeader) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  table.header[0] = "firm";
  EXPECT_FALSE(
      PanelFromCsv(table, DatasetProfile::kTransactionAmount).ok());
  CsvTable no_alt = PanelToCsv(panel);
  no_alt.header.pop_back();
  for (auto& row : no_alt.rows) row.pop_back();
  EXPECT_FALSE(
      PanelFromCsv(no_alt, DatasetProfile::kTransactionAmount).ok());
}

TEST(PanelIoTest, RejectsMisalignedQuarters) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  table.rows.pop_back();  // one company now misses a quarter
  EXPECT_FALSE(
      PanelFromCsv(table, DatasetProfile::kTransactionAmount).ok());
}

TEST(PanelIoTest, RejectsNonContiguousQuarters) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  // Shift one row's quarter far into the future.
  table.rows[2][3] = "2030";
  EXPECT_FALSE(
      PanelFromCsv(table, DatasetProfile::kTransactionAmount).ok());
}

TEST(PanelIoTest, RejectsGarbageNumbers) {
  Panel panel = SmallPanel();
  CsvTable table = PanelToCsv(panel);
  table.rows[0][5] = "not-a-number";
  EXPECT_FALSE(
      PanelFromCsv(table, DatasetProfile::kTransactionAmount).ok());
}

TEST(PanelIoTest, RejectsEmptyTable) {
  CsvTable table;
  table.header = {"company", "sector",    "market_cap",   "year",
                  "quarter", "revenue",   "consensus",    "low_estimate",
                  "high_estimate", "alt0"};
  EXPECT_FALSE(
      PanelFromCsv(table, DatasetProfile::kTransactionAmount).ok());
}

TEST(PanelIoTest, ImportedPanelWorksWithFeatureBuilder) {
  Panel panel = SmallPanel();
  auto restored = PanelFromCsv(PanelToCsv(panel),
                               DatasetProfile::kTransactionAmount)
                      .MoveValue();
  data::FeatureBuilder builder(&restored, data::FeatureOptions{});
  auto dataset = builder.Build({4});
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.ValueOrDie().num_samples(), 6);
}

}  // namespace
}  // namespace ams::data
