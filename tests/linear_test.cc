// Tests for the linear model family: OLS/Ridge closed form, ElasticNet
// coordinate descent, sparsity behaviour and parameterized regularization
// sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "linear/linear_model.h"
#include "util/rng.h"

namespace ams::linear {
namespace {

using la::Matrix;

struct SyntheticRegression {
  Matrix x;
  Matrix y;
  std::vector<double> beta_true;
  double intercept_true;
};

SyntheticRegression MakeProblem(int n, int p, double noise, uint64_t seed,
                                int active = -1) {
  Rng rng(seed);
  SyntheticRegression problem;
  problem.x = Matrix(n, p);
  problem.y = Matrix(n, 1);
  problem.beta_true.assign(p, 0.0);
  const int num_active = active < 0 ? p : active;
  for (int j = 0; j < num_active; ++j) {
    problem.beta_true[j] = (j % 2 == 0 ? 1.0 : -1.0) * (1.0 + j * 0.25);
  }
  problem.intercept_true = 0.7;
  for (int r = 0; r < n; ++r) {
    double acc = problem.intercept_true;
    for (int c = 0; c < p; ++c) {
      problem.x(r, c) = rng.Normal();
      acc += problem.x(r, c) * problem.beta_true[c];
    }
    problem.y(r, 0) = acc + noise * rng.Normal();
  }
  return problem;
}

TEST(OlsTest, RecoversNoiselessCoefficients) {
  auto problem = MakeProblem(100, 4, 0.0, 1);
  auto model = LinearModel::FitOls(problem.x, problem.y);
  ASSERT_TRUE(model.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(model.ValueOrDie().coefficients()(j, 0),
                problem.beta_true[j], 1e-6);
  }
  EXPECT_NEAR(model.ValueOrDie().intercept(), problem.intercept_true, 1e-6);
}

TEST(OlsTest, NoInterceptVariant) {
  auto problem = MakeProblem(80, 3, 0.0, 2);
  auto model =
      LinearModel::FitOls(problem.x, problem.y, /*fit_intercept=*/false);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model.ValueOrDie().intercept(), 0.0);
}

TEST(RidgeTest, ShrinkageMonotoneInAlpha) {
  auto problem = MakeProblem(60, 5, 0.5, 3);
  double previous_norm = 1e9;
  for (double alpha : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    auto model = LinearModel::FitRidge(problem.x, problem.y, alpha);
    ASSERT_TRUE(model.ok());
    const double norm = model.ValueOrDie().coefficients().Norm();
    EXPECT_LE(norm, previous_norm + 1e-9);
    previous_norm = norm;
  }
}

TEST(RidgeTest, HandlesRankDeficientDesign) {
  Rng rng(4);
  Matrix x(30, 3);
  Matrix y(30, 1);
  for (int r = 0; r < 30; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = 2.0 * x(r, 0);  // perfectly collinear
    x(r, 2) = rng.Normal();
    y(r, 0) = x(r, 0) + x(r, 2);
  }
  auto model = LinearModel::FitRidge(x, y, 0.01);
  ASSERT_TRUE(model.ok());
  auto pred = model.ValueOrDie().Predict(x);
  ASSERT_TRUE(pred.ok());
}

TEST(RidgeTest, RejectsBadInput) {
  Matrix x(3, 2, 1.0);
  Matrix y(2, 1, 1.0);
  EXPECT_FALSE(LinearModel::FitRidge(x, y, 1.0).ok());  // row mismatch
  Matrix y3(3, 1, 1.0);
  EXPECT_FALSE(LinearModel::FitRidge(x, y3, -1.0).ok());  // negative alpha
  Matrix empty;
  EXPECT_FALSE(LinearModel::FitRidge(empty, y3, 1.0).ok());
  Matrix x_nan = x;
  x_nan(0, 0) = std::nan("");
  EXPECT_FALSE(LinearModel::FitRidge(x_nan, y3, 1.0).ok());
}

TEST(ElasticNetTest, LassoRecoversSparseSupport) {
  // 8 features, only 2 active; Lasso should zero most inactive ones.
  auto problem = MakeProblem(200, 8, 0.1, 5, /*active=*/2);
  LinearOptions options;
  options.alpha = 0.05;
  options.l1_ratio = 1.0;
  auto model = LinearModel::FitElasticNet(problem.x, problem.y, options);
  ASSERT_TRUE(model.ok());
  const LinearModel& m = model.ValueOrDie();
  EXPECT_GE(m.NumZeroCoefficients(1e-8), 4);
  // Active coefficients survive with roughly the right values.
  EXPECT_NEAR(m.coefficients()(0, 0), problem.beta_true[0], 0.2);
  EXPECT_NEAR(m.coefficients()(1, 0), problem.beta_true[1], 0.2);
}

TEST(ElasticNetTest, ZeroAlphaMatchesOls) {
  auto problem = MakeProblem(100, 4, 0.2, 6);
  LinearOptions options;
  options.alpha = 0.0;
  options.l1_ratio = 0.5;
  options.max_iterations = 5000;
  auto enet = LinearModel::FitElasticNet(problem.x, problem.y, options);
  auto ols = LinearModel::FitOls(problem.x, problem.y);
  ASSERT_TRUE(enet.ok() && ols.ok());
  EXPECT_LT(enet.ValueOrDie().coefficients().MaxAbsDiff(
                ols.ValueOrDie().coefficients()),
            1e-4);
}

TEST(ElasticNetTest, HugeAlphaZeroesEverything) {
  auto problem = MakeProblem(100, 4, 0.2, 7);
  LinearOptions options;
  options.alpha = 1e4;
  options.l1_ratio = 1.0;
  auto model = LinearModel::FitElasticNet(problem.x, problem.y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.ValueOrDie().NumZeroCoefficients(), 4);
  // Prediction falls back to the mean of y.
  auto pred = model.ValueOrDie().Predict(problem.x);
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred.ValueOrDie()[0], problem.y.Mean(), 1e-9);
}

TEST(ElasticNetTest, RejectsBadHyperparameters) {
  auto problem = MakeProblem(20, 2, 0.1, 8);
  LinearOptions options;
  options.alpha = -1.0;
  EXPECT_FALSE(
      LinearModel::FitElasticNet(problem.x, problem.y, options).ok());
  options.alpha = 1.0;
  options.l1_ratio = 1.5;
  EXPECT_FALSE(
      LinearModel::FitElasticNet(problem.x, problem.y, options).ok());
}

TEST(LinearModelTest, PredictValidation) {
  LinearModel unfitted;
  EXPECT_FALSE(unfitted.Predict(Matrix(2, 2, 1.0)).ok());
  auto problem = MakeProblem(30, 3, 0.1, 9);
  auto model = LinearModel::FitOls(problem.x, problem.y);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.ValueOrDie().Predict(Matrix(2, 5, 1.0)).ok());
}

// Parameterized sweep: ElasticNet across the l1_ratio grid must always
// produce finite coefficients and train MSE no worse than the null model.
class ElasticNetSweep : public ::testing::TestWithParam<double> {};

TEST_P(ElasticNetSweep, TrainMseBeatsNullModel) {
  auto problem = MakeProblem(150, 6, 0.3, 10);
  LinearOptions options;
  options.alpha = 0.01;
  options.l1_ratio = GetParam();
  auto model = LinearModel::FitElasticNet(problem.x, problem.y, options);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.ValueOrDie().coefficients().AllFinite());
  auto pred = model.ValueOrDie().Predict(problem.x);
  ASSERT_TRUE(pred.ok());
  const double y_mean = problem.y.Mean();
  double mse = 0.0;
  double null_mse = 0.0;
  for (int r = 0; r < problem.y.rows(); ++r) {
    mse += std::pow(pred.ValueOrDie()[r] - problem.y(r, 0), 2);
    null_mse += std::pow(y_mean - problem.y(r, 0), 2);
  }
  EXPECT_LT(mse, null_mse);
}

INSTANTIATE_TEST_SUITE_P(L1RatioGrid, ElasticNetSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace ams::linear
