// Tests for the GAT implementation: shapes, attention normalization,
// locality (masked nodes cannot influence each other), permutation
// behaviour, and end-to-end gradient flow.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams::gnn {
namespace {

using la::Matrix;
using tensor::Tensor;

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

Matrix RingMask(int n, int neighbors) {
  Matrix mask(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    mask(i, i) = 1.0;
    for (int k = 1; k <= neighbors; ++k) {
      mask(i, (i + k) % n) = 1.0;
      mask(i, (i - k + n) % n) = 1.0;
    }
  }
  return mask;
}

TEST(GatLayerTest, OutputShapeConcatHeads) {
  Rng rng(1);
  GatLayer layer(8, 5, 3, nn::Activation::kRelu, &rng);
  EXPECT_EQ(layer.out_features(), 15);
  Tensor x = Tensor::Constant(RandomMatrix(6, 8, &rng));
  Tensor out = layer.Forward(x, RingMask(6, 2));
  EXPECT_EQ(out.rows(), 6);
  EXPECT_EQ(out.cols(), 15);
}

TEST(GatLayerTest, OutputShapeAveragedHeads) {
  Rng rng(2);
  GatLayer layer(8, 5, 3, nn::Activation::kNone, &rng,
                 /*average_heads=*/true);
  EXPECT_EQ(layer.out_features(), 5);
  Tensor x = Tensor::Constant(RandomMatrix(6, 8, &rng));
  EXPECT_EQ(layer.Forward(x, RingMask(6, 2)).cols(), 5);
}

TEST(GatLayerTest, AttentionRowsSumToOneOverNeighborhood) {
  Rng rng(3);
  GatLayer layer(4, 4, 2, nn::Activation::kNone, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(5, 4, &rng));
  Matrix mask = RingMask(5, 1);
  layer.Forward(x, mask);
  for (const Matrix& attention : layer.last_attention()) {
    for (int i = 0; i < 5; ++i) {
      double row_sum = 0.0;
      for (int j = 0; j < 5; ++j) {
        if (mask(i, j) == 0.0) {
          EXPECT_DOUBLE_EQ(attention(i, j), 0.0);
        }
        row_sum += attention(i, j);
      }
      EXPECT_NEAR(row_sum, 1.0, 1e-12);
    }
  }
}

TEST(GatLayerTest, MaskedNodesDoNotInfluenceOutput) {
  // Two disconnected cliques: perturbing a node in one clique must not
  // change outputs in the other.
  Rng rng(4);
  GatLayer layer(3, 4, 2, nn::Activation::kRelu, &rng);
  Matrix mask(6, 6, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      mask(i, j) = 1.0;
      mask(i + 3, j + 3) = 1.0;
    }
  }
  Matrix features = RandomMatrix(6, 3, &rng);
  Tensor out1 = layer.Forward(Tensor::Constant(features), mask);
  features(0, 0) += 10.0;  // perturb clique A
  Tensor out2 = layer.Forward(Tensor::Constant(features), mask);
  for (int i = 3; i < 6; ++i) {  // clique B unchanged
    for (int c = 0; c < out1.cols(); ++c) {
      EXPECT_DOUBLE_EQ(out1.value()(i, c), out2.value()(i, c));
    }
  }
  // Clique A did change.
  double diff = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int c = 0; c < out1.cols(); ++c) {
      diff += std::fabs(out1.value()(i, c) - out2.value()(i, c));
    }
  }
  EXPECT_GT(diff, 0.0);
}

TEST(GatLayerTest, IsolatedNodeSelfLoopOnly) {
  Rng rng(5);
  GatLayer layer(3, 2, 1, nn::Activation::kNone, &rng);
  Matrix mask = Matrix::Identity(4);  // every node isolated
  Tensor x = Tensor::Constant(RandomMatrix(4, 3, &rng));
  Tensor out = layer.Forward(x, mask);
  // With only self-attention, attention weight is exactly 1 on the diagonal.
  const Matrix& attention = layer.last_attention()[0];
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(attention(i, i), 1.0, 1e-12);
}

TEST(GatNetworkTest, StackShapesAndParameterCount) {
  Rng rng(6);
  GatConfig config;
  config.hidden_per_head = {8, 4};
  config.num_heads = 2;
  config.out_features = 6;
  GatNetwork network(10, config, &rng);
  EXPECT_EQ(network.out_features(), 6);
  EXPECT_EQ(network.layers().size(), 3u);  // 2 hidden + 1 output
  // Each layer: heads * (W, a_src, a_dst); output layer has 1 head.
  EXPECT_EQ(network.Parameters().size(), 2u * 3 + 2u * 3 + 1u * 3);
  Tensor x = Tensor::Constant(RandomMatrix(7, 10, &rng));
  Tensor out = network.Forward(x, RingMask(7, 2));
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 6);
}

TEST(GatNetworkTest, GradientsFlowToAllParameters) {
  Rng rng(7);
  GatConfig config;
  config.hidden_per_head = {4};
  config.num_heads = 2;
  config.out_features = 3;
  GatNetwork network(5, config, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(6, 5, &rng));
  Tensor out = network.Forward(x, RingMask(6, 2));
  tensor::Backward(tensor::SumSquares(out));
  for (const Tensor& p : network.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0) << "dead parameter";
  }
}

TEST(GatNetworkTest, LearnsNeighborAveraging) {
  // Target for each node: mean of its neighbours' single feature. A GAT
  // should fit this nearly exactly.
  Rng rng(8);
  const int n = 12;
  Matrix features = RandomMatrix(n, 1, &rng);
  Matrix mask = RingMask(n, 1);
  Matrix target(n, 1, 0.0);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    int count = 0;
    for (int j = 0; j < n; ++j) {
      if (mask(i, j) != 0.0) {
        sum += features(j, 0);
        ++count;
      }
    }
    target(i, 0) = sum / count;
  }
  GatConfig config;
  config.hidden_per_head = {4};
  config.num_heads = 1;
  config.out_features = 1;
  GatNetwork network(1, config, &rng);
  optim::Adam adam(network.Parameters(), 5e-3);
  Tensor x = Tensor::Constant(features);
  Tensor y = Tensor::Constant(target);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 800; ++epoch) {
    adam.ZeroGrad();
    Tensor loss = tensor::MseLoss(network.Forward(x, mask), y);
    tensor::Backward(loss);
    adam.Step();
    final_loss = loss.value()(0, 0);
  }
  EXPECT_LT(final_loss, 0.02);
}

TEST(GatLayerTest, AttentionDropoutOnlyInTraining) {
  Rng rng(9);
  GatLayer layer(4, 3, 1, nn::Activation::kNone, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(5, 4, &rng));
  Matrix mask = RingMask(5, 2);
  Tensor eval1 = layer.Forward(x, mask, /*training=*/false, 0.5, &rng);
  Tensor eval2 = layer.Forward(x, mask, /*training=*/false, 0.5, &rng);
  EXPECT_EQ(eval1.value(), eval2.value());
}

// --- GCN -----------------------------------------------------------------

TEST(GcnTest, NormalizedAdjacencyRowsAndSymmetry) {
  Matrix mask = RingMask(6, 1);
  Matrix a_hat = NormalizedAdjacency(mask);
  // Symmetric, zero where no edge, D^{-1/2}(A+I)D^{-1/2} values.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_NEAR(a_hat(i, j), a_hat(j, i), 1e-12);
      if (mask(i, j) == 0.0) EXPECT_DOUBLE_EQ(a_hat(i, j), 0.0);
    }
  }
  // Ring with self-loop: every node has degree 3 -> entries are 1/3.
  EXPECT_NEAR(a_hat(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(a_hat(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(GcnTest, ForwardShapes) {
  Rng rng(21);
  GcnNetwork gcn(5, {8}, 3, &rng);
  EXPECT_EQ(gcn.out_features(), 3);
  Tensor x = Tensor::Constant(RandomMatrix(7, 5, &rng));
  Tensor out = gcn.Forward(x, RingMask(7, 2));
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 3);
}

TEST(GcnTest, GradientsFlowToAllParameters) {
  Rng rng(22);
  GcnNetwork gcn(4, {6}, 2, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(5, 4, &rng));
  tensor::Backward(tensor::SumSquares(gcn.Forward(x, RingMask(5, 1))));
  for (const Tensor& p : gcn.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0);
  }
}

TEST(GcnTest, DisconnectedComponentsStayIndependent) {
  Rng rng(23);
  GcnNetwork gcn(2, {4}, 2, &rng);
  Matrix mask(4, 4, 0.0);
  mask(0, 0) = mask(0, 1) = mask(1, 0) = mask(1, 1) = 1.0;
  mask(2, 2) = mask(2, 3) = mask(3, 2) = mask(3, 3) = 1.0;
  Matrix features = RandomMatrix(4, 2, &rng);
  Tensor out1 = gcn.Forward(Tensor::Constant(features), mask);
  features(0, 0) += 5.0;
  Tensor out2 = gcn.Forward(Tensor::Constant(features), mask);
  for (int c = 0; c < 2; ++c) {
    EXPECT_DOUBLE_EQ(out1.value()(2, c), out2.value()(2, c));
    EXPECT_DOUBLE_EQ(out1.value()(3, c), out2.value()(3, c));
  }
}

TEST(GcnTest, LearnsNeighborAveraging) {
  Rng rng(24);
  const int n = 12;
  Matrix features = RandomMatrix(n, 1, &rng);
  Matrix mask = RingMask(n, 1);
  Matrix a_hat = NormalizedAdjacency(mask);
  // Target: the normalized-adjacency smoothing itself (a single GCN layer
  // with W = 1 represents it exactly).
  Matrix target = a_hat.MatMul(features);
  GcnNetwork gcn(1, {}, 1, &rng);
  optim::Adam adam(gcn.Parameters(), 1e-2);
  Tensor x = Tensor::Constant(features);
  Tensor y = Tensor::Constant(target);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    adam.ZeroGrad();
    Tensor loss = tensor::MseLoss(gcn.Forward(x, mask), y);
    tensor::Backward(loss);
    adam.Step();
    final_loss = loss.value()(0, 0);
  }
  EXPECT_LT(final_loss, 1e-4);
}

}  // namespace
}  // namespace ams::gnn
