// Fuzz / property tests for the admin plane's HTTP request parser — the
// introspection stack's untrusted-input surface (obs/admin.h), mirroring
// the AMSNET1 frame fuzzer in framing_fuzz_test.cc.
//
// Deterministic (fixed-seed) mutation fuzzing against a real loopback
// AdminServer: every input below must come back as a clean HTTP error (or
// a legitimate 200 when the mutation happens to leave a valid request) —
// never a crash, hang, or sanitizer report. Regimes:
//   * pure random bytes,
//   * truncations of a valid request at every length,
//   * every single-byte overwrite of a valid `GET /metrics HTTP/1.0` at
//     every position with every byte value,
//   * oversized header blocks (past kMaxRequestBytes),
//   * rng-driven splice/flip/truncate/duplicate mutations.
// The client half-closes after sending, so a request the server is still
// waiting on terminates in EOF (-> 400) instead of a read timeout.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>

#include "obs/admin.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ams::obs {
namespace {

/// Process-wide fuzz target: one server, thousands of one-shot connections.
int AdminPort() {
  static AdminServer* server = [] {
    MetricsRegistry::Get().GetCounter("admin_fuzz/seed").Add(1);
    AdminServerOptions options;
    options.port = 0;
    auto* s = new AdminServer(options);
    const Status status = s->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return s;
  }();
  return server->port();
}

/// Sends `raw` (may contain NULs), half-closes, drains the response.
/// Returns the raw response bytes; empty = closed without answering.
std::string Exchange(const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(AdminPort()));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n =
        ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;  // server may hang up mid-send (oversized request) — keep going
    }
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;
    }
  }
  ::close(fd);
  return response;
}

/// The property every fuzzed request must satisfy: if the server answered
/// at all, the answer is a well-formed HTTP/1.0 response with one of the
/// status codes the parser can legitimately produce.
void ExpectCleanHttpAnswer(const std::string& request) {
  const std::string response = Exchange(request);
  ASSERT_FALSE(response.empty())
      << "no response (hang until timeout?) for request of "
      << request.size() << " bytes";
  ASSERT_EQ(response.rfind("HTTP/1.0 ", 0), 0u)
      << "malformed status line: " << response.substr(0, 40);
  const int code = std::atoi(response.c_str() + std::strlen("HTTP/1.0 "));
  EXPECT_TRUE(code == 200 || code == 400 || code == 404 || code == 405 ||
              code == 431 || code == 503)
      << "unexpected status " << code;
}

constexpr char kValidRequest[] = "GET /metrics HTTP/1.0\r\n\r\n";

TEST(AdminFuzz, ValidRequestIsAccepted) {
  const std::string response = Exchange(kValidRequest);
  ASSERT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u)
      << response.substr(0, 40);
}

TEST(AdminFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(20260809);
  for (int trial = 0; trial < 300; ++trial) {
    std::string request(rng.UniformInt(192), '\0');
    for (char& b : request) b = static_cast<char>(rng.UniformInt(256));
    // Pure noise essentially never spells a resolvable GET; whatever the
    // parse outcome, the answer is clean HTTP.
    ExpectCleanHttpAnswer(request);
  }
}

TEST(AdminFuzz, TruncationAtEveryLengthIsACleanAnswer) {
  const std::string request = kValidRequest;
  for (size_t len = 1; len < request.size(); ++len) {
    // EOF before the blank line -> 400 (half-close makes the EOF prompt).
    const std::string response = Exchange(request.substr(0, len));
    ASSERT_FALSE(response.empty()) << "truncation to " << len;
    EXPECT_EQ(response.rfind("HTTP/1.0 4", 0), 0u)
        << "truncation to " << len << " got " << response.substr(0, 16);
  }
}

TEST(AdminFuzz, EverySingleByteOverwriteIsCleanlyAnswered) {
  const std::string request = kValidRequest;
  for (size_t pos = 0; pos < request.size(); ++pos) {
    for (int value = 0; value < 256; value += 5) {  // every 5th byte value
      std::string mutated = request;
      if (mutated[pos] == static_cast<char>(value)) continue;
      mutated[pos] = static_cast<char>(value);
      // A mutation may still be a valid request (e.g. HTTP/1.1, another
      // path) -> 200/404; anything else must be a clean 4xx.
      ExpectCleanHttpAnswer(mutated);
    }
  }
}

TEST(AdminFuzz, EveryBitFlipIsCleanlyAnswered) {
  const std::string request = kValidRequest;
  for (size_t pos = 0; pos < request.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = request;
      flipped[pos] ^= static_cast<char>(1u << bit);
      ExpectCleanHttpAnswer(flipped);
    }
  }
}

TEST(AdminFuzz, OversizedHeaderBlockIs431NotUnboundedBuffering) {
  std::string request = "GET /metrics HTTP/1.0\r\nX-Filler: ";
  request += std::string(AdminServer::kMaxRequestBytes * 2, 'a');
  request += "\r\n\r\n";
  const std::string response = Exchange(request);
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.rfind("HTTP/1.0 431", 0), 0u) << response.substr(0, 16);
}

TEST(AdminFuzz, OversizedRequestLineIs431) {
  // No header terminator at all, just an endless request line.
  std::string request = "GET /";
  request += std::string(AdminServer::kMaxRequestBytes * 2, 'x');
  const std::string response = Exchange(request);
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.rfind("HTTP/1.0 431", 0), 0u) << response.substr(0, 16);
}

TEST(AdminFuzz, RngMutationsSpliceTruncateDuplicate) {
  Rng rng(1234);
  const std::string request = kValidRequest;
  for (int trial = 0; trial < 600; ++trial) {
    std::string bytes = request;
    switch (rng.UniformInt(4)) {
      case 0: {  // flip 1-8 random bits
        const int flips = 1 + static_cast<int>(rng.UniformInt(8));
        for (int i = 0; i < flips && !bytes.empty(); ++i) {
          const size_t pos = rng.UniformInt(bytes.size());
          bytes[pos] ^= static_cast<char>(1u << rng.UniformInt(8));
        }
        break;
      }
      case 1: {  // overwrite a random run with random bytes
        const size_t pos = rng.UniformInt(bytes.size());
        const size_t len =
            std::min(bytes.size() - pos, rng.UniformInt(16) + size_t{1});
        for (size_t i = 0; i < len; ++i) {
          bytes[pos + i] = static_cast<char>(rng.UniformInt(256));
        }
        break;
      }
      case 2:  // truncate to a random prefix (keep >= 1 byte: empty sends
               // nothing for the server to answer before our half-close)
        bytes.resize(1 + rng.UniformInt(bytes.size()));
        break;
      default: {  // duplicate a random slice into the middle
        const size_t pos = rng.UniformInt(bytes.size());
        const size_t len =
            std::min(bytes.size() - pos, rng.UniformInt(8) + size_t{1});
        bytes.insert(pos, bytes.substr(pos, len));
        break;
      }
    }
    ExpectCleanHttpAnswer(bytes);
  }
}

TEST(AdminFuzz, EmptySendIsAnsweredWith400) {
  // Connect, send nothing, half-close: EOF before any bytes -> 400.
  const std::string response = Exchange("");
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.rfind("HTTP/1.0 400", 0), 0u) << response.substr(0, 16);
}

TEST(AdminFuzz, NulBytesInsideTheRequestLineAreHandled) {
  std::string request = kValidRequest;
  request[5] = '\0';  // inside the path
  ExpectCleanHttpAnswer(request);
}

TEST(AdminFuzz, ServerStillHealthyAfterTheBarrage) {
  // After every regime above, a well-formed scrape still works — no fd
  // leak, no wedged handler pool.
  const std::string response = Exchange(kValidRequest);
  ASSERT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u)
      << response.substr(0, 40);
  EXPECT_NE(response.find("admin_fuzz_seed 1"), std::string::npos);
}

}  // namespace
}  // namespace ams::obs
