// Tests for the backtest engine: deterministic price paths, strategy
// accounting, drawdown/Sharpe/AER math, and the "oracle beats anti-oracle"
// sanity property.
#include <gtest/gtest.h>

#include <cmath>

#include "backtest/backtest.h"
#include "data/generator.h"

namespace ams::backtest {
namespace {

class BacktestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    panel_ = data::GenerateMarket(
                 data::GeneratorConfig::Defaults(
                     data::DatasetProfile::kTransactionAmount, 42))
                 .MoveValue();
    config_.seed = 42;
  }

  std::vector<data::SampleMeta> MetaForQuarter(int quarter) const {
    std::vector<data::SampleMeta> meta;
    for (int i = 0; i < panel_.num_companies(); ++i) {
      data::SampleMeta m;
      m.company = i;
      m.quarter = quarter;
      m.consensus = panel_.companies[i].quarters[quarter].consensus;
      m.actual_revenue = panel_.companies[i].quarters[quarter].revenue;
      m.actual_ur = panel_.companies[i].quarters[quarter].UnexpectedRevenue();
      m.market_cap = panel_.companies[i].market_cap;
      m.scale = 1.0;
      meta.push_back(m);
    }
    return meta;
  }

  QuarterPositions OraclePositions(int quarter, double sign) const {
    QuarterPositions positions;
    positions.test_quarter = quarter;
    positions.meta = MetaForQuarter(quarter);
    for (const auto& m : positions.meta) {
      positions.predicted_ur.push_back(sign * m.actual_ur);
    }
    return positions;
  }

  data::Panel panel_;
  BacktestConfig config_;
};

TEST_F(BacktestTest, BucketRatios) {
  Backtester backtester(&panel_, config_);
  EXPECT_DOUBLE_EQ(backtester.BucketRatio(0.5), 1.0);
  EXPECT_DOUBLE_EQ(backtester.BucketRatio(5.0), 2.0);
  EXPECT_DOUBLE_EQ(backtester.BucketRatio(50.0), 3.0);
  EXPECT_DOUBLE_EQ(backtester.BucketRatio(1.0), 2.0);   // boundary
  EXPECT_DOUBLE_EQ(backtester.BucketRatio(10.0), 3.0);  // boundary
}

TEST_F(BacktestTest, PricePathsDeterministicAndModelIndependent) {
  Backtester a(&panel_, config_);
  Backtester b(&panel_, config_);
  auto path1 = a.CompanyPath(10, 3);
  auto path2 = b.CompanyPath(10, 3);
  EXPECT_EQ(path1, path2);
  EXPECT_EQ(path1.size(), static_cast<size_t>(config_.holding_days));
  // Different company/quarter -> different path.
  EXPECT_NE(a.CompanyPath(10, 4), path1);
  EXPECT_NE(a.CompanyPath(11, 3), path1);
}

TEST_F(BacktestTest, SurpriseJumpMovesPriceInUrDirection) {
  // Average over companies: cumulative return should correlate with the
  // sign of the actual UR (the announcement jump dominates drift).
  Backtester backtester(&panel_, config_);
  double positive_mean = 0.0, negative_mean = 0.0;
  int positive_n = 0, negative_n = 0;
  for (int i = 0; i < panel_.num_companies(); ++i) {
    const auto& cq = panel_.companies[i].quarters[10];
    auto path = backtester.CompanyPath(10, i);
    double total = 0.0;
    for (double r : path) total += r;
    if (cq.UnexpectedRevenue() > 0) {
      positive_mean += total;
      ++positive_n;
    } else {
      negative_mean += total;
      ++negative_n;
    }
  }
  ASSERT_GT(positive_n, 0);
  ASSERT_GT(negative_n, 0);
  EXPECT_GT(positive_mean / positive_n, negative_mean / negative_n);
}

TEST_F(BacktestTest, OracleBeatsAntiOracle) {
  Backtester backtester(&panel_, config_);
  std::vector<QuarterPositions> oracle, anti;
  for (int q : {9, 10, 11}) {
    oracle.push_back(OraclePositions(q, +1.0));
    anti.push_back(OraclePositions(q, -1.0));
  }
  auto oracle_result = backtester.Run(oracle);
  auto anti_result = backtester.Run(anti);
  ASSERT_TRUE(oracle_result.ok() && anti_result.ok());
  EXPECT_GT(oracle_result.ValueOrDie().earning_pct, 0.0);
  EXPECT_GT(oracle_result.ValueOrDie().earning_pct,
            anti_result.ValueOrDie().earning_pct);
  // Daily returns mirror exactly (weights identical, signs flipped).
  for (size_t d = 0; d < oracle_result.ValueOrDie().daily_returns.size();
       ++d) {
    EXPECT_NEAR(oracle_result.ValueOrDie().daily_returns[d],
                -anti_result.ValueOrDie().daily_returns[d], 1e-12);
  }
}

TEST_F(BacktestTest, AssetCurveAccounting) {
  Backtester backtester(&panel_, config_);
  auto result = backtester.Run({OraclePositions(9, 1.0)});
  ASSERT_TRUE(result.ok());
  const BacktestResult& r = result.ValueOrDie();
  EXPECT_EQ(r.asset_curve.size(),
            static_cast<size_t>(config_.holding_days + 1));
  EXPECT_DOUBLE_EQ(r.asset_curve.front(), 1.0);
  // Curve is the cumulative product of daily returns.
  double asset = 1.0;
  for (size_t d = 0; d < r.daily_returns.size(); ++d) {
    asset *= 1.0 + r.daily_returns[d];
    EXPECT_NEAR(r.asset_curve[d + 1], asset, 1e-12);
  }
  EXPECT_NEAR(r.earning_pct, 100.0 * (asset - 1.0), 1e-9);
  ASSERT_EQ(r.quarter_returns_pct.size(), 1u);
  EXPECT_NEAR(r.quarter_returns_pct[0], r.earning_pct, 1e-9);
}

TEST_F(BacktestTest, MddIsMaxPeakToTroughPercent) {
  Backtester backtester(&panel_, config_);
  auto result = backtester.Run({OraclePositions(9, 1.0)});
  ASSERT_TRUE(result.ok());
  const auto& curve = result.ValueOrDie().asset_curve;
  double peak = curve[0], mdd = 0.0;
  for (double v : curve) {
    peak = std::max(peak, v);
    mdd = std::max(mdd, (peak - v) / peak);
  }
  EXPECT_NEAR(result.ValueOrDie().mdd_pct, 100.0 * mdd, 1e-9);
  EXPECT_GE(result.ValueOrDie().mdd_pct, 0.0);
}

TEST_F(BacktestTest, RejectsBadInput) {
  Backtester backtester(&panel_, config_);
  EXPECT_FALSE(backtester.Run({}).ok());
  QuarterPositions misaligned;
  misaligned.test_quarter = 9;
  misaligned.meta = MetaForQuarter(9);
  misaligned.predicted_ur = {1.0};  // wrong size
  EXPECT_FALSE(backtester.Run({misaligned}).ok());
  QuarterPositions out_of_range = OraclePositions(9, 1.0);
  out_of_range.test_quarter = 99;
  EXPECT_FALSE(backtester.Run({out_of_range}).ok());
}

TEST(BacktestStatsTest, SharpeSignReflectsOutperformance) {
  std::vector<double> better = {0.01, 0.02, 0.015, 0.01, 0.02};
  std::vector<double> worse = {0.00, 0.01, 0.005, 0.00, 0.01};
  auto sharpe = SharpeVsReference(worse, better);
  ASSERT_TRUE(sharpe.ok());
  EXPECT_LT(sharpe.ValueOrDie(), 0.0);
  auto inverse = SharpeVsReference(better, worse);
  ASSERT_TRUE(inverse.ok());
  EXPECT_GT(inverse.ValueOrDie(), 0.0);
}

TEST(BacktestStatsTest, SharpeRejectsDegenerate) {
  EXPECT_FALSE(SharpeVsReference({0.01}, {0.02}).ok());
  EXPECT_FALSE(SharpeVsReference({0.01, 0.02}, {0.02}).ok());
  // Identical series: zero variance.
  std::vector<double> same = {0.01, 0.02, 0.03};
  EXPECT_FALSE(SharpeVsReference(same, same).ok());
}

TEST(BacktestStatsTest, AverageExcessReturn) {
  auto aer = AverageExcessReturn({1.0, 2.0, 3.0}, {2.0, 2.0, 2.0});
  ASSERT_TRUE(aer.ok());
  EXPECT_DOUBLE_EQ(aer.ValueOrDie(), 0.0);
  auto negative = AverageExcessReturn({0.0, 0.0}, {1.0, 3.0});
  ASSERT_TRUE(negative.ok());
  EXPECT_DOUBLE_EQ(negative.ValueOrDie(), -2.0);
  EXPECT_FALSE(AverageExcessReturn({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(AverageExcessReturn({}, {}).ok());
}

TEST_F(BacktestTest, CapWeightingTiltsExposure) {
  // A quarter where only the largest-cap company has positive predicted UR:
  // its weight must be 3 / total, the small caps 1 / total.
  Backtester backtester(&panel_, config_);
  QuarterPositions positions = OraclePositions(9, 1.0);
  // Verify weights indirectly: two runs where we flip only a small-cap
  // company's sign should differ less than flipping a large-cap company's.
  int small_idx = -1, large_idx = -1;
  for (size_t i = 0; i < positions.meta.size(); ++i) {
    if (positions.meta[i].market_cap < 1.0 && small_idx < 0) {
      small_idx = static_cast<int>(i);
    }
    if (positions.meta[i].market_cap > 10.0 && large_idx < 0) {
      large_idx = static_cast<int>(i);
    }
  }
  ASSERT_GE(small_idx, 0);
  ASSERT_GE(large_idx, 0);
  auto base = backtester.Run({positions}).MoveValue();
  QuarterPositions flip_small = positions;
  flip_small.predicted_ur[small_idx] *= -1.0;
  QuarterPositions flip_large = positions;
  flip_large.predicted_ur[large_idx] *= -1.0;
  auto small_result = backtester.Run({flip_small}).MoveValue();
  auto large_result = backtester.Run({flip_large}).MoveValue();
  double small_diff = 0.0, large_diff = 0.0;
  for (size_t d = 0; d < base.daily_returns.size(); ++d) {
    small_diff += std::fabs(base.daily_returns[d] -
                            small_result.daily_returns[d]);
    large_diff += std::fabs(base.daily_returns[d] -
                            large_result.daily_returns[d]);
  }
  EXPECT_GT(large_diff, small_diff);
}

}  // namespace
}  // namespace ams::backtest
