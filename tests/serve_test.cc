// Serving-layer harness: AMSMODEL1 artifact round-trips, golden-parity
// batched scoring, read-fault detection, and hot reload under load.
//
// The golden-parity suite is the PR's central claim: for every batch size
// and thread count, InferenceServer returns scores bit-identical to calling
// AmsModel::Predict in-process — and bit-identical to the committed golden
// file tests/golden/serve_predictions.txt. Regenerate the golden file after
// an *intentional* numeric change with:
//
//   AMS_UPDATE_GOLDEN=1 ./serve_test --gtest_filter='*Golden*'
//
// The reload-under-load test is the -DAMS_SANITIZE=thread target of
// tools/check_serve.sh: scoring threads hammer the server while the main
// thread hot-swaps models, and every response must match one of the two
// models exactly (drain-on-old-model, no torn reads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ams/ams_model.h"
#include "data/features.h"
#include "data/generator.h"
#include "gbdt/gbdt.h"
#include "graph/company_graph.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "robust/atomic_io.h"
#include "robust/faults.h"
#include "serve/artifact.h"
#include "serve/server.h"

namespace ams::serve {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("ams_serve_test_" + name)).string();
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string BitsHex(double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(DoubleBits(v)));
  return buf;
}

::testing::AssertionResult BitIdentical(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (DoubleBits(a[i]) != DoubleBits(b[i])) {
      return ::testing::AssertionFailure()
             << "bit mismatch at " << i << ": " << BitsHex(a[i]) << " vs "
             << BitsHex(b[i]);
    }
  }
  return ::testing::AssertionSuccess();
}

/// Everything the suite needs from one expensive setup: a market panel, two
/// fitted AMS models (different configs, hence different fingerprints), and
/// per-quarter request blocks. Fit once per process; models are handed out
/// as bit-exact FromState copies.
struct Fixture {
  std::vector<la::Matrix> blocks;  // one request block per quarter
  robust::Checkpoint state_a;
  robust::Checkpoint state_b;
  int num_companies = 0;
  int num_features = 0;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* fx = new Fixture();
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 24;
    config.num_sectors = 4;
    data::Panel panel = data::GenerateMarket(config).MoveValue();

    data::FeatureBuilder builder(&panel, data::FeatureOptions{});
    data::Dataset train = builder.Build({4, 5, 6, 7, 8}).MoveValue();
    data::Dataset valid = builder.Build({9}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);

    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph::CompanyGraph graph =
        graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(8),
                                              graph_options)
            .MoveValue();

    for (int quarter = 4; quarter <= 10; ++quarter) {
      data::Dataset ds = builder.Build({quarter}).MoveValue();
      standardizer.Apply(&ds);
      fx->blocks.push_back(ds.x);
    }
    fx->num_companies = config.num_companies;
    fx->num_features = train.num_features();

    core::AmsConfig cfg_a;
    cfg_a.node_transform_layers = {16};
    cfg_a.gat.hidden_per_head = {4};
    cfg_a.gat.num_heads = 2;
    cfg_a.gat.out_features = 8;
    cfg_a.generator_hidden = {16};
    cfg_a.max_epochs = 6;
    cfg_a.patience = 6;
    core::AmsModel model_a(cfg_a);
    model_a.Fit(train, valid, graph).Abort("fit model A");
    fx->state_a = model_a.ExportState().MoveValue();

    core::AmsConfig cfg_b = cfg_a;
    cfg_b.generator_hidden = {12};
    cfg_b.seed = 43;
    core::AmsModel model_b(cfg_b);
    model_b.Fit(train, valid, graph).Abort("fit model B");
    fx->state_b = model_b.ExportState().MoveValue();
    return fx;
  }();
  return *fixture;
}

core::AmsModel ModelA() {
  return core::AmsModel::FromState(GetFixture().state_a).MoveValue();
}
core::AmsModel ModelB() {
  return core::AmsModel::FromState(GetFixture().state_b).MoveValue();
}

/// One request block as the single-quarter Dataset AmsModel::Predict
/// consumes directly (the in-process reference the server must match).
data::Dataset BlockDataset(const la::Matrix& block) {
  data::Dataset dataset;
  dataset.x = block;
  dataset.y.assign(block.rows(), 0.0);
  dataset.meta.resize(block.rows());
  for (int i = 0; i < block.rows(); ++i) {
    dataset.meta[i].company = i;
    dataset.meta[i].quarter = 0;
  }
  return dataset;
}

std::vector<std::vector<double>> DirectPredictions(const core::AmsModel& model) {
  std::vector<std::vector<double>> out;
  for (const la::Matrix& block : GetFixture().blocks) {
    out.push_back(model.Predict(BlockDataset(block)).MoveValue());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Artifact format.
// ---------------------------------------------------------------------------

TEST(ServeArtifact, AmsRoundTripIsBitExact) {
  const std::string path = TempPath("ams_roundtrip.bin");
  core::AmsModel original = ModelA();
  ASSERT_TRUE(SaveAmsArtifact(path, original).ok());

  auto restored = LoadAmsArtifact(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.ValueOrDie().ModelFingerprint().ValueOrDie(),
            original.ModelFingerprint().ValueOrDie());

  const auto direct = DirectPredictions(original);
  const auto loaded = DirectPredictions(restored.ValueOrDie());
  ASSERT_EQ(direct.size(), loaded.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_TRUE(BitIdentical(direct[i], loaded[i])) << "block " << i;
  }
  fs::remove(path);
}

TEST(ServeArtifact, ProbeReportsKindAndFingerprint) {
  const std::string path = TempPath("ams_probe.bin");
  core::AmsModel model = ModelA();
  ASSERT_TRUE(SaveAmsArtifact(path, model).ok());
  auto info = ProbeArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().kind, "ams");
  EXPECT_EQ(info.ValueOrDie().fingerprint,
            model.ModelFingerprint().ValueOrDie());
  fs::remove(path);
}

TEST(ServeArtifact, RejectsCorruptionTruncationAndBadMagic) {
  const std::string path = TempPath("ams_corrupt.bin");
  ASSERT_TRUE(SaveAmsArtifact(path, ModelA()).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    bytes = oss.str();
  }
  auto write_raw = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  };

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  write_raw(flipped);
  EXPECT_FALSE(LoadAmsArtifact(path).ok());  // CRC footer catches it

  write_raw(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(LoadAmsArtifact(path).ok());  // truncation

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  // Re-footer so the corruption reaches the magic check, not the CRC.
  std::string payload = bad_magic.substr(0, bad_magic.size() - 16);
  write_raw(payload + robust::CrcFooter(payload));
  EXPECT_FALSE(LoadAmsArtifact(path).ok());

  write_raw(bytes);
  EXPECT_TRUE(LoadAmsArtifact(path).ok());  // pristine bytes still load
  fs::remove(path);
}

TEST(ServeArtifact, InjectedReadFaultsAreDetectedAndCounted) {
  const std::string path = TempPath("ams_readfault.bin");
  ASSERT_TRUE(SaveAmsArtifact(path, ModelA()).ok());

  auto& injector = robust::FaultInjector::Get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& crc_failures = registry.GetCounter("robust/crc_failures");
  obs::Counter& bit_flips = registry.GetCounter(
      "robust/faults_injected", {{"kind", "bit_flip"}});
  obs::Counter& partials = registry.GetCounter(
      "robust/faults_injected", {{"kind", "partial_read"}});

  const uint64_t crc_before = crc_failures.value();
  const uint64_t flips_before = bit_flips.value();
  ASSERT_TRUE(injector.Configure("bit_flip@read=0").ok());
  EXPECT_FALSE(LoadAmsArtifact(path).ok());
  EXPECT_EQ(bit_flips.value(), flips_before + 1);
  EXPECT_GT(crc_failures.value(), crc_before);

  const uint64_t partials_before = partials.value();
  ASSERT_TRUE(injector.Configure("partial_read@read=0").ok());
  EXPECT_FALSE(LoadAmsArtifact(path).ok());
  EXPECT_EQ(partials.value(), partials_before + 1);

  injector.Disarm();
  EXPECT_TRUE(LoadAmsArtifact(path).ok());  // fault-free read recovers
  fs::remove(path);
}

TEST(ServeArtifact, GbdtRoundTripIsBitExact) {
  // Small deterministic regression problem.
  const int n = 200, f = 5;
  la::Matrix x(n, f), y(n, 1);
  Rng rng(7);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < f; ++c) x(r, c) = rng.Uniform(-1.0, 1.0);
    y(r, 0) = 2.0 * x(r, 2) - x(r, 0) + 0.1 * rng.Normal();
  }
  gbdt::GbdtOptions options;
  options.num_rounds = 20;
  gbdt::GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());

  const std::string path = TempPath("gbdt_roundtrip.bin");
  ASSERT_TRUE(SaveGbdtArtifact(path, model).ok());
  auto restored = LoadGbdtArtifact(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.ValueOrDie().num_trees(), model.num_trees());

  auto info = ProbeArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().kind, "gbdt");

  const auto direct = model.Predict(x).MoveValue();
  const auto loaded = restored.ValueOrDie().Predict(x).MoveValue();
  EXPECT_TRUE(BitIdentical(direct, loaded));
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Golden parity: server == in-process Predict == committed golden file,
// bit-for-bit, at batch sizes {1, 7, 64} x parallelism {1, 8}.
// ---------------------------------------------------------------------------

std::string GoldenPath() {
  return std::string(AMS_SOURCE_DIR) + "/tests/golden/serve_predictions.txt";
}

TEST(ServeGolden, ParityAcrossBatchSizesAndThreadCounts) {
  const Fixture& fx = GetFixture();
  const size_t num_blocks = fx.blocks.size();

  // In-process reference, computed at parallelism 1.
  par::SetDefaultParallelism(1);
  const auto direct = DirectPredictions(ModelA());

  if (std::getenv("AMS_UPDATE_GOLDEN") != nullptr) {
    std::ostringstream out;
    out << "# serve golden predictions: one line per quarter block, "
           "IEEE-754 bit patterns\n";
    for (size_t b = 0; b < num_blocks; ++b) {
      out << "block " << b;
      for (double v : direct[b]) out << " " << BitsHex(v);
      out << "\n";
    }
    std::ofstream file(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(file.good()) << "cannot write " << GoldenPath();
    file << out.str();
    GTEST_SKIP() << "golden file regenerated at " << GoldenPath();
  }

  // Committed golden file must match the in-process reference exactly.
  std::ifstream golden(GoldenPath());
  ASSERT_TRUE(golden.good())
      << "missing golden file; regenerate with AMS_UPDATE_GOLDEN=1";
  std::string line;
  size_t golden_blocks = 0;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream iss(line);
    std::string tag;
    size_t block = 0;
    iss >> tag >> block;
    ASSERT_EQ(tag, "block");
    ASSERT_LT(block, num_blocks);
    for (double v : direct[block]) {
      std::string hex;
      ASSERT_TRUE(static_cast<bool>(iss >> hex)) << "short golden line";
      EXPECT_EQ(hex, BitsHex(v)) << "golden drift in block " << block;
    }
    ++golden_blocks;
  }
  EXPECT_EQ(golden_blocks, num_blocks);

  // Server parity at every batch size and thread count.
  const int kRequests = 64;
  for (int threads : {1, 8}) {
    par::SetDefaultParallelism(threads);
    for (int max_batch : {1, 7, 64}) {
      ServerOptions options;
      options.max_batch = max_batch;
      options.max_wait_ms = max_batch > 1 ? 5.0 : 0.0;
      InferenceServer server(options);
      ASSERT_TRUE(server.LoadModel(ModelA()).ok());

      std::vector<la::Matrix> requests;
      requests.reserve(kRequests);
      for (int r = 0; r < kRequests; ++r) {
        requests.push_back(fx.blocks[r % num_blocks]);
      }
      auto results = server.ScoreBatch(requests);
      ASSERT_EQ(results.size(), requests.size());
      for (int r = 0; r < kRequests; ++r) {
        ASSERT_TRUE(results[r].ok()) << results[r].status();
        EXPECT_TRUE(
            BitIdentical(results[r].ValueOrDie(), direct[r % num_blocks]))
            << "threads=" << threads << " max_batch=" << max_batch
            << " request=" << r;
      }
    }
  }
  par::SetDefaultParallelism(0);  // restore environment sizing
}

// ---------------------------------------------------------------------------
// Server behaviour.
// ---------------------------------------------------------------------------

TEST(ServeServer, RejectsUnloadedAndMisshapenRequests) {
  obs::Counter& rejected = obs::MetricsRegistry::Get().GetCounter(
      "serve/requests", {{"outcome", "error"}});
  const uint64_t before = rejected.value();

  InferenceServer server{ServerOptions{}};
  EXPECT_FALSE(server.has_model());
  auto no_model = server.Score(GetFixture().blocks[0]);
  EXPECT_FALSE(no_model.ok());
  EXPECT_EQ(no_model.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(server.LoadModel(ModelA()).ok());
  EXPECT_TRUE(server.has_model());
  auto bad_shape = server.Score(la::Matrix(3, 3));
  EXPECT_FALSE(bad_shape.ok());
  EXPECT_EQ(bad_shape.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rejected.value(), before + 2);

  auto good = server.Score(GetFixture().blocks[0]);
  EXPECT_TRUE(good.ok());
}

TEST(ServeServer, ScoringPopulatesServeMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& ok_requests =
      registry.GetCounter("serve/requests", {{"outcome", "ok"}});
  obs::Counter& batches = registry.GetCounter("serve/batches");
  obs::Histogram& latency = registry.GetHistogram("serve/latency_ms");
  const uint64_t ok_before = ok_requests.value();
  const uint64_t batches_before = batches.value();
  const uint64_t latency_before = latency.count();

  InferenceServer server{ServerOptions{}};
  ASSERT_TRUE(server.LoadModel(ModelA()).ok());
  auto results = server.ScoreBatch(
      {GetFixture().blocks[0], GetFixture().blocks[1]});
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  EXPECT_EQ(ok_requests.value(), ok_before + 2);
  EXPECT_GT(batches.value(), batches_before);
  EXPECT_EQ(latency.count(), latency_before + 2);
}

TEST(ServeServer, ReloadIfChangedSwapsOnlyOnFingerprintChange) {
  const std::string path = TempPath("reload.bin");
  ASSERT_TRUE(SaveAmsArtifact(path, ModelA()).ok());

  InferenceServer server{ServerOptions{}};
  ASSERT_TRUE(server.LoadArtifact(path).ok());
  const int v1 = server.model_version();
  const std::string fp_a = server.model_fingerprint();
  EXPECT_EQ(v1, 1);
  EXPECT_FALSE(fp_a.empty());

  // Same artifact: no swap.
  ASSERT_TRUE(server.ReloadIfChanged(path).ok());
  EXPECT_EQ(server.model_version(), v1);

  // New model under the same path: swap, new fingerprint.
  ASSERT_TRUE(SaveAmsArtifact(path, ModelB()).ok());
  ASSERT_TRUE(server.ReloadIfChanged(path).ok());
  EXPECT_EQ(server.model_version(), v1 + 1);
  EXPECT_NE(server.model_fingerprint(), fp_a);

  // The run ledger now carries the served model's identity.
  bool found = false;
  for (const auto& [key, value] : obs::LedgerComponents()) {
    if (key == "serve_model_fingerprint") {
      found = true;
      EXPECT_EQ(value, server.model_fingerprint());
    }
  }
  EXPECT_TRUE(found);
  fs::remove(path);
}

TEST(ServeServer, DrainsAdmittedRequestsOnShutdown) {
  const Fixture& fx = GetFixture();
  ServerOptions options;
  options.max_batch = 64;       // never filled by 8 requests...
  options.max_wait_ms = 5000.0; // ...and the window far outlives the test:
                                // only the destructor can release the batch
  std::vector<std::thread> callers;
  std::atomic<int> drained{0};
  {
    InferenceServer server(options);
    ASSERT_TRUE(server.LoadModel(ModelA()).ok());
    for (int i = 0; i < 8; ++i) {
      callers.emplace_back([&] {
        auto r = server.Score(fx.blocks[0]);
        EXPECT_TRUE(r.ok()) << r.status();
        if (r.ok()) drained.fetch_add(1);
      });
    }
    // Wait until all 8 requests sit admitted in the queue (the gauge is
    // updated under the queue lock), so no caller can touch the server
    // object after destruction begins.
    obs::Gauge& depth =
        obs::MetricsRegistry::Get().GetGauge("serve/queue_depth");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (depth.value() < 8.0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(depth.value(), 8.0) << "requests were not all admitted";
    // Destructor runs here: it must cut the 5 s window short and score
    // every admitted request before joining the batcher.
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(drained.load(), 8);
}

TEST(ServeServer, HotReloadUnderLoadDrainsOnOldModel) {
  const Fixture& fx = GetFixture();
  core::AmsModel model_a = ModelA();
  core::AmsModel model_b = ModelB();
  const auto pred_a =
      model_a.Predict(BlockDataset(fx.blocks[0])).MoveValue();
  const auto pred_b =
      model_b.Predict(BlockDataset(fx.blocks[0])).MoveValue();
  // The two models must actually disagree for this test to mean anything.
  ASSERT_FALSE(BitIdentical(pred_a, pred_b));

  ServerOptions options;
  options.max_batch = 4;
  options.max_wait_ms = 0.2;
  InferenceServer server(options);
  ASSERT_TRUE(server.LoadModel(ModelA()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> scored{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> hammers;
  for (int i = 0; i < 4; ++i) {
    hammers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = server.Score(fx.blocks[0]);
        if (!result.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const std::vector<double>& scores = result.ValueOrDie();
        // Every response is exactly one model's output — never a blend.
        if (!BitIdentical(scores, pred_a) && !BitIdentical(scores, pred_b)) {
          mismatches.fetch_add(1);
        }
        scored.fetch_add(1);
      }
    });
  }

  const int kReloads = 20;
  for (int i = 0; i < kReloads; ++i) {
    ASSERT_TRUE(server.LoadModel(i % 2 == 0 ? ModelB() : ModelA()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : hammers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(scored.load(), 0);
  EXPECT_EQ(server.model_version(), 1 + kReloads);
}

// ---------------------------------------------------------------------------
// Request-causal tracing across the batcher hop.
// ---------------------------------------------------------------------------

TEST(ServeTrace, RequestTraceLinksAcrossBatcherHop) {
  const Fixture& fx = GetFixture();
  obs::TraceBuffer& buffer = obs::TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    InferenceServer server{ServerOptions{}};
    ASSERT_TRUE(server.LoadModel(ModelA()).ok());
    auto result = server.Score(fx.blocks[0]);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  buffer.SetEnabled(false);

  const std::vector<obs::SpanRecord> spans = buffer.Snapshot();
  const obs::SpanRecord* request = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (std::string(span.name) == "serve/request") {
      ASSERT_EQ(request, nullptr) << "one Score call, one serve/request";
      request = &span;
    }
  }
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->parent_id, 0u);  // the request roots its trace

  // The queue/batch_form/compute phase spans parent directly under the
  // request span, run on the batcher thread, and carry the model version.
  int phases = 0;
  for (const obs::SpanRecord& span : spans) {
    const std::string name(span.name);
    if (name != "serve/queue" && name != "serve/batch_form" &&
        name != "serve/compute") {
      continue;
    }
    EXPECT_EQ(span.trace_id, request->trace_id) << name;
    EXPECT_EQ(span.parent_id, request->span_id) << name;
    EXPECT_EQ(span.arg, 1u) << name;  // first loaded model => version 1
    EXPECT_NE(span.thread_id, request->thread_id) << name;
    ++phases;
  }
  EXPECT_EQ(phases, 3);

  // The exporter binds the caller and batcher lanes with flow events.
  std::ostringstream out;
  obs::TraceExporter::WriteJson(spans, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  buffer.Clear();
}

TEST(ServeTrace, PhaseHistogramsSumToLatencyWithinFivePercent) {
  const Fixture& fx = GetFixture();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Histogram& latency = registry.GetHistogram("serve/latency_ms");
  obs::Histogram& queue = registry.GetHistogram("serve/queue_ms");
  obs::Histogram& form = registry.GetHistogram("serve/batch_form_ms");
  obs::Histogram& compute = registry.GetHistogram("serve/compute_ms");
  latency.Reset();
  queue.Reset();
  form.Reset();
  compute.Reset();

  InferenceServer server{ServerOptions{}};
  ASSERT_TRUE(server.LoadModel(ModelA()).ok());
  for (int i = 0; i < 8; ++i) {
    auto results = server.ScoreBatch(
        {fx.blocks[0], fx.blocks[1], fx.blocks[2]});
    for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status();
  }

  // Every request observes all three phases exactly once, and the phases
  // partition admission -> compute-done: only the response fan-out (a few
  // promise writes) separates their sum from end-to-end latency.
  const uint64_t n = latency.count();
  EXPECT_EQ(n, 24u);
  EXPECT_EQ(queue.count(), n);
  EXPECT_EQ(form.count(), n);
  EXPECT_EQ(compute.count(), n);
  const double phase_sum = queue.sum() + form.sum() + compute.sum();
  EXPECT_LE(phase_sum, latency.sum());
  EXPECT_GT(phase_sum, 0.95 * latency.sum());
}

TEST(ServeTrace, HotReloadUnderLoadKeepsVersionAttribution) {
  const Fixture& fx = GetFixture();
  core::AmsModel model_a = ModelA();
  core::AmsModel model_b = ModelB();
  const auto pred_a =
      model_a.Predict(BlockDataset(fx.blocks[0])).MoveValue();
  const auto pred_b =
      model_b.Predict(BlockDataset(fx.blocks[0])).MoveValue();
  ASSERT_FALSE(BitIdentical(pred_a, pred_b));

  obs::TraceBuffer& buffer = obs::TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);

  // Hammer threads tag each call with its own root span and record which
  // model's output the response was, keyed by trace id; the compute spans
  // recorded by the batcher must agree about the serving version.
  ServerOptions options;
  options.max_batch = 4;
  options.max_wait_ms = 0.2;
  std::mutex map_mu;
  std::map<uint64_t, uint64_t> version_by_trace;
  std::atomic<bool> stop{false};
  std::atomic<int> unattributable{0};
  {
    InferenceServer server(options);
    ASSERT_TRUE(server.LoadModel(ModelA()).ok());  // version 1
    std::vector<std::thread> hammers;
    for (int i = 0; i < 4; ++i) {
      hammers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          obs::ScopedSpan root("serve_trace_test/client_call");
          const uint64_t trace_id = root.context().trace_id;
          auto result = server.Score(fx.blocks[0]);
          if (!result.ok()) {
            unattributable.fetch_add(1);
            continue;
          }
          const std::vector<double>& scores = result.ValueOrDie();
          uint64_t version = 0;
          if (BitIdentical(scores, pred_a)) version = 1;
          if (BitIdentical(scores, pred_b)) version = 2;
          if (version == 0) {
            unattributable.fetch_add(1);
            continue;
          }
          std::lock_guard<std::mutex> lock(map_mu);
          version_by_trace[trace_id] = version;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(server.LoadModel(ModelB()).ok());  // version 2
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true);
    for (auto& t : hammers) t.join();
  }
  buffer.SetEnabled(false);
  EXPECT_EQ(unattributable.load(), 0);
  ASSERT_FALSE(version_by_trace.empty());

  int checked = 0;
  for (const obs::SpanRecord& span : buffer.Snapshot()) {
    if (std::string(span.name) != "serve/compute") continue;
    const auto it = version_by_trace.find(span.trace_id);
    if (it == version_by_trace.end()) continue;  // raced the stop flag
    EXPECT_EQ(span.arg, it->second) << "trace " << span.trace_id;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  buffer.Clear();
}

TEST(ServeServer, OptionsFromEnvParsesAndClamps) {
  setenv("AMS_SERVE_BATCH", "32", 1);
  setenv("AMS_SERVE_MAX_WAIT_MS", "2.5", 1);
  ServerOptions options = ServerOptions::FromEnv();
  EXPECT_EQ(options.max_batch, 32);
  EXPECT_DOUBLE_EQ(options.max_wait_ms, 2.5);

  setenv("AMS_SERVE_BATCH", "0", 1);        // below minimum: keep default
  setenv("AMS_SERVE_MAX_WAIT_MS", "oops", 1);
  options = ServerOptions::FromEnv();
  EXPECT_EQ(options.max_batch, ServerOptions{}.max_batch);
  EXPECT_DOUBLE_EQ(options.max_wait_ms, ServerOptions{}.max_wait_ms);

  unsetenv("AMS_SERVE_BATCH");
  unsetenv("AMS_SERVE_MAX_WAIT_MS");
}

}  // namespace
}  // namespace ams::serve
