// Tests for the recurrent cells (LSTM/GRU) and the ARIMA implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "optim/optimizer.h"
#include "seq/recurrent.h"
#include "ts/arima.h"
#include "util/rng.h"

namespace ams {
namespace {

using la::Matrix;
using tensor::Tensor;

// --- LSTM / GRU -------------------------------------------------------------

TEST(LstmTest, StateShapes) {
  Rng rng(1);
  seq::LstmCell cell(3, 5, &rng);
  auto state = cell.InitialState(4);
  EXPECT_EQ(state.h.rows(), 4);
  EXPECT_EQ(state.h.cols(), 5);
  Tensor x = Tensor::Constant(Matrix::Ones(4, 3));
  auto next = cell.Step(x, state);
  EXPECT_EQ(next.h.rows(), 4);
  EXPECT_EQ(next.c.cols(), 5);
  EXPECT_EQ(cell.Parameters().size(), 12u);  // 4 gates x (Wx, Wh, b)
}

TEST(GruTest, StateShapes) {
  Rng rng(2);
  seq::GruCell cell(3, 5, &rng);
  Tensor h = cell.InitialState(2);
  Tensor x = Tensor::Constant(Matrix::Ones(2, 3));
  Tensor next = cell.Step(x, h);
  EXPECT_EQ(next.rows(), 2);
  EXPECT_EQ(next.cols(), 5);
  EXPECT_EQ(cell.Parameters().size(), 9u);  // 3 gates x (Wx, Wh, b)
}

TEST(RecurrentTest, HiddenStateBounded) {
  // tanh-bounded dynamics: hidden values stay in (-1, 1) whatever the input.
  Rng rng(3);
  seq::LstmCell lstm(2, 4, &rng);
  seq::GruCell gru(2, 4, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 10; ++t) {
    steps.push_back(Tensor::Constant(Matrix(3, 2, 100.0)));
  }
  Tensor hl = seq::EncodeSequence(lstm, steps);
  Tensor hg = seq::EncodeSequence(gru, steps);
  EXPECT_LE(hl.value().Max(), 1.0);
  EXPECT_GE(hl.value().Min(), -1.0);
  EXPECT_LE(hg.value().Max(), 1.0);
  EXPECT_GE(hg.value().Min(), -1.0);
}

TEST(RecurrentTest, GradientsFlowThroughTime) {
  Rng rng(4);
  seq::GruCell cell(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 6; ++t) {
    Matrix m(2, 2);
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) m(r, c) = rng.Normal();
    }
    steps.push_back(Tensor::Constant(m));
  }
  Tensor h = seq::EncodeSequence(cell, steps);
  tensor::Backward(tensor::SumSquares(h));
  for (const Tensor& p : cell.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0);
  }
}

TEST(RecurrentTest, LstmLearnsLastStepSign) {
  // Task: output the first feature of the final step (requires gating, not
  // just averaging).
  Rng rng(5);
  const int batch = 64;
  const int steps_count = 4;
  std::vector<Matrix> step_values(steps_count, Matrix(batch, 1));
  Matrix target(batch, 1);
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < steps_count; ++t) {
      step_values[t](b, 0) = rng.Normal();
    }
    target(b, 0) = step_values[steps_count - 1](b, 0);
  }
  seq::LstmCell cell(1, 8, &rng);
  nn::Dense head(8, 1, nn::Activation::kNone, &rng);
  std::vector<Tensor> params = cell.Parameters();
  for (auto& p : head.Parameters()) params.push_back(p);
  optim::Adam adam(params, 1e-2);
  std::vector<Tensor> steps;
  for (const Matrix& m : step_values) steps.push_back(Tensor::Constant(m));
  Tensor y = Tensor::Constant(target);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    adam.ZeroGrad();
    Tensor pred = head.Forward(seq::EncodeSequence(cell, steps));
    Tensor loss = tensor::MseLoss(pred, y);
    tensor::Backward(loss);
    adam.Step();
    final_loss = loss.value()(0, 0);
  }
  EXPECT_LT(final_loss, 0.05);
}

// --- ARIMA ------------------------------------------------------------------

TEST(ArimaTest, DifferenceOperator) {
  std::vector<double> s = {1, 3, 6, 10};
  auto d1 = ts::Difference(s, 1);
  ASSERT_EQ(d1.size(), 3u);
  EXPECT_DOUBLE_EQ(d1[0], 2);
  EXPECT_DOUBLE_EQ(d1[2], 4);
  auto d2 = ts::Difference(s, 2);
  ASSERT_EQ(d2.size(), 2u);
  EXPECT_DOUBLE_EQ(d2[0], 1);
  auto d0 = ts::Difference(s, 0);
  EXPECT_EQ(d0, s);
}

TEST(ArimaTest, MeanModelForecastsMean) {
  std::vector<double> s = {5, 7, 6, 8, 4, 6};
  auto model = ts::ArimaModel::Fit(s, ts::ArimaOrder{0, 0, 0});
  ASSERT_TRUE(model.ok());
  auto forecast = model.ValueOrDie().Forecast(3);
  for (double f : forecast) EXPECT_NEAR(f, 6.0, 1e-6);
}

TEST(ArimaTest, DriftModelExtrapolatesLinearTrend) {
  std::vector<double> s;
  for (int t = 0; t < 12; ++t) s.push_back(10.0 + 3.0 * t);
  auto model = ts::ArimaModel::Fit(s, ts::ArimaOrder{0, 1, 0});
  ASSERT_TRUE(model.ok());
  auto forecast = model.ValueOrDie().Forecast(2);
  EXPECT_NEAR(forecast[0], 10.0 + 3.0 * 12, 1e-6);
  EXPECT_NEAR(forecast[1], 10.0 + 3.0 * 13, 1e-6);
}

TEST(ArimaTest, Ar1RecoversCoefficient) {
  Rng rng(6);
  std::vector<double> s = {0.0};
  const double phi = 0.7;
  for (int t = 1; t < 400; ++t) {
    s.push_back(phi * s.back() + rng.Normal() * 0.5);
  }
  auto model = ts::ArimaModel::Fit(s, ts::ArimaOrder{1, 0, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.ValueOrDie().ar_coefficients()[0], phi, 0.1);
}

TEST(ArimaTest, ForecastOfAr1DecaysTowardMean) {
  Rng rng(7);
  std::vector<double> s = {5.0};
  for (int t = 1; t < 300; ++t) {
    s.push_back(0.8 * s.back() + rng.Normal() * 0.2);
  }
  auto model = ts::ArimaModel::Fit(s, ts::ArimaOrder{1, 0, 0});
  ASSERT_TRUE(model.ok());
  auto forecast = model.ValueOrDie().Forecast(20);
  // |forecast| decays (the AR(1) pulls toward its unconditional mean).
  EXPECT_LT(std::fabs(forecast[19] - forecast[18]),
            std::fabs(forecast[1] - forecast[0]) + 1e-9);
}

TEST(ArimaTest, RejectsImpossibleOrders) {
  std::vector<double> tiny = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ts::ArimaModel::Fit(tiny, ts::ArimaOrder{3, 0, 3}).ok());
  EXPECT_FALSE(ts::ArimaModel::Fit(tiny, ts::ArimaOrder{-1, 0, 0}).ok());
  EXPECT_FALSE(ts::ArimaModel::Fit({1.0}, ts::ArimaOrder{0, 1, 0}).ok());
}

TEST(ArimaTest, FitAutoAlwaysSucceedsForShortSeries) {
  // Down to 2 observations FitAuto must return something usable.
  for (int length = 2; length <= 10; ++length) {
    std::vector<double> s;
    for (int t = 0; t < length; ++t) s.push_back(100.0 + 5.0 * t);
    auto model = ts::ArimaModel::FitAuto(s);
    ASSERT_TRUE(model.ok()) << "length " << length;
    auto forecast = model.ValueOrDie().Forecast(1);
    EXPECT_TRUE(std::isfinite(forecast[0]));
  }
}

TEST(ArimaTest, FitAutoPrefersDifferencingForTrendedSeries) {
  Rng rng(8);
  std::vector<double> s;
  double level = 100.0;
  for (int t = 0; t < 60; ++t) {
    level += 5.0 + rng.Normal() * 0.5;
    s.push_back(level);
  }
  auto model = ts::ArimaModel::FitAuto(s);
  ASSERT_TRUE(model.ok());
  // A strongly trended series forecast must continue upward.
  auto forecast = model.ValueOrDie().Forecast(1);
  EXPECT_GT(forecast[0], s.back());
}

TEST(ArimaTest, RejectsNonFiniteInput) {
  std::vector<double> s = {1.0, 2.0, std::nan(""), 4.0, 5.0, 6.0};
  EXPECT_FALSE(ts::ArimaModel::Fit(s, ts::ArimaOrder{1, 0, 0}).ok());
}

TEST(ArimaTest, MaModelFitsMaProcess) {
  Rng rng(9);
  const double theta = 0.6;
  std::vector<double> eps = {rng.Normal()};
  std::vector<double> s;
  for (int t = 1; t < 500; ++t) {
    eps.push_back(rng.Normal());
    s.push_back(eps[t] + theta * eps[t - 1]);
  }
  auto model = ts::ArimaModel::Fit(s, ts::ArimaOrder{0, 0, 1});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.ValueOrDie().ma_coefficients()[0], theta, 0.15);
}

// Parameterized sweep over ARIMA orders on a seasonal-ish revenue series:
// the fit must always succeed on a 15-quarter history and produce a finite
// positive forecast (the usage pattern of the ARIMA baseline).
struct OrderCase {
  int p, d, q;
};

class ArimaOrderSweep : public ::testing::TestWithParam<OrderCase> {};

TEST_P(ArimaOrderSweep, FitsFifteenQuarterRevenueHistory) {
  Rng rng(10);
  std::vector<double> s;
  double base = 400.0;
  for (int t = 0; t < 15; ++t) {
    const double season = 1.0 + 0.2 * std::sin(t * M_PI / 2.0);
    base *= 1.02;
    s.push_back(base * season * (1.0 + 0.03 * rng.Normal()));
  }
  const OrderCase order = GetParam();
  auto model =
      ts::ArimaModel::Fit(s, ts::ArimaOrder{order.p, order.d, order.q});
  ASSERT_TRUE(model.ok());
  auto forecast = model.ValueOrDie().Forecast(1);
  EXPECT_TRUE(std::isfinite(forecast[0]));
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ArimaOrderSweep,
    ::testing::Values(OrderCase{0, 0, 0}, OrderCase{1, 0, 0},
                      OrderCase{2, 0, 0}, OrderCase{0, 1, 0},
                      OrderCase{1, 1, 0}, OrderCase{1, 1, 1},
                      OrderCase{2, 1, 1}));

}  // namespace
}  // namespace ams
