// Property sweeps over the synthetic market generator: for every profile
// and a range of seeds, the structural invariants that the experiments rely
// on must hold (valid panel, calibrated consensus, informative alternative
// data, sector correlation structure, graph buildability).
#include <gtest/gtest.h>

#include <cmath>

#include "data/cv.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "la/stats.h"

namespace ams::data {
namespace {

struct GeneratorCase {
  DatasetProfile profile;
  uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GeneratorCase> {
 protected:
  void SetUp() override {
    panel_ = GenerateMarket(
                 GeneratorConfig::Defaults(GetParam().profile,
                                           GetParam().seed))
                 .MoveValue();
  }
  Panel panel_;
};

TEST_P(GeneratorSweep, PanelValidates) {
  EXPECT_TRUE(panel_.Validate().ok());
}

TEST_P(GeneratorSweep, ConsensusCalibratedOverall) {
  double sum = 0.0;
  int count = 0;
  for (const Company& company : panel_.companies) {
    for (const CompanyQuarter& cq : company.quarters) {
      sum += cq.UnexpectedRevenue() / cq.revenue;
      ++count;
    }
  }
  EXPECT_LT(std::fabs(sum / count), 0.03);
}

TEST_P(GeneratorSweep, SurprisesAreMaterialButBounded) {
  // Typical |UR|/R must be a few percent: large enough that beating the
  // consensus matters, small enough that analysts are credible.
  double abs_sum = 0.0;
  int count = 0;
  for (const Company& company : panel_.companies) {
    for (const CompanyQuarter& cq : company.quarters) {
      abs_sum += std::fabs(cq.UnexpectedRevenue()) / cq.revenue;
      ++count;
    }
  }
  const double mean_abs = abs_sum / count;
  EXPECT_GT(mean_abs, 0.02);
  EXPECT_LT(mean_abs, 0.15);
}

TEST_P(GeneratorSweep, EveryAltChannelTracksRevenue) {
  for (int c = 0; c < panel_.num_alt_channels; ++c) {
    std::vector<double> alt_changes, rev_changes;
    for (const Company& company : panel_.companies) {
      for (size_t t = 4; t < company.quarters.size(); ++t) {
        alt_changes.push_back(std::log(company.quarters[t].alt[c] /
                                       company.quarters[t - 4].alt[c]));
        rev_changes.push_back(std::log(company.quarters[t].revenue /
                                       company.quarters[t - 4].revenue));
      }
    }
    EXPECT_GT(la::PearsonCorrelation(alt_changes, rev_changes), 0.2)
        << "channel " << c;
  }
}

TEST_P(GeneratorSweep, CorrelationGraphBuildsOnTrainWindow) {
  graph::CorrelationGraphOptions options;
  auto g = graph::CompanyGraph::BuildFromRevenue(
      panel_.RevenueHistories(panel_.num_quarters / 2), options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_nodes(), panel_.num_companies());
  for (int i = 0; i < g.ValueOrDie().num_nodes(); ++i) {
    EXPECT_GE(g.ValueOrDie().Degree(i), options.top_k);
  }
}

TEST_P(GeneratorSweep, FullCvScheduleIsFeasible) {
  auto folds = TimeSeriesCvFolds(panel_.num_quarters,
                                 DefaultCvOptions(panel_.profile));
  ASSERT_TRUE(folds.ok());
  FeatureBuilder builder(&panel_, FeatureOptions{});
  for (const CvFold& fold : folds.ValueOrDie()) {
    EXPECT_TRUE(builder.Build(fold.train_quarters).ok());
    EXPECT_TRUE(builder.Build({fold.valid_quarter}).ok());
    EXPECT_TRUE(builder.Build({fold.test_quarter}).ok());
  }
}

TEST_P(GeneratorSweep, FeaturesAreFiniteAndPositiveRatios) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto folds = TimeSeriesCvFolds(panel_.num_quarters,
                                 DefaultCvOptions(panel_.profile))
                   .MoveValue();
  auto dataset = builder.Build({folds.back().test_quarter}).MoveValue();
  EXPECT_TRUE(dataset.x.AllFinite());
  // Ratio-normalized revenue/alt features are positive.
  for (int r = 0; r < dataset.num_samples(); ++r) {
    for (int c = 0; c < dataset.lag_k * dataset.lag_block_width; ++c) {
      EXPECT_GT(dataset.x(r, c), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, GeneratorSweep,
    ::testing::Values(
        GeneratorCase{DatasetProfile::kTransactionAmount, 1},
        GeneratorCase{DatasetProfile::kTransactionAmount, 42},
        GeneratorCase{DatasetProfile::kTransactionAmount, 777},
        GeneratorCase{DatasetProfile::kMapQuery, 1},
        GeneratorCase{DatasetProfile::kMapQuery, 42},
        GeneratorCase{DatasetProfile::kMapQuery, 777}));

}  // namespace
}  // namespace ams::data
