// Fuzz / property tests for the untrusted-input surfaces of the serving
// stack: the AMSMODEL1 artifact loader and the obs JSON parser.
//
// Deterministic (fixed-seed) mutation fuzzing, run under
// -DAMS_SANITIZE=address in tools/check_serve.sh: every mutated input must
// produce either a clean error Status or a well-formed value — never a
// crash, hang, overflow, or sanitizer report.
//
// Two mutation regimes for artifacts:
//   * raw mutations leave the CRC32 footer stale, so layer 1 (atomic_io)
//     must reject everything;
//   * re-footered mutations recompute the footer over the mutated payload,
//     deliberately bypassing the CRC to exercise the bounds-checked
//     checkpoint decoder and the model validators underneath.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ams/ams_model.h"
#include "data/features.h"
#include "data/generator.h"
#include "gbdt/gbdt.h"
#include "graph/company_graph.h"
#include "obs/json_parse.h"
#include "obs/report.h"
#include "robust/atomic_io.h"
#include "serve/artifact.h"
#include "util/rng.h"

namespace ams::serve {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("ams_serve_fuzz_" + name)).string();
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// One deterministic mutation: bit flip, byte splice, truncation, or
/// duplication, chosen and located by `rng`.
std::string Mutate(const std::string& input, Rng* rng) {
  std::string bytes = input;
  switch (rng->UniformInt(4)) {
    case 0: {  // flip 1-8 random bits
      const int flips = 1 + static_cast<int>(rng->UniformInt(8));
      for (int i = 0; i < flips && !bytes.empty(); ++i) {
        const size_t pos = rng->UniformInt(bytes.size());
        bytes[pos] ^= static_cast<char>(1u << rng->UniformInt(8));
      }
      break;
    }
    case 1: {  // overwrite a random run with random bytes
      if (bytes.empty()) break;
      const size_t pos = rng->UniformInt(bytes.size());
      const size_t len =
          std::min(bytes.size() - pos, rng->UniformInt(64) + size_t{1});
      for (size_t i = 0; i < len; ++i) {
        bytes[pos + i] = static_cast<char>(rng->UniformInt(256));
      }
      break;
    }
    case 2:  // truncate to a random prefix
      bytes.resize(rng->UniformInt(bytes.size() + 1));
      break;
    default: {  // duplicate a random slice into the middle
      if (bytes.empty()) break;
      const size_t pos = rng->UniformInt(bytes.size());
      const size_t len =
          std::min(bytes.size() - pos, rng->UniformInt(32) + size_t{1});
      bytes.insert(pos, bytes.substr(pos, len));
      break;
    }
  }
  return bytes;
}

/// A small fitted AMS model (1 training epoch — the loader only cares about
/// structure, not quality).
const core::AmsModel& TinyAmsModel() {
  static const core::AmsModel* model = [] {
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 12;
    config.num_sectors = 3;
    data::Panel panel = data::GenerateMarket(config).MoveValue();
    data::FeatureBuilder builder(&panel, data::FeatureOptions{});
    data::Dataset train = builder.Build({4, 5}).MoveValue();
    data::Dataset valid = builder.Build({6}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);
    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph::CompanyGraph graph =
        graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(4),
                                              graph_options)
            .MoveValue();
    core::AmsConfig cfg;
    cfg.node_transform_layers = {8};
    cfg.gat.hidden_per_head = {4};
    cfg.gat.num_heads = 2;
    cfg.gat.out_features = 4;
    cfg.generator_hidden = {8};
    cfg.max_epochs = 1;
    cfg.patience = 1;
    auto* m = new core::AmsModel(cfg);
    m->Fit(train, valid, graph).Abort("fit tiny AMS model");
    return m;
  }();
  return *model;
}

const std::string& AmsArtifactBytes() {
  static const std::string* bytes = [] {
    const std::string path = TempPath("ams_base.bin");
    SaveAmsArtifact(path, TinyAmsModel()).Abort("save AMS artifact");
    auto* b = new std::string(ReadRaw(path));
    fs::remove(path);
    return b;
  }();
  return *bytes;
}

const std::string& GbdtArtifactBytes() {
  static const std::string* bytes = [] {
    const int n = 120, f = 4;
    la::Matrix x(n, f), y(n, 1);
    Rng rng(11);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < f; ++c) x(r, c) = rng.Uniform(-1.0, 1.0);
      y(r, 0) = x(r, 1) - 0.5 * x(r, 3);
    }
    gbdt::GbdtOptions options;
    options.num_rounds = 10;
    gbdt::GbdtRegressor model(options);
    model.Fit(x, y).Abort("fit tiny GBDT");
    const std::string path = TempPath("gbdt_base.bin");
    SaveGbdtArtifact(path, model).Abort("save GBDT artifact");
    auto* b = new std::string(ReadRaw(path));
    fs::remove(path);
    return b;
  }();
  return *bytes;
}

/// Loads a mutated AMS artifact; on (rare, CRC-bypassing) success the model
/// must still be fully usable — a half-validated model would be worse than
/// a rejection.
void CheckAmsLoad(const std::string& path) {
  auto model = LoadAmsArtifact(path);
  if (model.ok()) {
    EXPECT_TRUE(model.ValueOrDie().fitted());
    EXPECT_GT(model.ValueOrDie().num_features(), 0);
    EXPECT_GT(model.ValueOrDie().num_companies(), 0);
  }
}

TEST(ServeFuzz, RawAmsMutationsAlwaysRejectedCleanly) {
  const std::string path = TempPath("ams_raw.bin");
  for (uint64_t seed = 0; seed < 150; ++seed) {
    Rng rng(seed);
    const std::string mutated = Mutate(AmsArtifactBytes(), &rng);
    if (mutated == AmsArtifactBytes()) continue;
    WriteRaw(path, mutated);
    // Stale CRC footer: layer 1 must reject every raw mutation.
    EXPECT_FALSE(LoadAmsArtifact(path).ok()) << "seed " << seed;
  }
  fs::remove(path);
}

TEST(ServeFuzz, RefooteredAmsMutationsAreStatusNeverUb) {
  const std::string& base = AmsArtifactBytes();
  ASSERT_GT(base.size(), 16u);
  const std::string payload = base.substr(0, base.size() - 16);
  const std::string path = TempPath("ams_refooter.bin");
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(1000 + seed);
    std::string mutated = Mutate(payload, &rng);
    // Valid footer over a mutated payload: the CRC passes and the decoder
    // plus model validators must absorb arbitrary structural damage.
    WriteRaw(path, mutated + robust::CrcFooter(mutated));
    CheckAmsLoad(path);
  }
  fs::remove(path);
}

TEST(ServeFuzz, RefooteredGbdtMutationsAreStatusNeverUb) {
  const std::string& base = GbdtArtifactBytes();
  ASSERT_GT(base.size(), 16u);
  const std::string payload = base.substr(0, base.size() - 16);
  const std::string path = TempPath("gbdt_refooter.bin");
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(2000 + seed);
    std::string mutated = Mutate(payload, &rng);
    WriteRaw(path, mutated + robust::CrcFooter(mutated));
    auto model = LoadGbdtArtifact(path);
    if (model.ok()) {
      // Survivors must predict without walking out of their node arrays.
      la::Matrix probe(1, model.ValueOrDie().num_features(), 0.5);
      auto pred = model.ValueOrDie().Predict(probe);
      EXPECT_TRUE(pred.ok());
    }
  }
  fs::remove(path);
}

TEST(ServeFuzz, DecodeArtifactHandlesArbitraryShortInputs) {
  for (uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(3000 + seed);
    std::string bytes(rng.UniformInt(96), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
    auto result = DecodeArtifact(bytes);  // must not crash or hang
    if (bytes.size() < 9 || bytes.compare(0, 9, "AMSMODEL1") != 0) {
      EXPECT_FALSE(result.ok());
    }
  }
}

// ---------------------------------------------------------------------------
// obs/json_parse: random bytes + serialize/parse round-trip property.
// ---------------------------------------------------------------------------

TEST(ServeFuzz, JsonParserSurvivesRandomBytes) {
  const std::string alphabet = "{}[]\",:0123456789.eE+-truefalsn \t\n\\u\x01";
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    Rng rng(4000 + seed);
    std::string text(rng.UniformInt(48), ' ');
    // Half the corpus from a JSON-ish alphabet (deeper parser penetration),
    // half fully random bytes.
    for (char& c : text) {
      c = seed % 2 == 0
              ? alphabet[rng.UniformInt(alphabet.size())]
              : static_cast<char>(rng.UniformInt(256));
    }
    auto result = obs::json::Parse(text);  // Status or Value, never UB
    (void)result;
  }
}

TEST(ServeFuzz, JsonParserSurvivesMutatedValidDocuments) {
  const std::string valid =
      R"({"schema":"x","n":-12.75e-2,"a":[1,true,null,"sA"],)"
      R"("o":{"k":"v","empty":{}}})";
  ASSERT_TRUE(obs::json::Parse(valid).ok());
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(5000 + seed);
    auto result = obs::json::Parse(Mutate(valid, &rng));
    (void)result;
  }
}

/// Random JSON value built from the same serialization helpers the obs
/// reports use (JsonEscape / JsonNumber), so the property doubles as a
/// writer/reader compatibility check.
std::string RandomJson(Rng* rng, int depth, obs::json::Value* expect) {
  const uint64_t kind = rng->UniformInt(depth >= 3 ? 4 : 6);
  switch (kind) {
    case 0:
      expect->kind = obs::json::Value::Kind::kNull;
      return "null";
    case 1:
      expect->kind = obs::json::Value::Kind::kBool;
      expect->bool_value = rng->Bernoulli(0.5);
      return expect->bool_value ? "true" : "false";
    case 2: {
      expect->kind = obs::json::Value::Kind::kNumber;
      // %.17g round-trips doubles exactly; avoid non-finite (serialized as
      // null by design, which is covered by case 0).
      expect->number = rng->Uniform(-1e6, 1e6);
      return obs::JsonNumber(expect->number);
    }
    case 3: {
      expect->kind = obs::json::Value::Kind::kString;
      std::string s(rng->UniformInt(12), ' ');
      for (char& c : s) c = static_cast<char>(rng->UniformInt(128));
      expect->string_value = s;
      return obs::JsonEscape(s);
    }
    case 4: {
      expect->kind = obs::json::Value::Kind::kArray;
      std::string out = "[";
      const uint64_t n = rng->UniformInt(4);
      for (uint64_t i = 0; i < n; ++i) {
        if (i > 0) out += ",";
        expect->array.emplace_back();
        out += RandomJson(rng, depth + 1, &expect->array.back());
      }
      return out + "]";
    }
    default: {
      expect->kind = obs::json::Value::Kind::kObject;
      std::string out = "{";
      const uint64_t n = rng->UniformInt(4);
      for (uint64_t i = 0; i < n; ++i) {
        if (i > 0) out += ",";
        std::string key = "k" + std::to_string(i);
        expect->object.emplace_back(key, obs::json::Value{});
        out += obs::JsonEscape(key) + ":" +
               RandomJson(rng, depth + 1, &expect->object.back().second);
      }
      return out + "}";
    }
  }
}

void ExpectSameValue(const obs::json::Value& expect,
                     const obs::json::Value& got) {
  ASSERT_EQ(static_cast<int>(expect.kind), static_cast<int>(got.kind));
  switch (expect.kind) {
    case obs::json::Value::Kind::kBool:
      EXPECT_EQ(expect.bool_value, got.bool_value);
      break;
    case obs::json::Value::Kind::kNumber:
      EXPECT_EQ(expect.number, got.number);  // %.17g exact round-trip
      break;
    case obs::json::Value::Kind::kString:
      EXPECT_EQ(expect.string_value, got.string_value);
      break;
    case obs::json::Value::Kind::kArray:
      ASSERT_EQ(expect.array.size(), got.array.size());
      for (size_t i = 0; i < expect.array.size(); ++i) {
        ExpectSameValue(expect.array[i], got.array[i]);
      }
      break;
    case obs::json::Value::Kind::kObject:
      ASSERT_EQ(expect.object.size(), got.object.size());
      for (size_t i = 0; i < expect.object.size(); ++i) {
        EXPECT_EQ(expect.object[i].first, got.object[i].first);
        ExpectSameValue(expect.object[i].second, got.object[i].second);
      }
      break;
    case obs::json::Value::Kind::kNull:
      break;
  }
}

TEST(ServeFuzz, JsonSerializeParseRoundTripProperty) {
  for (uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(6000 + seed);
    obs::json::Value expected;
    const std::string text = RandomJson(&rng, 0, &expected);
    auto parsed = obs::json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << text << " -> "
                             << parsed.status();
    ExpectSameValue(expected, parsed.ValueOrDie());
  }
}

}  // namespace
}  // namespace ams::serve
