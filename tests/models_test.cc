// Tests for the model zoo: every Regressor honours the Fit/Predict contract,
// the naive predictors compute their defined formulas, and random search
// picks by validation RMSE.
#include <gtest/gtest.h>

#include <cmath>

#include "data/cv.h"
#include "data/generator.h"
#include "models/ams_regressor.h"
#include "models/baselines.h"
#include "models/hpo.h"
#include "models/neural.h"
#include "models/zoo.h"

namespace ams::models {
namespace {

class ModelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 20;
    config.num_sectors = 4;
    panel_ = data::GenerateMarket(config).MoveValue();

    data::FeatureBuilder builder(&panel_, data::FeatureOptions{});
    train_ = builder.Build({4, 5, 6, 7}).MoveValue();
    valid_ = builder.Build({8}).MoveValue();
    test_ = builder.Build({9}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train_);
    standardizer.Apply(&train_);
    standardizer.Apply(&valid_);
    standardizer.Apply(&test_);

    context_.train = &train_;
    context_.valid = &valid_;
    context_.panel = &panel_;
    context_.last_train_quarter = 7;
    context_.seed = 42;
  }

  void ExpectFitPredictContract(Regressor* model) {
    // Predict before fit must fail cleanly.
    EXPECT_FALSE(model->PredictNorm(test_).ok()) << model->name();
    ASSERT_TRUE(model->Fit(context_).ok()) << model->name();
    auto pred = model->PredictNorm(test_);
    ASSERT_TRUE(pred.ok()) << model->name();
    ASSERT_EQ(pred.ValueOrDie().size(),
              static_cast<size_t>(test_.num_samples()));
    for (double p : pred.ValueOrDie()) {
      EXPECT_TRUE(std::isfinite(p)) << model->name();
    }
  }

  data::Panel panel_;
  data::Dataset train_, valid_, test_;
  FitContext context_;
};

TEST_F(ModelsTest, LinearFamilyContract) {
  linear::LinearOptions ridge_options;
  ridge_options.alpha = 0.1;
  ridge_options.l1_ratio = 0.0;
  LinearRegressor ridge("Ridge", ridge_options);
  ExpectFitPredictContract(&ridge);

  linear::LinearOptions lasso_options;
  lasso_options.alpha = 0.001;
  lasso_options.l1_ratio = 1.0;
  LinearRegressor lasso("Lasso", lasso_options);
  ExpectFitPredictContract(&lasso);
  EXPECT_EQ(lasso.name(), "Lasso");
}

TEST_F(ModelsTest, XgboostContract) {
  gbdt::GbdtOptions options;
  options.num_rounds = 20;
  XgboostRegressor model(options);
  ExpectFitPredictContract(&model);
}

TEST_F(ModelsTest, MlpContract) {
  NeuralTrainOptions options;
  options.max_epochs = 20;
  options.patience = 5;
  MlpRegressor model({16}, options);
  ExpectFitPredictContract(&model);
}

TEST_F(ModelsTest, RecurrentContract) {
  NeuralTrainOptions options;
  options.max_epochs = 10;
  options.patience = 5;
  RecurrentRegressor lstm(RecurrentRegressor::CellKind::kLstm, 8, options);
  ExpectFitPredictContract(&lstm);
  EXPECT_EQ(lstm.name(), "Lstm");
  RecurrentRegressor gru(RecurrentRegressor::CellKind::kGru, 8, options);
  ExpectFitPredictContract(&gru);
  EXPECT_EQ(gru.name(), "GRU");
}

TEST_F(ModelsTest, ArimaContract) {
  ArimaRegressor model;
  ExpectFitPredictContract(&model);
}

TEST_F(ModelsTest, AmsContract) {
  core::AmsConfig config;
  config.node_transform_layers = {16};
  config.gat.hidden_per_head = {4};
  config.gat.num_heads = 2;
  config.gat.out_features = 8;
  config.max_epochs = 30;
  config.patience = 10;
  AmsRegressor model(config, 3);
  ExpectFitPredictContract(&model);
  EXPECT_NE(model.company_graph(), nullptr);
  EXPECT_EQ(model.company_graph()->num_nodes(), panel_.num_companies());
}

TEST_F(ModelsTest, RatioRegressorFormulas) {
  // QoQ: (A_t / A_{t-1}) R_{t-1} - E_t, normalized by scale.
  RatioRegressor qoq(RatioRegressor::Kind::kQoQ, 0);
  ASSERT_TRUE(qoq.Fit(context_).ok());
  auto pred = qoq.PredictNorm(test_).MoveValue();
  const data::SampleMeta& meta = test_.meta[5];
  const auto& company = panel_.companies[meta.company];
  const auto& now = company.quarters[meta.quarter];
  const auto& prev = company.quarters[meta.quarter - 1];
  const double expected =
      (now.alt[0] / prev.alt[0] * prev.revenue - now.consensus) / meta.scale;
  EXPECT_NEAR(pred[5], expected, 1e-9);

  // YoY uses the 4-quarter lag.
  RatioRegressor yoy(RatioRegressor::Kind::kYoY, 0);
  ASSERT_TRUE(yoy.Fit(context_).ok());
  auto pred_yoy = yoy.PredictNorm(test_).MoveValue();
  const auto& year_ago = company.quarters[meta.quarter - 4];
  const double expected_yoy =
      (now.alt[0] / year_ago.alt[0] * year_ago.revenue - now.consensus) /
      meta.scale;
  EXPECT_NEAR(pred_yoy[5], expected_yoy, 1e-9);
}

TEST_F(ModelsTest, RatioRegressorRejectsBadChannel) {
  RatioRegressor model(RatioRegressor::Kind::kQoQ, 5);
  EXPECT_FALSE(model.Fit(context_).ok());
}

TEST_F(ModelsTest, ValidationRmseMatchesManual) {
  linear::LinearOptions options;
  options.alpha = 0.1;
  options.l1_ratio = 0.0;
  LinearRegressor model("Ridge", options);
  ASSERT_TRUE(model.Fit(context_).ok());
  auto rmse = ValidationRmse(model, valid_);
  ASSERT_TRUE(rmse.ok());
  auto pred = model.PredictNorm(valid_).MoveValue();
  double sse = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    sse += std::pow(pred[i] - valid_.y[i], 2);
  }
  EXPECT_NEAR(rmse.ValueOrDie(), std::sqrt(sse / pred.size()), 1e-12);
}

TEST_F(ModelsTest, ZooHasPaperRoster) {
  auto zoo = BuildModelZoo(/*num_alt_channels=*/1);
  std::vector<std::string> names;
  for (const auto& spec : zoo) names.push_back(spec.name);
  const std::vector<std::string> expected = {
      "AMS",  "XGBoost", "MLP", "Lasso", "Ridge", "Elasticnet",
      "Lstm", "GRU",     "ARIMA", "YoY", "QoQ"};
  EXPECT_EQ(names, expected);
  // Two channels add per-channel YoY/QoQ rows (map-query table layout).
  auto zoo2 = BuildModelZoo(2);
  EXPECT_EQ(zoo2.size(), zoo.size() + 2);
}

TEST_F(ModelsTest, ZooFactoriesProduceWorkingModels) {
  Rng rng(7);
  for (const auto& spec : BuildModelZoo(1)) {
    if (spec.name == "AMS" || spec.name == "Lstm" || spec.name == "GRU" ||
        spec.name == "MLP") {
      continue;  // covered above; skipping keeps this test fast
    }
    auto model = spec.factory(&rng);
    ASSERT_NE(model, nullptr) << spec.name;
    ASSERT_TRUE(model->Fit(context_).ok()) << spec.name;
    EXPECT_TRUE(model->PredictNorm(test_).ok()) << spec.name;
  }
}

TEST_F(ModelsTest, RandomSearchPicksBestValidTrial) {
  // A spec whose trials alternate between a good and a terrible alpha: the
  // winner must be the good one.
  ModelSpec spec;
  spec.name = "RidgeToggle";
  spec.default_trials = 4;
  int counter = 0;
  spec.factory = [&counter](Rng*) -> std::unique_ptr<Regressor> {
    linear::LinearOptions options;
    options.alpha = (counter++ % 2 == 0) ? 1e6 : 0.05;
    options.l1_ratio = 0.0;
    return std::make_unique<LinearRegressor>("RidgeToggle", options);
  };
  HpoOptions hpo;
  hpo.trials = 4;
  auto outcome = RandomSearch(spec, context_, hpo);
  ASSERT_TRUE(outcome.ok());
  // The huge-alpha model predicts ~constant; the chosen one must beat it.
  linear::LinearOptions bad;
  bad.alpha = 1e6;
  bad.l1_ratio = 0.0;
  LinearRegressor baseline("bad", bad);
  ASSERT_TRUE(baseline.Fit(context_).ok());
  EXPECT_LT(outcome.ValueOrDie().valid_rmse,
            ValidationRmse(baseline, valid_).ValueOrDie() + 1e-12);
}

TEST_F(ModelsTest, RandomSearchToleratesFailingTrials) {
  ModelSpec spec;
  spec.name = "Flaky";
  int counter = 0;
  spec.factory = [&counter](Rng*) -> std::unique_ptr<Regressor> {
    linear::LinearOptions options;
    // Every other trial is invalid (negative alpha -> Fit fails).
    options.alpha = (counter++ % 2 == 0) ? -1.0 : 0.1;
    options.l1_ratio = 0.0;
    return std::make_unique<LinearRegressor>("Flaky", options);
  };
  HpoOptions hpo;
  hpo.trials = 4;
  auto outcome = RandomSearch(spec, context_, hpo);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().trials_failed, 2);
}

TEST_F(ModelsTest, RandomSearchFailsWhenAllTrialsFail) {
  ModelSpec spec;
  spec.name = "Broken";
  spec.factory = [](Rng*) -> std::unique_ptr<Regressor> {
    linear::LinearOptions options;
    options.alpha = -1.0;
    return std::make_unique<LinearRegressor>("Broken", options);
  };
  HpoOptions hpo;
  hpo.trials = 3;
  EXPECT_FALSE(RandomSearch(spec, context_, hpo).ok());
}

}  // namespace
}  // namespace ams::models
