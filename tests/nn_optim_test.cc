// Tests for src/nn (init, Dense, Mlp) and src/optim (SGD, Adam).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "nn/init.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams {
namespace {

using la::Matrix;
using tensor::Tensor;

// --- init -------------------------------------------------------------------

TEST(InitTest, XavierWithinBound) {
  Rng rng(1);
  const int fan_in = 30, fan_out = 20;
  Matrix w = nn::XavierUniform(fan_out, fan_in, fan_in, fan_out, &rng);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (int r = 0; r < w.rows(); ++r) {
    for (int c = 0; c < w.cols(); ++c) {
      EXPECT_LE(std::fabs(w(r, c)), bound);
    }
  }
  // Not degenerate.
  EXPECT_GT(w.Norm(), 0.0);
}

TEST(InitTest, HeNormalVarianceRoughlyTwoOverFanIn) {
  Rng rng(2);
  const int fan_in = 64;
  Matrix w = nn::HeNormal(200, fan_in, fan_in, &rng);
  double sq = 0.0;
  for (int r = 0; r < w.rows(); ++r) {
    for (int c = 0; c < w.cols(); ++c) sq += w(r, c) * w(r, c);
  }
  EXPECT_NEAR(sq / w.size(), 2.0 / fan_in, 0.005);
}

// --- Dense / Mlp ------------------------------------------------------------

TEST(DenseTest, ForwardShapeAndBias) {
  Rng rng(3);
  nn::Dense layer(4, 3, nn::Activation::kNone, &rng);
  Tensor x = Tensor::Constant(Matrix::Ones(5, 4));
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // W and b
}

TEST(DenseTest, NoBiasVariant) {
  Rng rng(4);
  nn::Dense layer(4, 3, nn::Activation::kNone, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(DenseTest, ReluClampsNegative) {
  Rng rng(5);
  nn::Dense layer(2, 2, nn::Activation::kRelu, &rng);
  Tensor x = Tensor::Constant(Matrix{{-100.0, -100.0}});
  Tensor y = layer.Forward(x);
  for (int c = 0; c < 2; ++c) EXPECT_GE(y.value()(0, c), 0.0);
}

TEST(DenseTest, SetWeightsOverrides) {
  Rng rng(6);
  nn::Dense layer(2, 1, nn::Activation::kNone, &rng);
  layer.SetWeights(Matrix{{2.0, 3.0}}, Matrix{{1.0}});
  Tensor x = Tensor::Constant(Matrix{{10.0, 100.0}});
  EXPECT_DOUBLE_EQ(layer.Forward(x).value()(0, 0), 321.0);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(7);
  nn::Mlp mlp(10, {8, 4}, 1, nn::Activation::kRelu, &rng);
  // Three Dense layers, each with W + b.
  EXPECT_EQ(mlp.Parameters().size(), 6u);
  EXPECT_EQ(mlp.in_features(), 10);
  EXPECT_EQ(mlp.out_features(), 1);
}

TEST(MlpTest, EmptyHiddenIsLinear) {
  Rng rng(8);
  nn::Mlp mlp(3, {}, 2, nn::Activation::kRelu, &rng);
  EXPECT_EQ(mlp.Parameters().size(), 2u);
  Tensor x = Tensor::Constant(Matrix::Ones(1, 3));
  EXPECT_EQ(mlp.Forward(x).cols(), 2);
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(9);
  const int n = 256;
  Matrix x(n, 2), y(n, 1);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = rng.Normal();
    y(r, 0) = 2.0 * x(r, 0) - 1.0 * x(r, 1) + 0.5;
  }
  nn::Mlp mlp(2, {16}, 1, nn::Activation::kRelu, &rng);
  optim::Adam adam(mlp.Parameters(), 1e-2);
  Tensor xt = Tensor::Constant(x);
  Tensor yt = Tensor::Constant(y);
  double loss_value = 0.0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    adam.ZeroGrad();
    Tensor loss = tensor::MseLoss(mlp.Forward(xt), yt);
    tensor::Backward(loss);
    adam.Step();
    loss_value = loss.value()(0, 0);
  }
  EXPECT_LT(loss_value, 1e-2);
}

// --- Optimizers -------------------------------------------------------------

TEST(SgdTest, QuadraticConverges) {
  // Minimize (w - 3)^2.
  Tensor w = Tensor::Parameter(Matrix{{0.0}});
  optim::Sgd sgd({w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    Tensor loss = tensor::SumSquares(tensor::AddScalar(w, -3.0));
    tensor::Backward(loss);
    sgd.Step();
  }
  EXPECT_NEAR(w.value()(0, 0), 3.0, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor w1 = Tensor::Parameter(Matrix{{0.0}});
  Tensor w2 = Tensor::Parameter(Matrix{{0.0}});
  optim::Sgd plain({w1}, 0.01);
  optim::Sgd momentum({w2}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain.ZeroGrad();
    Tensor loss1 = tensor::SumSquares(tensor::AddScalar(w1, -3.0));
    tensor::Backward(loss1);
    plain.Step();
    momentum.ZeroGrad();
    Tensor loss2 = tensor::SumSquares(tensor::AddScalar(w2, -3.0));
    tensor::Backward(loss2);
    momentum.Step();
  }
  EXPECT_LT(std::fabs(w2.value()(0, 0) - 3.0),
            std::fabs(w1.value()(0, 0) - 3.0));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::Parameter(Matrix{{5.0}});
  optim::Sgd sgd({w}, 0.1, 0.0, /*weight_decay=*/0.5);
  // Zero data gradient: only decay acts.
  for (int i = 0; i < 10; ++i) {
    sgd.ZeroGrad();
    Tensor loss = tensor::Scale(tensor::Sum(w), 0.0);
    tensor::Backward(loss);
    sgd.Step();
  }
  EXPECT_LT(w.value()(0, 0), 5.0 * std::pow(0.96, 10));
}

TEST(AdamTest, QuadraticConverges) {
  Tensor w = Tensor::Parameter(Matrix{{-4.0}});
  optim::Adam adam({w}, 0.1);
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    Tensor loss = tensor::SumSquares(tensor::AddScalar(w, -1.5));
    tensor::Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(w.value()(0, 0), 1.5, 1e-4);
}

TEST(AdamTest, RosenbrockMakesProgress) {
  // f(x, y) = (1-x)^2 + 100 (y - x^2)^2, minimum at (1, 1).
  Tensor x = Tensor::Parameter(Matrix{{-1.0}});
  Tensor y = Tensor::Parameter(Matrix{{1.0}});
  optim::Adam adam({x, y}, 0.02);
  auto loss_fn = [&]() {
    Tensor one_minus_x = tensor::AddScalar(tensor::Scale(x, -1.0), 1.0);
    Tensor y_minus_x2 = tensor::Sub(y, tensor::Mul(x, x));
    return tensor::Add(tensor::SumSquares(one_minus_x),
                       tensor::Scale(tensor::SumSquares(y_minus_x2), 100.0));
  };
  const double initial = loss_fn().value()(0, 0);
  for (int i = 0; i < 2000; ++i) {
    adam.ZeroGrad();
    Tensor loss = loss_fn();
    tensor::Backward(loss);
    adam.Step();
  }
  EXPECT_LT(loss_fn().value()(0, 0), initial / 100.0);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::Parameter(Matrix{{3.0, 4.0}});
  optim::Sgd sgd({w}, 1.0);
  Tensor loss = tensor::Sum(tensor::Mul(
      w, Tensor::Constant(Matrix{{3.0, 4.0}})));
  tensor::Backward(loss);
  // Gradient is (3, 4) with norm 5.
  const double pre = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-12);
  EXPECT_NEAR(w.grad().Norm(), 1.0, 1e-9);
  // Below the threshold: untouched.
  const double pre2 = sgd.ClipGradNorm(10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-9);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor w = Tensor::Parameter(Matrix{{1.0}});
  optim::Adam adam({w}, 0.1);
  Tensor loss = tensor::SumSquares(w);
  tensor::Backward(loss);
  EXPECT_NE(w.grad()(0, 0), 0.0);
  adam.ZeroGrad();
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.0);
}

}  // namespace
}  // namespace ams
