// Tests for the GBDT learner: single-tree behaviour, boosting convergence,
// regularization effects, early stopping and input validation.
#include <gtest/gtest.h>

#include <cmath>

#include "gbdt/gbdt.h"
#include "util/rng.h"

namespace ams::gbdt {
namespace {

using la::Matrix;

double TrainMse(const GbdtRegressor& model, const Matrix& x,
                const Matrix& y) {
  auto pred = model.Predict(x);
  EXPECT_TRUE(pred.ok());
  double mse = 0.0;
  for (int r = 0; r < x.rows(); ++r) {
    mse += std::pow(pred.ValueOrDie()[r] - y(r, 0), 2);
  }
  return mse / x.rows();
}

TEST(RegressionTreeTest, SingleSplitStepFunction) {
  // y = -1 for x < 0, +1 for x >= 0; gradients for first boosting round
  // from base 0 are -y.
  const int n = 50;
  Matrix x(n, 1);
  std::vector<double> grad(n), hess(n, 1.0);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = r < n / 2 ? -1.0 - r * 0.01 : 1.0 + r * 0.01;
    grad[r] = r < n / 2 ? 1.0 : -1.0;  // g = pred - y with pred = 0
    rows[r] = r;
  }
  GbdtOptions options;
  options.max_depth = 1;
  options.reg_lambda = 0.0;
  RegressionTree tree =
      RegressionTree::Grow(x, grad, hess, rows, {0}, options);
  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_EQ(tree.Depth(), 1);
  double left = -2.0, right = 2.0;
  EXPECT_NEAR(tree.PredictRow(&left), -1.0, 1e-9);
  EXPECT_NEAR(tree.PredictRow(&right), 1.0, 1e-9);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  Rng rng(1);
  const int n = 200;
  Matrix x(n, 2);
  std::vector<double> grad(n), hess(n, 1.0);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = rng.Normal();
    grad[r] = rng.Normal();
    rows[r] = r;
  }
  GbdtOptions options;
  options.max_depth = 3;
  options.min_child_weight = 1.0;
  RegressionTree tree =
      RegressionTree::Grow(x, grad, hess, rows, {0, 1}, options);
  EXPECT_LE(tree.Depth(), 3);
}

TEST(RegressionTreeTest, PureNodeBecomesLeaf) {
  // Constant gradients: no split can gain.
  Matrix x(10, 1);
  std::vector<double> grad(10, 2.0), hess(10, 1.0);
  std::vector<int> rows(10);
  for (int r = 0; r < 10; ++r) {
    x(r, 0) = r;
    rows[r] = r;
  }
  GbdtOptions options;
  RegressionTree tree =
      RegressionTree::Grow(x, grad, hess, rows, {0}, options);
  EXPECT_EQ(tree.num_leaves(), 1);
  // Leaf weight = -sum(g) / (sum(h) + lambda) = -20 / (10 + 1).
  double probe = 5.0;
  EXPECT_NEAR(tree.PredictRow(&probe), -20.0 / (10.0 + options.reg_lambda),
              1e-12);
}

TEST(GbdtTest, FitsNonlinearFunction) {
  Rng rng(2);
  const int n = 400;
  Matrix x(n, 2), y(n, 1);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Uniform(-2, 2);
    x(r, 1) = rng.Uniform(-2, 2);
    y(r, 0) = std::sin(x(r, 0)) + 0.5 * x(r, 1) * x(r, 1);
  }
  GbdtOptions options;
  options.num_rounds = 200;
  options.learning_rate = 0.1;
  options.max_depth = 4;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(TrainMse(model, x, y), 0.02);
}

TEST(GbdtTest, MoreRoundsReduceTrainError) {
  Rng rng(3);
  const int n = 300;
  Matrix x(n, 3), y(n, 1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 3; ++c) x(r, c) = rng.Normal();
    y(r, 0) = x(r, 0) * x(r, 1) + 0.3 * x(r, 2);
  }
  double previous = 1e18;
  for (int rounds : {5, 25, 100}) {
    GbdtOptions options;
    options.num_rounds = rounds;
    GbdtRegressor model(options);
    ASSERT_TRUE(model.Fit(x, y).ok());
    const double mse = TrainMse(model, x, y);
    EXPECT_LT(mse, previous);
    previous = mse;
  }
}

TEST(GbdtTest, MinChildWeightLimitsLeafSize) {
  Rng rng(4);
  const int n = 100;
  Matrix x(n, 1), y(n, 1);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    y(r, 0) = rng.Normal();
  }
  GbdtOptions options;
  options.num_rounds = 1;
  options.max_depth = 10;
  options.min_child_weight = 40.0;  // each child needs >= 40 samples
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  // With min 40 per child and 100 rows, at most 2 levels of splits fit.
  EXPECT_LE(model.num_trees(), 1);
}

TEST(GbdtTest, EarlyStoppingTruncatesEnsemble) {
  Rng rng(5);
  const int n = 200;
  Matrix x(n, 2), y(n, 1), vx(n, 2), vy(n, 1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 2; ++c) {
      x(r, c) = rng.Normal();
      vx(r, c) = rng.Normal();
    }
    y(r, 0) = x(r, 0) + rng.Normal();   // mostly noise
    vy(r, 0) = vx(r, 0) + rng.Normal();
  }
  GbdtOptions options;
  options.num_rounds = 500;
  options.early_stopping_rounds = 10;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y, &vx, &vy).ok());
  EXPECT_LT(model.num_trees(), 500);
}

TEST(GbdtTest, EarlyStoppingRequiresValidation) {
  GbdtOptions options;
  options.early_stopping_rounds = 5;
  GbdtRegressor model(options);
  Matrix x(10, 1, 1.0), y(10, 1, 1.0);
  EXPECT_FALSE(model.Fit(x, y).ok());
}

TEST(GbdtTest, SubsamplingStillLearns) {
  Rng rng(6);
  const int n = 400;
  Matrix x(n, 2), y(n, 1);
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = rng.Normal();
    y(r, 0) = 2.0 * x(r, 0);
  }
  GbdtOptions options;
  options.num_rounds = 150;
  options.subsample = 0.7;
  options.colsample = 0.5;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(TrainMse(model, x, y), 0.2);
}

TEST(GbdtTest, FeatureImportanceIdentifiesSignal) {
  Rng rng(7);
  const int n = 500;
  Matrix x(n, 4), y(n, 1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 4; ++c) x(r, c) = rng.Normal();
    y(r, 0) = 3.0 * x(r, 2) + 0.01 * rng.Normal();  // only feature 2 matters
  }
  GbdtOptions options;
  options.num_rounds = 50;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto importance = model.FeatureImportance();
  ASSERT_EQ(importance.size(), 4u);
  for (int c = 0; c < 4; ++c) {
    if (c != 2) EXPECT_GT(importance[2], importance[c] * 10.0);
  }
}

TEST(GbdtTest, PredictValidation) {
  GbdtRegressor unfitted;
  EXPECT_FALSE(unfitted.Predict(Matrix(2, 2, 0.0)).ok());
  Rng rng(8);
  Matrix x(20, 2), y(20, 1);
  for (int r = 0; r < 20; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = rng.Normal();
    y(r, 0) = x(r, 0);
  }
  GbdtOptions options;
  options.num_rounds = 3;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_FALSE(model.Predict(Matrix(2, 5, 0.0)).ok());
}

TEST(GbdtTest, RejectsInvalidOptions) {
  Matrix x(10, 1, 1.0), y(10, 1, 1.0);
  GbdtOptions options;
  options.learning_rate = 0.0;
  EXPECT_FALSE(GbdtRegressor(options).Fit(x, y).ok());
  options = {};
  options.subsample = 1.5;
  EXPECT_FALSE(GbdtRegressor(options).Fit(x, y).ok());
  options = {};
  options.max_depth = 0;
  EXPECT_FALSE(GbdtRegressor(options).Fit(x, y).ok());
}

// Parameterized: across depths the booster must be deterministic for a
// fixed seed and train error must be monotone nonincreasing in depth.
class GbdtDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(GbdtDepthSweep, DeterministicForFixedSeed) {
  Rng rng(9);
  const int n = 150;
  Matrix x(n, 3), y(n, 1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 3; ++c) x(r, c) = rng.Normal();
    y(r, 0) = x(r, 0) * x(r, 1);
  }
  GbdtOptions options;
  options.num_rounds = 20;
  options.max_depth = GetParam();
  options.subsample = 0.8;
  GbdtRegressor a(options), b(options);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  auto pa = a.Predict(x), pb = b.Predict(x);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(pa.ValueOrDie()[r], pb.ValueOrDie()[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, GbdtDepthSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace ams::gbdt
