// Tests for the paper's metrics (BC/BA, SR) including the properties proved
// in Lemma II.1 and the aggregation conventions documented in DESIGN.md.
#include <gtest/gtest.h>

#include <cmath>

#include "data/features.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace ams::metrics {
namespace {

TEST(BoundedCorrectionTest, Definition) {
  // BC = 1 iff |UR_hat - UR| < |UR|.
  EXPECT_EQ(BoundedCorrection(1.5, 1.0), 1);   // error 0.5 < 1
  EXPECT_EQ(BoundedCorrection(2.5, 1.0), 0);   // error 1.5 > 1
  EXPECT_EQ(BoundedCorrection(0.5, 1.0), 1);
  EXPECT_EQ(BoundedCorrection(-0.5, 1.0), 0);  // wrong direction
  EXPECT_EQ(BoundedCorrection(-1.5, -1.0), 1);
  EXPECT_EQ(BoundedCorrection(0.0, 1.0), 0);   // boundary: not strict
  EXPECT_EQ(BoundedCorrection(2.0, 1.0), 0);   // boundary
}

TEST(BoundedCorrectionTest, LemmaSameDirection) {
  // Lemma II.1: BC = 1 implies sign agreement. Exhaustive fuzz.
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double ur = rng.Normal() * 5.0;
    const double pred = rng.Normal() * 5.0;
    if (ur == 0.0) continue;
    if (BoundedCorrection(pred, ur) == 1) {
      EXPECT_GT(pred * ur, 0.0) << "pred " << pred << " ur " << ur;
      // ...and the model beats the consensus in absolute error:
      // |R_hat - R| = |pred - ur| < |ur| = |E - R|.
      EXPECT_LT(std::fabs(pred - ur), std::fabs(ur));
    }
  }
}

TEST(SurpriseRatioTest, Definition) {
  EXPECT_DOUBLE_EQ(SurpriseRatio(1.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(SurpriseRatio(0.0, 2.0), 1.0);  // consensus-equivalent
  EXPECT_DOUBLE_EQ(SurpriseRatio(3.0, 1.0), 2.0);
}

TEST(SurpriseRatioTest, CapAppliesNearZeroUr) {
  EXPECT_DOUBLE_EQ(SurpriseRatio(1.0, 1e-12), 20.0);
  EXPECT_DOUBLE_EQ(SurpriseRatio(1.0, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(SurpriseRatio(1.0, 1e-12, /*cap=*/5.0), 5.0);
}

TEST(EvaluateAbsoluteTest, PerfectPrediction) {
  std::vector<double> ur = {1.0, -2.0, 0.5};
  auto eval = EvaluateAbsolute(ur, ur);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().ba, 100.0);
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().sr, 0.0);
}

TEST(EvaluateAbsoluteTest, ZeroPredictionIsConsensus) {
  // Predicting UR = 0 is exactly the analysts' consensus: BA = 0, SR = 1.
  std::vector<double> pred = {0.0, 0.0, 0.0};
  std::vector<double> actual = {1.0, -2.0, 0.5};
  auto eval = EvaluateAbsolute(pred, actual);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().ba, 0.0);
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().sr, 1.0);
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().sr_mean_capped, 1.0);
}

TEST(EvaluateAbsoluteTest, WeightedSrIsRatioOfSums) {
  // err = {0.5, 3.0}; |UR| = {1.0, 2.0} -> weighted SR = 3.5 / 3.0.
  std::vector<double> pred = {1.5, -5.0};
  std::vector<double> actual = {1.0, -2.0};
  auto eval = EvaluateAbsolute(pred, actual);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval.ValueOrDie().sr, 3.5 / 3.0, 1e-12);
  // Unweighted mean of per-sample ratios: (0.5 + 1.5) / 2.
  EXPECT_NEAR(eval.ValueOrDie().sr_mean_capped, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().ba, 50.0);
}

TEST(EvaluateAbsoluteTest, WeightedSrRobustToTinyUrSample) {
  // One near-zero |UR| sample must not dominate the aggregate.
  std::vector<double> pred = {0.9, 0.01};
  std::vector<double> actual = {1.0, 1e-9};
  auto eval = EvaluateAbsolute(pred, actual);
  ASSERT_TRUE(eval.ok());
  EXPECT_LT(eval.ValueOrDie().sr, 0.2);
  // ...while the capped unweighted mean shows the blowup.
  EXPECT_GT(eval.ValueOrDie().sr_mean_capped, 5.0);
}

TEST(EvaluateAbsoluteTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluateAbsolute({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(EvaluateAbsolute({}, {}).ok());
}

TEST(EvaluateTest, DenormalizesWithScale) {
  data::Dataset dataset;
  dataset.x = la::Matrix(2, 1, 0.0);
  dataset.y = {0.1, -0.2};
  data::SampleMeta meta0;
  meta0.scale = 100.0;
  meta0.actual_ur = 10.0;  // = y * scale
  data::SampleMeta meta1;
  meta1.scale = 50.0;
  meta1.actual_ur = -10.0;
  dataset.meta = {meta0, meta1};
  // Normalized predictions exactly equal to normalized targets.
  auto eval = Evaluate(dataset, {0.1, -0.2});
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().ba, 100.0);
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().sr, 0.0);
  // Half-off predictions.
  auto eval2 = Evaluate(dataset, {0.05, -0.1});
  ASSERT_TRUE(eval2.ok());
  EXPECT_DOUBLE_EQ(eval2.ValueOrDie().ba, 100.0);
  EXPECT_DOUBLE_EQ(eval2.ValueOrDie().sr, 0.5);
  EXPECT_FALSE(Evaluate(dataset, {0.1}).ok());
}

TEST(EvaluateTest, BaMatchesManualCount) {
  Rng rng(2);
  const int n = 500;
  std::vector<double> pred(n), actual(n);
  int manual = 0;
  for (int i = 0; i < n; ++i) {
    actual[i] = rng.Normal();
    pred[i] = actual[i] + rng.Normal() * 0.8;
    if (std::fabs(pred[i] - actual[i]) < std::fabs(actual[i])) ++manual;
  }
  auto eval = EvaluateAbsolute(pred, actual);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval.ValueOrDie().ba, 100.0 * manual / n, 1e-9);
}

// Property sweep: scaling both predictions and actuals by any positive
// constant leaves BA and SR unchanged (both metrics are scale-free).
class MetricScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(MetricScaleInvariance, BaSrScaleFree) {
  Rng rng(3);
  const int n = 200;
  std::vector<double> pred(n), actual(n), pred_s(n), actual_s(n);
  const double scale = GetParam();
  for (int i = 0; i < n; ++i) {
    actual[i] = rng.Normal();
    pred[i] = actual[i] * 0.6 + rng.Normal() * 0.3;
    pred_s[i] = pred[i] * scale;
    actual_s[i] = actual[i] * scale;
  }
  auto a = EvaluateAbsolute(pred, actual);
  auto b = EvaluateAbsolute(pred_s, actual_s);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a.ValueOrDie().ba, b.ValueOrDie().ba, 1e-9);
  EXPECT_NEAR(a.ValueOrDie().sr, b.ValueOrDie().sr, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, MetricScaleInvariance,
                         ::testing::Values(0.01, 0.5, 1.0, 37.0, 1e6));

}  // namespace
}  // namespace ams::metrics
