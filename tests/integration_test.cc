// End-to-end integration tests: the full experiment pipeline on a reduced
// panel, cross-module invariants (no leakage, alignment), and a miniature
// backtest driven by real model predictions.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "backtest/backtest.h"
#include "graph/company_graph.h"
#include "models/experiment.h"

namespace ams {
namespace {

// A reduced experiment configuration that exercises every stage quickly:
// 20 companies, full CV schedule, 2 HPO trials, linear + naive models only.
models::ExperimentConfig SmallConfig() {
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = 42;
  config.hpo_trials = 2;
  config.model_filter = {"Ridge", "Lasso", "ARIMA", "QoQ", "YoY"};
  return config;
}

data::Panel SmallPanel(uint64_t seed) {
  data::GeneratorConfig config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, seed);
  config.num_companies = 20;
  config.num_sectors = 4;
  return data::GenerateMarket(config).MoveValue();
}

TEST(IntegrationTest, ExperimentPipelineRunsEndToEnd) {
  auto result = models::RunExperimentOnPanel(SmallPanel(42), SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  const models::ExperimentResult& experiment = result.ValueOrDie();
  EXPECT_EQ(experiment.cv_folds.size(), 7u);
  EXPECT_EQ(experiment.models.size(), 5u);
  for (const models::ModelOutcome& model : experiment.models) {
    ASSERT_EQ(model.folds.size(), 7u) << model.name;
    for (const models::FoldOutcome& fold : model.folds) {
      EXPECT_EQ(fold.eval.num_samples, 20);
      EXPECT_EQ(fold.predicted_ur.size(), 20u);
      for (double ur : fold.predicted_ur) EXPECT_TRUE(std::isfinite(ur));
    }
    EXPECT_GE(model.MeanBa(), 0.0);
    EXPECT_LE(model.MeanBa(), 100.0);
    EXPECT_GE(model.MeanSr(), 0.0);
  }
  // fold_test_meta aligns with CV schedule.
  ASSERT_EQ(experiment.fold_test_meta.size(), 7u);
  for (size_t f = 0; f < 7; ++f) {
    for (const data::SampleMeta& meta : experiment.fold_test_meta[f]) {
      EXPECT_EQ(meta.quarter, experiment.cv_folds[f].test_quarter);
    }
  }
}

TEST(IntegrationTest, ExperimentDeterministicForSeed) {
  auto a = models::RunExperimentOnPanel(SmallPanel(42), SmallConfig());
  auto b = models::RunExperimentOnPanel(SmallPanel(42), SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t m = 0; m < a.ValueOrDie().models.size(); ++m) {
    EXPECT_DOUBLE_EQ(a.ValueOrDie().models[m].MeanBa(),
                     b.ValueOrDie().models[m].MeanBa());
    EXPECT_DOUBLE_EQ(a.ValueOrDie().models[m].MeanSr(),
                     b.ValueOrDie().models[m].MeanSr());
  }
}

TEST(IntegrationTest, LearnedModelsBeatArimaAndNaive) {
  // The robust ordering the paper reports: feature-based linear models far
  // above ARIMA / QoQ / YoY on BA.
  auto result = models::RunExperimentOnPanel(SmallPanel(42), SmallConfig());
  ASSERT_TRUE(result.ok());
  const auto& experiment = result.ValueOrDie();
  const double ridge_ba = experiment.Find("Ridge")->MeanBa();
  EXPECT_GT(ridge_ba, experiment.Find("ARIMA")->MeanBa() + 10.0);
  EXPECT_GT(ridge_ba, experiment.Find("QoQ")->MeanBa() + 5.0);
  EXPECT_GT(ridge_ba, experiment.Find("YoY")->MeanBa() + 5.0);
  // Ridge beats the consensus; ARIMA is far worse than the consensus.
  EXPECT_LT(experiment.Find("Ridge")->MeanSr(), 1.0);
  EXPECT_GT(experiment.Find("ARIMA")->MeanSr(), 1.5);
}

TEST(IntegrationTest, ModelFilterValidation) {
  models::ExperimentConfig config = SmallConfig();
  config.model_filter = {"NoSuchModel"};
  EXPECT_FALSE(models::RunExperimentOnPanel(SmallPanel(42), config).ok());
}

TEST(IntegrationTest, AltAblationDegradesLinearModels) {
  // Table III's direction on a small panel: removing alternative features
  // must not improve Ridge's SR (alt data carries real signal).
  data::Panel panel = SmallPanel(42);
  models::ExperimentConfig config = SmallConfig();
  config.model_filter = {"Ridge"};
  auto with_alt = models::RunExperimentOnPanel(panel, config);
  config.include_alt = false;
  auto without_alt = models::RunExperimentOnPanel(panel, config);
  ASSERT_TRUE(with_alt.ok() && without_alt.ok());
  EXPECT_GT(without_alt.ValueOrDie().Find("Ridge")->MeanSr(),
            with_alt.ValueOrDie().Find("Ridge")->MeanSr());
}

TEST(IntegrationTest, BacktestFromExperimentPredictions) {
  data::Panel panel = SmallPanel(42);
  models::ExperimentConfig config = SmallConfig();
  config.model_filter = {"Ridge", "ARIMA"};
  auto result = models::RunExperimentOnPanel(panel, config);
  ASSERT_TRUE(result.ok());
  const auto& experiment = result.ValueOrDie();

  backtest::BacktestConfig bt_config;
  bt_config.seed = 42;
  backtest::Backtester backtester(&panel, bt_config);
  std::vector<double> earnings;
  for (const models::ModelOutcome& model : experiment.models) {
    std::vector<backtest::QuarterPositions> quarters;
    for (size_t f = 0; f < model.folds.size(); ++f) {
      backtest::QuarterPositions positions;
      positions.test_quarter = model.folds[f].test_quarter;
      positions.predicted_ur = model.folds[f].predicted_ur;
      positions.meta = experiment.fold_test_meta[f];
      quarters.push_back(std::move(positions));
    }
    auto bt = backtester.Run(quarters);
    ASSERT_TRUE(bt.ok()) << model.name;
    earnings.push_back(bt.ValueOrDie().earning_pct);
    EXPECT_EQ(bt.ValueOrDie().asset_curve.size(),
              1u + 7 * bt_config.holding_days);
    EXPECT_GE(bt.ValueOrDie().mdd_pct, 0.0);
  }
  // The better predictor (Ridge) should out-earn ARIMA in the simulated
  // market, which rewards correct surprise signs.
  EXPECT_GT(earnings[0], earnings[1]);
}

TEST(IntegrationTest, NoLeakageGraphUsesOnlyTrainQuarters) {
  // Corrupting post-training revenue must not change the correlation graph
  // the AMS regressor builds.
  data::Panel panel = SmallPanel(42);
  data::Panel corrupted = panel;
  for (auto& company : corrupted.companies) {
    for (size_t t = 9; t < company.quarters.size(); ++t) {
      company.quarters[t].revenue *= 10.0;  // future data
    }
  }
  auto histories_a = panel.RevenueHistories(8);
  auto histories_b = corrupted.RevenueHistories(8);
  graph::CorrelationGraphOptions options;
  auto ga = graph::CompanyGraph::BuildFromRevenue(histories_a, options);
  auto gb = graph::CompanyGraph::BuildFromRevenue(histories_b, options);
  ASSERT_TRUE(ga.ok() && gb.ok());
  for (int i = 0; i < ga.ValueOrDie().num_nodes(); ++i) {
    EXPECT_EQ(ga.ValueOrDie().Neighbors(i), gb.ValueOrDie().Neighbors(i));
  }
}

TEST(IntegrationTest, CachedExperimentMatchesDirectRun) {
  // First call computes and persists; second call loads. Both must agree
  // exactly with each other on every fold metric.
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "ams_cache_test").string();
  std::filesystem::remove_all(cache_dir);
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = 4242;
  config.hpo_trials = 1;
  config.model_filter = {"Ridge", "QoQ"};
  auto first = models::RunExperimentCached(config, cache_dir);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = models::RunExperimentCached(config, cache_dir);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(first.ValueOrDie().models.size(),
            second.ValueOrDie().models.size());
  for (size_t m = 0; m < first.ValueOrDie().models.size(); ++m) {
    const auto& a = first.ValueOrDie().models[m];
    const auto& b = second.ValueOrDie().models[m];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.folds.size(), b.folds.size());
    for (size_t f = 0; f < a.folds.size(); ++f) {
      EXPECT_NEAR(a.folds[f].eval.ba, b.folds[f].eval.ba, 1e-9);
      EXPECT_NEAR(a.folds[f].eval.sr, b.folds[f].eval.sr, 1e-6);
    }
  }
  // The filter applies to the returned view, not the cache: a different
  // filter over the same key must load, not recompute.
  config.model_filter = {"Lasso"};
  auto third = models::RunExperimentCached(config, cache_dir);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.ValueOrDie().models.size(), 1u);
  EXPECT_EQ(third.ValueOrDie().models[0].name, "Lasso");
  std::filesystem::remove_all(cache_dir);
}

TEST(IntegrationTest, CachedExperimentEmptyDirDisablesCache) {
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = 77;
  config.hpo_trials = 1;
  config.model_filter = {"QoQ"};
  auto result = models::RunExperimentCached(config, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().models.size(), 1u);
}

}  // namespace
}  // namespace ams
