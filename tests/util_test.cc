// Tests for src/util: Status/Result, Rng, string helpers, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace ams {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad width");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ComputeError("x").code(), StatusCode::kComputeError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AMS_ASSIGN_OR_RETURN(int h, Half(x));
  AMS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());   // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(7);
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, UniformIntInRangeAndUnbiased) {
  Rng rng(8);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, LogUniformWithinBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.LogUniform(1e-4, 1e-1);
    EXPECT_GE(v, 1e-4);
    EXPECT_LE(v, 1e-1);
  }
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(11);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(12);
  std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 8u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

// --- string_util ------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  x y  "), "x y");
  EXPECT_EQ(TrimString("\t\n"), "");
  EXPECT_EQ(TrimString("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(StringUtilTest, RenderTableAligns) {
  std::string table = RenderTable({{"h1", "h2"}, {"a", "bbbb"}});
  EXPECT_NE(table.find("| h1 "), std::string::npos);
  EXPECT_NE(table.find("| bbbb "), std::string::npos);
}

TEST(StringUtilTest, FlagsParse) {
  const char* argv_c[] = {"prog", "--seed=99", "--name=x"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(GetFlagU64(3, argv, "seed", 1), 99u);
  EXPECT_EQ(GetFlag(3, argv, "name", ""), "x");
  EXPECT_EQ(GetFlag(3, argv, "missing", "dflt"), "dflt");
  EXPECT_EQ(GetFlagInt(3, argv, "seed", -1), 99);
}

// --- CSV --------------------------------------------------------------------

TEST(CsvTest, RoundTripSimple) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  auto parsed = ParseCsv(CsvToString(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().header, table.header);
  EXPECT_EQ(parsed.ValueOrDie().rows, table.rows);
}

TEST(CsvTest, QuotesFieldsWithCommasAndQuotes) {
  CsvTable table;
  table.header = {"text"};
  table.rows = {{"hello, \"world\""}};
  const std::string serialized = CsvToString(table);
  EXPECT_NE(serialized.find("\"hello, \"\"world\"\"\""), std::string::npos);
  auto parsed = ParseCsv(serialized);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().rows[0][0], "hello, \"world\"");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a,\"b\nc,d").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, HandlesCrLf) {
  auto parsed = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().rows[0][1], "2");
}

}  // namespace
}  // namespace ams
